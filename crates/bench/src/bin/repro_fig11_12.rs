//! Reproduces paper Figs. 11–12: FB's effect on the I trace and the
//! linear-regression FB extraction pipeline.
use softlora_bench::experiments::fig11_12;

fn main() {
    let f = fig11_12::run();
    println!("Fig. 11 — the FB shifts the I-trace dip (sample indices):");
    println!("  δ = −25 kHz : dip at {}", f.dip_minus_25khz);
    println!("  δ =  0      : dip at {}", f.dip_zero);
    println!("  δ = +25 kHz : dip at {}", f.dip_plus_25khz);
    println!();
    println!("Fig. 12 — linear-regression pipeline on the paper's example:");
    println!("  de-quadratic'd phase line fit r² = {:.6}", f.line_fit_r_squared);
    println!("  recovered δ = {:.1} kHz (paper: −22.8 kHz)", f.recovered_delta_hz / 1e3);
    println!("  |δ| = {:.1} ppm of 869.75 MHz (paper: 26 ppm)", f.recovered_ppm);
}
