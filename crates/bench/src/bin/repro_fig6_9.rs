//! Reproduces the data behind paper Figs. 6–9 (chirp spectrogram, phase
//! ambiguity, FB dip shift, detector outputs).
use softlora_bench::experiments::fig6_9;

fn main() {
    let f = fig6_9::run();
    println!("Fig. 6 — SF7 chirp spectrogram geometry");
    println!("  frames over one chirp : {} (paper: 20)", f.spectrogram_frames);
    println!(
        "  time resolution       : {:.1} µs (paper: ~50 µs — too coarse for PHY timestamping)",
        f.time_resolution_us
    );
    let first = f.ridge_hz.first().unwrap();
    let last = f.ridge_hz.last().unwrap();
    println!(
        "  frequency ridge       : {:.1} kHz -> {:.1} kHz (linear up-sweep)",
        first / 1e3,
        last / 1e3
    );
    println!();
    println!("Fig. 7 — matched filtering is defeated by the unknown phase:");
    println!("  corr(I | θ=0, I | θ=π) = {:.3} (the trace inverts)", f.phase_trace_correlation);
    println!();
    println!("Fig. 9 — detector onsets on a real-FB capture (samples from truth):");
    println!("  envelope detector: {:+} samples", f.envelope_onset_error);
    println!("  AIC detector     : {:+} samples", f.aic_onset_error);
}
