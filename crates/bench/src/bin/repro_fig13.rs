//! Reproduces paper Fig. 13: FBs of 16 nodes, original vs USRP-replayed.
use softlora_bench::experiments::fig13;
use softlora_bench::table::Table;

fn main() {
    println!("Fig. 13 — FBs from 16 nodes: original vs replayed (20 frames each)\n");
    let nodes = fig13::run(16, 20);
    let mut t = Table::new([
        "Node",
        "orig mean(kHz)",
        "orig min/max",
        "replay mean(kHz)",
        "replay min/max",
        "added bias(Hz)",
    ]);
    let mut added = Vec::new();
    for n in &nodes {
        t.row([
            n.node.to_string(),
            format!("{:.2}", n.original_khz.0),
            format!("{:.2}/{:.2}", n.original_khz.1, n.original_khz.2),
            format!("{:.2}", n.replayed_khz.0),
            format!("{:.2}/{:.2}", n.replayed_khz.1, n.replayed_khz.2),
            format!("{:.0}", n.added_bias_hz()),
        ]);
        added.push(n.added_bias_hz());
    }
    println!("{t}");
    let min = added.iter().cloned().fold(f64::MAX, f64::min);
    let max = added.iter().cloned().fold(f64::MIN, f64::max);
    println!("Added FB range: {min:.0} to {max:.0} Hz (paper: −543 to −743 Hz mean).");
    println!("Every node's replayed series sits below its original — the artefact");
    println!("SoftLoRa detects without requiring FB uniqueness across nodes.");
}
