//! `bench_scale` — the multi-core scaling campaign: the same Poisson
//! fleet, persisted and sharded, replayed through the streaming
//! flowgraph at a grid of worker counts × scheduler policies.
//!
//! Usage:
//!
//! ```text
//! bench_scale [--out BENCH_scale.json] [--sim-s SECONDS]
//! ```
//!
//! For every `(workers, scheduler)` cell the run measures wall-clock
//! throughput (uplink groups per second through source → per-gateway
//! fronts → shard router → per-shard persisted sinks) and the
//! commit-latency distribution (`server_commit_ns`, per-shard histogram
//! deltas merged across shards). Verdicts are checked bit-for-bit
//! against the first cell, so a scheduler that corrupts results fails
//! the bench rather than posting a good number. The JSON artifact is
//! uploaded by CI; the README "Performance" table is generated from it.

use softlora::NetworkServer;
use softlora_bench::table::Table;
use softlora_phy::{PhyConfig, SpreadingFactor};
use softlora_runtime::{FlowgraphBuilder, Scheduler, SchedulerKind};
use softlora_sim::{FleetDeployment, FrameSource, HonestChannel, Scenario, UplinkDeliveries};
use softlora_store::test_dir;
use softlora_telemetry::{HistogramSnapshot, RegistrySnapshot};
use std::fmt::Write as _;
use std::time::Instant;

const GATEWAYS: usize = 2;
const DEVICES: usize = 4;
const SHARDS: usize = 2;

fn phy() -> PhyConfig {
    PhyConfig::uplink(SpreadingFactor::Sf7)
}

/// The pinned workload: a 2-gateway fleet with Poisson-spaced uplinks
/// from 4 meters (mean period 300 s). Honest channel — this campaign
/// measures the pipeline, not the detector.
fn scenario() -> Scenario {
    let fleet = FleetDeployment::with_gateways(GATEWAYS);
    let mut scenario = Scenario::new_fleet(
        phy(),
        fleet.medium(),
        fleet.gateway_positions(),
        Box::new(HonestChannel),
    );
    for (k, pos) in fleet.device_positions(DEVICES, 47).iter().enumerate() {
        scenario.add_device(0x2603_1000 + k as u32, *pos, 300.0, k as u64);
    }
    scenario
}

fn build_server(dir: &std::path::Path) -> NetworkServer {
    let reference = scenario();
    let mut builder = NetworkServer::builder(phy())
        .adc_quantisation(false)
        .warmup_frames(2)
        .shards(SHARDS)
        .with_persistence(dir);
    for g in 0..GATEWAYS {
        builder = builder.gateway(g as u64 + 1);
    }
    for k in 0..reference.devices() {
        let cfg = reference.device_config(k).clone();
        builder = builder.provision(cfg.dev_addr, cfg.keys);
    }
    builder.build()
}

/// Sum of the per-shard `server_commit_ns` histogram deltas between two
/// registry snapshots — the commit-latency distribution of exactly one
/// run, even though the process-global registry accumulates forever.
fn commit_ns_delta(before: &RegistrySnapshot, after: &RegistrySnapshot) -> HistogramSnapshot {
    let mut total = HistogramSnapshot::empty();
    for series in after.series.iter().filter(|s| s.name == "server_commit_ns") {
        let Some(h) = series.value.as_histogram() else { continue };
        let mut delta = *h;
        if let Some(prior) = before
            .series
            .iter()
            .find(|s| s.key() == series.key())
            .and_then(|s| s.value.as_histogram())
        {
            for (d, p) in delta.buckets.iter_mut().zip(prior.buckets.iter()) {
                *d = d.wrapping_sub(*p);
            }
            delta.count = delta.count.wrapping_sub(prior.count);
            delta.sum = delta.sum.wrapping_sub(prior.sum);
        }
        total.merge(&delta);
    }
    total
}

struct Cell {
    scheduler: SchedulerKind,
    workers: usize,
    elapsed_s: f64,
    throughput: f64,
    commit_ns: HistogramSnapshot,
    steals: u64,
}

fn main() {
    let mut out: Option<String> = None;
    let mut sim_s = 2600.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next(),
            "--sim-s" => {
                sim_s = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--sim-s needs a number");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other}; usage: bench_scale [--out FILE] [--sim-s S]");
                std::process::exit(2);
            }
        }
    }

    let mut sim = scenario();
    let mut groups: Vec<UplinkDeliveries> = Vec::new();
    sim.run(sim_s, |u| groups.push(u.clone()));
    assert!(groups.len() >= 10, "too few uplinks: {}", groups.len());

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut worker_grid = vec![1usize, 2, 4, cores];
    worker_grid.sort_unstable();
    worker_grid.dedup();
    println!(
        "Scaling campaign: {GATEWAYS} gateways, {DEVICES} devices, {SHARDS} shards, \
         {} groups, workers {worker_grid:?} × {{roundrobin, stealing}} ({cores} cores)",
        groups.len()
    );

    let registry = softlora_telemetry::global();
    let mut cells: Vec<Cell> = Vec::new();
    let mut reference: Option<Vec<(u64, softlora::ServerVerdict)>> = None;
    for &workers in &worker_grid {
        for kind in [SchedulerKind::RoundRobin, SchedulerKind::Stealing] {
            let dir = test_dir(&format!("bench-scale-{}-{workers}", kind.name()));
            let mut server = build_server(&dir);
            let verdicts = std::sync::Arc::new(std::sync::Mutex::new(Vec::<(
                u64,
                softlora::ServerVerdict,
            )>::new()));
            struct Tap(std::sync::Arc<std::sync::Mutex<Vec<(u64, softlora::ServerVerdict)>>>);
            impl softlora::ServerObserver for Tap {
                fn on_verdict(&mut self, uplink: u64, verdict: &softlora::ServerVerdict) {
                    self.0.lock().unwrap().push((uplink, verdict.clone()));
                }
            }
            server.attach_observer(Box::new(Tap(std::sync::Arc::clone(&verdicts))));
            let (fronts, router, sinks) = server.into_sharded_streaming();

            let before = registry.snapshot();
            let steals_before = before.counter_sum("runtime_steals_total");
            let mut b = FlowgraphBuilder::new();
            b.scheduler(kind);
            let src = b.source(FrameSource::from_groups(groups.clone()));
            let parts: Vec<_> = fronts.into_iter().map(|front| b.stage(src, front)).collect();
            let routed = b.merge(&parts, router);
            for sink in sinks {
                b.sink(&[routed], sink);
            }
            let start = Instant::now();
            Scheduler::new(workers).run(b.build().expect("valid flowgraph"));
            let elapsed = start.elapsed();
            let after = registry.snapshot();

            let mut sorted = verdicts.lock().unwrap().clone();
            sorted.sort_by_key(|(uplink, _)| *uplink);
            assert_eq!(sorted.len(), groups.len(), "every group must commit");
            match &reference {
                None => reference = Some(sorted),
                Some(expected) => {
                    assert_eq!(&sorted, expected, "{} × {workers} diverged", kind.name());
                }
            }

            let elapsed_s = elapsed.as_secs_f64();
            cells.push(Cell {
                scheduler: kind,
                workers,
                elapsed_s,
                throughput: groups.len() as f64 / elapsed_s,
                commit_ns: commit_ns_delta(&before, &after),
                steals: after.counter_sum("runtime_steals_total") - steals_before,
            });
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    let mut t =
        Table::new(["Scheduler", "Workers", "Groups/s", "Commit p50", "Commit p99", "Steals"]);
    for c in &cells {
        t.row([
            c.scheduler.name().into(),
            c.workers.to_string(),
            format!("{:.1}", c.throughput),
            format!("{:.0} ns", c.commit_ns.p50()),
            format!("{:.0} ns", c.commit_ns.p99()),
            c.steals.to_string(),
        ]);
    }
    println!("\n{t}");

    if let Some(path) = out {
        let mut json = format!(
            "{{\"gateways\":{GATEWAYS},\"devices\":{DEVICES},\"shards\":{SHARDS},\
             \"groups\":{},\"cores\":{cores},\"configs\":[",
            groups.len()
        );
        for (k, c) in cells.iter().enumerate() {
            if k > 0 {
                json.push(',');
            }
            let _ = write!(
                json,
                "{{\"scheduler\":\"{}\",\"workers\":{},\"elapsed_s\":{:.4},\
                 \"throughput_groups_per_s\":{:.2},\"steals\":{},\"commit_ns\":{{\
                 \"count\":{},\"mean\":{:.0},\"p50\":{:.0},\"p90\":{:.0},\"p99\":{:.0}}}}}",
                c.scheduler.name(),
                c.workers,
                c.elapsed_s,
                c.throughput,
                c.steals,
                c.commit_ns.count,
                c.commit_ns.mean(),
                c.commit_ns.p50(),
                c.commit_ns.p90(),
                c.commit_ns.p99(),
            );
        }
        json.push_str("]}");
        std::fs::write(&path, json).expect("write JSON artifact");
        println!("Wrote {path}");
    }
}
