//! Minimal aligned-table printer for the repro binaries.

/// A simple text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len().max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for row in &self.rows {
            measure(&mut widths, row);
        }
        let fmt_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["a", "long-header", "c"]);
        t.row(["1", "2", "3"]);
        t.row(["wide-cell", "x", ""]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].starts_with("1"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new(["x"]);
        t.row(["1", "2", "3"]);
        assert!(t.render().contains('3'));
    }
}
