//! Paper Fig. 13: FBs estimated from 16 nodes' original transmissions and
//! from the same transmissions replayed by a USRP.
//!
//! 20 frames per node; the error bars show mean/min/max per node. The
//! replayed series sits consistently *below* the original because the
//! USRP's oscillator bias is negative (−543 to −743 Hz mean added bias in
//! the paper).

use crate::common;
use softlora::fb_estimator::{FbEstimator, FbMethod};
use softlora_phy::oscillator::Oscillator;
use softlora_phy::{PhyConfig, SpreadingFactor};

/// Per-node Fig. 13 statistics (all in kHz to match the paper's axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig13Node {
    /// Node ID (0..16).
    pub node: usize,
    /// Mean / min / max FB of original transmissions, kHz.
    pub original_khz: (f64, f64, f64),
    /// Mean / min / max FB of replayed transmissions, kHz.
    pub replayed_khz: (f64, f64, f64),
}

impl Fig13Node {
    /// Mean additional FB introduced by the replayer, Hz.
    pub fn added_bias_hz(&self) -> f64 {
        (self.replayed_khz.0 - self.original_khz.0) * 1e3
    }
}

/// Runs the Fig. 13 experiment: `nodes` devices × `frames` transmissions,
/// each estimated from a clean high-SNR capture (bench conditions, 5 m),
/// then replayed through a single USRP chain.
pub fn run(nodes: usize, frames: usize) -> Vec<Fig13Node> {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let estimator = FbEstimator::new(&phy, 2.4e6);
    // One SoftLoRa SDR receiver for all measurements (fixed δRx).
    let rx_bias_ppm = 2.0;
    let mut out = Vec::with_capacity(nodes);
    for node in 0..nodes {
        let mut device = Oscillator::sample_end_device(common::FC, node as u64);
        let mut usrp = Oscillator::sample_usrp(common::FC, 1000 + node as u64);
        let mut orig = Vec::with_capacity(frames);
        let mut replayed = Vec::with_capacity(frames);
        for f in 0..frames {
            let tx_bias = device.frame_bias_hz();
            let seed = (node * 1000 + f) as u64;
            // Original transmission.
            let cap = common::capture(&phy, 2, tx_bias, rx_bias_ppm, 400, seed);
            let fb = estimator
                .estimate_from_capture(&cap, cap.true_onset, FbMethod::LinearRegression, 0.0)
                .expect("fb original");
            orig.push(fb.delta_hz / 1e3);
            // Replay: same waveform re-emitted through the USRP chain.
            let replay_bias = tx_bias + usrp.frame_bias_hz();
            let cap_r = common::capture(&phy, 2, replay_bias, rx_bias_ppm, 400, seed + 7);
            let fb_r = estimator
                .estimate_from_capture(&cap_r, cap_r.true_onset, FbMethod::LinearRegression, 0.0)
                .expect("fb replay");
            replayed.push(fb_r.delta_hz / 1e3);
        }
        let stats = |v: &[f64]| -> (f64, f64, f64) {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let min = v.iter().cloned().fold(f64::MAX, f64::min);
            let max = v.iter().cloned().fold(f64::MIN, f64::max);
            (mean, min, max)
        };
        out.push(Fig13Node { node, original_khz: stats(&orig), replayed_khz: stats(&replayed) });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_fbs_in_paper_range() {
        // Paper: absolute FBs 17–25 kHz (20–29 ppm) for the population;
        // our measured δ includes the receiver's own bias.
        for node in run(16, 5) {
            let fb = node.original_khz.0;
            assert!((-28.0..=-16.0).contains(&fb), "node {}: {fb} kHz", node.node);
        }
    }

    #[test]
    fn replayed_consistently_lower() {
        // Paper: "the FBs of the replayed transmissions are consistently
        // lower ... because the USRP has a negative FB".
        for node in run(16, 5) {
            assert!(
                node.replayed_khz.0 < node.original_khz.0,
                "node {}: replay {} >= orig {}",
                node.node,
                node.replayed_khz.0,
                node.original_khz.0
            );
        }
    }

    #[test]
    fn added_bias_matches_paper_band() {
        // Paper: mean additional FBs from −543 to −743 Hz. Our USRP
        // population spans −783..−435 Hz.
        for node in run(16, 5) {
            let added = node.added_bias_hz();
            assert!((-900.0..=-350.0).contains(&added), "node {}: added {added} Hz", node.node);
        }
    }

    #[test]
    fn per_node_fbs_are_stable() {
        // Error bars in Fig. 13 are tight: per-node FB spread ≤ ~300 Hz.
        for node in run(8, 8) {
            let spread = (node.original_khz.2 - node.original_khz.1) * 1e3;
            assert!(spread < 350.0, "node {}: spread {spread} Hz", node.node);
        }
    }
}
