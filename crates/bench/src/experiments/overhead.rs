//! Paper §3.2 and §4.4: the overhead arithmetic motivating the
//! synchronization-free design and the FB-based (rather than round-trip)
//! defence.

use softlora::analysis::{
    sessions_per_hour, sync_based_profile, sync_free_profile, AccuracyBudget, OverheadProfile,
};
use softlora_attack::rtt_detector::{overhead_comparison, OverheadComparison};
use softlora_lorawan::region::DutyCycleTracker;
use softlora_phy::{PhyConfig, SpreadingFactor};

/// The complete §3.2/§4.4 comparison.
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// Sync sessions per hour at 40 ppm for sub-10 ms error (paper: ~14).
    pub sessions_per_hour: f64,
    /// SF12 30-byte frames allowed per hour at 1 % duty (paper: 24,
    /// computed without LDRO).
    pub frames_per_hour_no_ldro: u64,
    /// The same with the LDRO that EU868 mandates at SF12.
    pub frames_per_hour_ldro: u64,
    /// The synchronization-based profile (30-byte payloads).
    pub sync_based: OverheadProfile,
    /// The synchronization-free profile.
    pub sync_free: OverheadProfile,
    /// End-to-end accuracy budget of the synchronization-free approach.
    pub accuracy: AccuracyBudget,
    /// §4.4: round-trip-timing defence cost for 100 devices.
    pub rtt: OverheadComparison,
}

/// Computes the report.
pub fn run() -> OverheadReport {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf12);
    let mut no_ldro = phy;
    no_ldro.low_data_rate = false;
    let duty = DutyCycleTracker::eu868();
    let at = phy.airtime(30);
    OverheadReport {
        sessions_per_hour: sessions_per_hour(40.0, 0.010),
        frames_per_hour_no_ldro: duty.max_frames(no_ldro.airtime(30), 3600.0),
        frames_per_hour_ldro: duty.max_frames(at, 3600.0),
        sync_based: sync_based_profile(40.0, 0.010, &phy, 30),
        sync_free: sync_free_profile(30),
        accuracy: AccuracyBudget::commodity(),
        rtt: overhead_comparison(100, 21.0, at, at),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_reproduced() {
        let r = run();
        assert!((r.sessions_per_hour - 14.4).abs() < 0.1);
        assert_eq!(r.frames_per_hour_no_ldro, 24);
        assert!((r.sync_based.payload_time_fraction - 0.267).abs() < 0.01);
        assert!(r.sync_free.payload_time_fraction < 0.08);
        assert!(r.accuracy.total_s() < 5e-3);
    }

    #[test]
    fn rtt_defence_is_expensive() {
        let r = run();
        assert!((r.rtt.rtt_airtime_multiplier - 2.0).abs() < 1e-9);
        assert!(r.rtt.gateway_downlink_utilisation > 0.9);
        assert_eq!(r.rtt.softlora_extra_transmissions, 0.0);
    }
}
