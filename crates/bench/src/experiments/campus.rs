//! Paper §8.2: long-distance signal timestamping across the 1.07 km
//! campus link, in heavy rain.
//!
//! The paper ran four tests and measured error upper bounds of 3.52, 2.27,
//! 6.43 and 0.23 µs — microsecond accuracy over a kilometre. We reproduce
//! the setup: SF12, the campus path-loss model with rain margin, and the
//! SoftLoRa timestamping pipeline.

use crate::common;
use softlora::phy_timestamp::{OnsetMethod, PhyTimestamper};
use softlora::pipeline::OnsetStage;
use softlora_phy::{PhyConfig, SpreadingFactor};
use softlora_sim::deployment::CampusDeployment;

/// Result of the campus experiment.
#[derive(Debug, Clone)]
pub struct CampusResult {
    /// Link distance, m.
    pub distance_m: f64,
    /// One-way propagation time, µs (paper: 3.57 µs).
    pub propagation_us: f64,
    /// Link SNR at 14 dBm, dB.
    pub snr_db: f64,
    /// Per-trial timing error upper bounds, µs.
    pub timing_errors_us: Vec<f64>,
}

impl CampusResult {
    /// Worst trial, µs.
    pub fn max_us(&self) -> f64 {
        self.timing_errors_us.iter().cloned().fold(0.0, f64::max)
    }
}

/// Runs `trials` timing tests over the campus link.
pub fn run(trials: usize) -> CampusResult {
    let campus = CampusDeployment::default();
    let medium = campus.medium();
    let a = campus.site_a();
    let b = campus.site_b();
    let link = medium.link(&a, &b, 14.0);
    // SF12 is the experiment default; SF9 chirps keep the capture length
    // tractable — timing error depends on SNR for amplitude pickers.
    let phy = PhyConfig::uplink(SpreadingFactor::Sf9);
    // The gateway pipeline's onset stage, driven stand-alone: the same
    // single pick that feeds both timestamping and FB estimation on the
    // full gateway.
    let onset = OnsetStage::new(PhyTimestamper::new(OnsetMethod::PowerAic));

    let timing_errors_us = (0..trials)
        .map(|t| {
            let clean = common::capture(&phy, 2, -23_000.0, 0.8, 600, 40 + t as u64);
            let noisy = common::with_noise(&clean, link.snr_db(), true, 90 + t as u64);
            let pick = onset.pick(&noisy, 0.0).expect("pick");
            let err_s =
                (pick.timestamp.onset_sample as i64 - noisy.true_onset as i64) as f64 * noisy.dt();
            err_s.abs() * 1e6 + pick.timestamp.quantisation_bound_s * 1e6
        })
        .collect();

    CampusResult {
        distance_m: a.distance_m(&b),
        propagation_us: medium.delay_s(&a, &b) * 1e6,
        snr_db: link.snr_db(),
        timing_errors_us,
    }
}

/// The paper's four measured error bounds, µs.
pub const PAPER_ERRORS_US: [f64; 4] = [3.52, 2.27, 6.43, 0.23];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_paper() {
        let r = run(1);
        assert!((r.distance_m - 1070.0).abs() < 1.0);
        assert!((r.propagation_us - 3.57).abs() < 0.03);
    }

    #[test]
    fn microsecond_accuracy_over_a_kilometre() {
        // Paper's worst trial: 6.43 µs. Require all trials under 10 µs.
        let r = run(4);
        assert!(r.max_us() < 10.0, "errors {:?}", r.timing_errors_us);
    }

    #[test]
    fn link_snr_supports_sf12() {
        let r = run(1);
        assert!(r.snr_db >= SpreadingFactor::Sf12.demod_floor_db());
    }
}
