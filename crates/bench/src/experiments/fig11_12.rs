//! Paper Figs. 11–12: the effect of the FB on the I trace, and the
//! linear-regression FB extraction pipeline.
//!
//! Fig. 11 shows numerically that δ = ±25 kHz shifts the axis of symmetry
//! (the "dip") of the I trace; Fig. 12 walks through atan2 → 2kπ
//! rectification → quadratic removal → linear fit, ending at the example
//! estimate δ ≈ −22.8 kHz (26 ppm of 869.75 MHz).

use softlora::fb_estimator::{FbEstimator, FbMethod};
use softlora_dsp::regression::linear_fit;
use softlora_dsp::unwrap::unwrap_iq;
use softlora_phy::{ChirpGenerator, LoRaChannel, PhyConfig, SpreadingFactor};

/// Outputs of the Figs. 11–12 regeneration.
#[derive(Debug, Clone)]
pub struct Fig11to12 {
    /// Sample index of the I-trace minimum ("dip") for δ = −25 kHz.
    pub dip_minus_25khz: usize,
    /// Sample index of the I-trace dip for δ = +25 kHz.
    pub dip_plus_25khz: usize,
    /// Sample index of the dip for δ = 0.
    pub dip_zero: usize,
    /// r² of the de-quadratic'd phase line fit (Fig. 12d is "indeed a
    /// linear function of time").
    pub line_fit_r_squared: f64,
    /// The recovered δ for the paper's −22.8 kHz example, Hz.
    pub recovered_delta_hz: f64,
    /// The recovered δ expressed in ppm of the carrier.
    pub recovered_ppm: f64,
}

fn dip_index(trace: &[f64]) -> usize {
    // Locate the minimum of a lightly smoothed magnitude-free I trace:
    // the paper's "dip" is the envelope minimum near the band-edge wrap.
    let mut best = 0;
    let mut best_v = f64::MAX;
    let half = 24;
    for k in half..trace.len() - half {
        let v: f64 = trace[k - half..k + half].iter().map(|x| x.abs()).sum();
        if v < best_v {
            best_v = v;
            best = k;
        }
    }
    best
}

/// Regenerates the data behind Figs. 11–12.
pub fn run() -> Fig11to12 {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let generator =
        ChirpGenerator::new(phy.sf, phy.channel.bandwidth.hz(), 2.4e6).expect("generator");

    // Fig. 11: dips under different δ.
    let (i_minus, _) = generator.upchirp_iq(0, -25_000.0, 0.0, 1.0);
    let (i_plus, _) = generator.upchirp_iq(0, 25_000.0, 0.0, 1.0);
    let (i_zero, _) = generator.upchirp_iq(0, 0.0, 0.0, 1.0);

    // Fig. 12: the regression pipeline on the paper's example bias.
    let delta = -22_800.0;
    let (i, q) = generator.upchirp_iq(0, delta, 0.45, 1.0);
    let unwrapped = unwrap_iq(&i, &q);
    let dt = 1.0 / 2.4e6;
    let w = phy.channel.bandwidth.hz();
    let a = std::f64::consts::PI * w * w / 128.0;
    let xs: Vec<f64> = (0..unwrapped.len()).map(|k| k as f64 * dt).collect();
    let line: Vec<f64> = unwrapped
        .iter()
        .enumerate()
        .map(|(k, &p)| {
            let t = k as f64 * dt;
            p - a * t * t + std::f64::consts::PI * w * t
        })
        .collect();
    let fit = linear_fit(&xs, &line).expect("fit");
    let recovered = fit.slope / (2.0 * std::f64::consts::PI);

    // Cross-check against the production estimator.
    let est = FbEstimator::new(&phy, 2.4e6);
    let _ = est.linear_regression(&i, &q).expect("estimator agrees");
    let _ = FbMethod::LinearRegression;

    Fig11to12 {
        dip_minus_25khz: dip_index(&i_minus),
        dip_plus_25khz: dip_index(&i_plus),
        dip_zero: dip_index(&i_zero),
        line_fit_r_squared: fit.r_squared,
        recovered_delta_hz: recovered,
        recovered_ppm: LoRaChannel::PAPER.hz_to_ppm(recovered).abs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_shifts_the_dip() {
        // Fig. 11: "the non-zero δ shifts the axis of symmetry".
        let f = run();
        assert_ne!(f.dip_minus_25khz, f.dip_zero);
        assert_ne!(f.dip_plus_25khz, f.dip_zero);
        // Shifts go in opposite directions for opposite signs.
        let left = f.dip_minus_25khz as i64 - f.dip_zero as i64;
        let right = f.dip_plus_25khz as i64 - f.dip_zero as i64;
        assert!(left * right < 0, "left {left} right {right}");
    }

    #[test]
    fn dequadratic_phase_is_linear() {
        let f = run();
        assert!(f.line_fit_r_squared > 0.9999, "r² {}", f.line_fit_r_squared);
    }

    #[test]
    fn recovers_paper_example_estimate() {
        // Fig. 12: "the FB δ ... is estimated as −22.8 kHz ... merely
        // 26 ppm of the central frequency".
        let f = run();
        assert!((f.recovered_delta_hz + 22_800.0).abs() < 20.0, "{}", f.recovered_delta_hz);
        assert!((f.recovered_ppm - 26.2).abs() < 0.3, "{} ppm", f.recovered_ppm);
    }
}
