//! Paper Fig. 16: estimated FB versus the end device's transmission power,
//! at three observation points:
//!
//! * the eavesdropper's USRP (bottom row in the paper),
//! * the SoftLoRa gateway, no attack (middle row),
//! * the SoftLoRa gateway receiving the *replay* of the eavesdropper's
//!   recording (top row — shifted by ≈ 2 kHz because the two USRPs'
//!   biases superimpose).
//!
//! The paper's two findings: transmission power has little impact on the
//! FB estimate, and the two-USRP replay chain adds ≈ 2.3 ppm.

use crate::common;
use softlora::fb_estimator::{FbEstimator, FbMethod};
use softlora_lorawan::region::TxPower;
use softlora_phy::oscillator::Oscillator;
use softlora_phy::{PhyConfig, SpreadingFactor};

/// Box statistics of FB estimates at one TX power for one path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig16Box {
    /// End device transmission power, dBm.
    pub tx_power_dbm: f64,
    /// Minimum FB, kHz.
    pub min_khz: f64,
    /// 25th percentile, kHz.
    pub q25_khz: f64,
    /// 75th percentile, kHz.
    pub q75_khz: f64,
    /// Maximum FB, kHz.
    pub max_khz: f64,
}

/// The three observation paths of Fig. 16.
#[derive(Debug, Clone)]
pub struct Fig16Series {
    /// FBs seen by the eavesdropper's USRP.
    pub device_to_eavesdropper: Vec<Fig16Box>,
    /// FBs seen by the SoftLoRa gateway directly.
    pub device_to_gateway: Vec<Fig16Box>,
    /// FBs seen by the gateway when the eavesdropper's recording is
    /// replayed through the replayer USRP.
    pub replayer_to_gateway: Vec<Fig16Box>,
}

fn boxes(samples: &[(f64, Vec<f64>)]) -> Vec<Fig16Box> {
    samples
        .iter()
        .map(|(p, v)| {
            let mut s = v.clone();
            s.sort_by(f64::total_cmp);
            let q = |frac: f64| s[(frac * (s.len() - 1) as f64).round() as usize];
            Fig16Box {
                tx_power_dbm: *p,
                min_khz: s[0] / 1e3,
                q25_khz: q(0.25) / 1e3,
                q75_khz: q(0.75) / 1e3,
                max_khz: s[s.len() - 1] / 1e3,
            }
        })
        .collect()
}

/// Runs the power sweep with `trials` frames per power step.
///
/// SNR rises with TX power (the building link gains ~1 dB per dBm); the FB
/// estimate should be invariant to it.
pub fn run(trials: usize) -> Fig16Series {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf8);
    let estimator = FbEstimator::new(&phy, 2.4e6);
    let mut device = Oscillator::sample_end_device(common::FC, 3);
    // Two different USRPs, as in §8.1.4: "their FBs are superimposed".
    let eaves_usrp = Oscillator::sample_usrp(common::FC, 100);
    let mut replay_usrp = Oscillator::sample_usrp(common::FC, 200);
    // Receiver biases: the eavesdropper is a USRP; the gateway an RTL-SDR.
    let eaves_rx_ppm = eaves_usrp.bias_ppm();
    let gw_rx_ppm = 1.5;

    let mut to_eaves = Vec::new();
    let mut to_gw = Vec::new();
    let mut replay_gw = Vec::new();
    for (step, power) in TxPower::FIG16_SWEEP.iter().enumerate() {
        // Received SNR grows with TX power; base −2 dB at the lowest step.
        let snr = -2.0 + (power.dbm - TxPower::FIG16_SWEEP[0].dbm);
        let mut v_eaves = Vec::new();
        let mut v_gw = Vec::new();
        let mut v_replay = Vec::new();
        for t in 0..trials {
            let tx_bias = device.frame_bias_hz();
            let seed = (step * 100 + t) as u64;
            // Path 1: device -> eavesdropper (USRP front-end).
            let cap = common::capture(&phy, 2, tx_bias, eaves_rx_ppm, 400, seed);
            let noisy = common::with_noise(&cap, snr + 15.0, false, seed + 1); // eaves is close
            v_eaves.push(
                estimator
                    .estimate_from_capture(
                        &noisy,
                        noisy.true_onset,
                        FbMethod::LinearRegression,
                        0.0,
                    )
                    .expect("eaves fb")
                    .delta_hz,
            );
            // Path 2: device -> gateway.
            let cap = common::capture(&phy, 2, tx_bias, gw_rx_ppm, 400, seed + 2);
            let noisy = common::with_noise(&cap, snr, false, seed + 3);
            v_gw.push(
                estimator
                    .estimate_from_capture(&noisy, noisy.true_onset, FbMethod::MatchedFilter, 0.0)
                    .expect("gw fb")
                    .delta_hz,
            );
            // Path 3: eavesdropper recording replayed through the second
            // USRP. The paper measures the two devices' biases
            // *superimposing* (§8.1.4: "here we use two different USRPs as
            // the eavesdropper and replayer; their FBs are superimposed"),
            // so the chain adds both empirically measured offsets.
            let replay_bias =
                tx_bias + eaves_usrp.frequency_bias_hz() + replay_usrp.frame_bias_hz();
            let cap = common::capture(&phy, 2, replay_bias, gw_rx_ppm, 400, seed + 4);
            let noisy = common::with_noise(&cap, snr, false, seed + 5);
            v_replay.push(
                estimator
                    .estimate_from_capture(&noisy, noisy.true_onset, FbMethod::MatchedFilter, 0.0)
                    .expect("replay fb")
                    .delta_hz,
            );
        }
        to_eaves.push((power.dbm, v_eaves));
        to_gw.push((power.dbm, v_gw));
        replay_gw.push((power.dbm, v_replay));
    }
    Fig16Series {
        device_to_eavesdropper: boxes(&to_eaves),
        device_to_gateway: boxes(&to_gw),
        replayer_to_gateway: boxes(&replay_gw),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn center(b: &Fig16Box) -> f64 {
        (b.q25_khz + b.q75_khz) / 2.0
    }

    #[test]
    fn power_has_little_impact_on_fb() {
        // Paper: "the end device's transmission power has little impact on
        // the FB estimation" — spread of per-power centres < 0.5 kHz.
        let s = run(6);
        for series in [&s.device_to_eavesdropper, &s.device_to_gateway] {
            let centers: Vec<f64> = series.iter().map(center).collect();
            let min = centers.iter().cloned().fold(f64::MAX, f64::min);
            let max = centers.iter().cloned().fold(f64::MIN, f64::max);
            assert!(max - min < 0.5, "centre spread {} kHz", max - min);
        }
    }

    #[test]
    fn eavesdropper_and_gateway_estimates_differ() {
        // Paper §8.1.3: the two receivers have different δRx, so their
        // estimates of the same device differ.
        let s = run(5);
        let d = (center(&s.device_to_eavesdropper[0]) - center(&s.device_to_gateway[0])).abs();
        assert!(d > 0.3, "difference {d} kHz");
    }

    #[test]
    fn replay_adds_about_two_khz() {
        // Paper §8.1.4: "the replay attack introduces an additional FB of
        // about 2 kHz (2.3 ppm)" when two different USRPs are chained. Our
        // USRP population is calibrated to Fig. 13's −543..−743 Hz single
        // chain, so the superimposed chain lands near 1–2 kHz.
        let s = run(5);
        let added: Vec<f64> = s
            .replayer_to_gateway
            .iter()
            .zip(s.device_to_gateway.iter())
            .map(|(r, g)| (center(r) - center(g)).abs())
            .collect();
        for (k, a) in added.iter().enumerate() {
            assert!((0.6..=3.0).contains(a), "step {k}: added {a} kHz");
        }
    }
}
