//! Paper Fig. 14: least-squares FB estimation error versus SNR, under
//! Gaussian noise and under "real" (building-captured) noise.
//!
//! Methodology per §7.1.2: noise is added to high-SNR traces, with the
//! chirp onset taken from the clean trace (isolating FB estimation error
//! from timestamping error). The paper's result: errors below 120 Hz
//! (0.14 ppm) down to −25 dB for both noise types.

use crate::common;
use softlora::fb_estimator::{FbEstimator, FbMethod};
use softlora_phy::{PhyConfig, SpreadingFactor};

/// One point of the Fig. 14 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig14Point {
    /// SNR in dB.
    pub snr_db: f64,
    /// Whether the "real" (coloured/impulsive) noise emulator was used.
    pub real_noise: bool,
    /// Mean absolute FB error, Hz.
    pub mean_error_hz: f64,
    /// Median absolute FB error, Hz.
    pub median_error_hz: f64,
    /// Maximum absolute FB error, Hz.
    pub max_error_hz: f64,
}

/// Sweeps SNR for one noise type with the given LS solver.
pub fn run(snrs_db: &[f64], real_noise: bool, trials: usize, method: FbMethod) -> Vec<Fig14Point> {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let estimator = FbEstimator::new(&phy, 2.4e6);
    let true_bias = -21_500.0;
    snrs_db
        .iter()
        .map(|&snr| {
            let mut errs: Vec<f64> = (0..trials)
                .map(|t| {
                    let clean = common::capture(&phy, 2, true_bias, 0.0, 500, 500 + t as u64);
                    let noisy = common::with_noise(&clean, snr, real_noise, 9000 + 13 * t as u64);
                    let noise_power = 10f64.powf(-snr / 10.0);
                    let fb = estimator
                        .estimate_from_capture(&noisy, noisy.true_onset, method, noise_power)
                        .expect("fb estimate");
                    (fb.delta_hz - true_bias).abs()
                })
                .collect();
            errs.sort_by(f64::total_cmp);
            Fig14Point {
                snr_db: snr,
                real_noise,
                mean_error_hz: errs.iter().sum::<f64>() / trials as f64,
                median_error_hz: errs[trials / 2],
                max_error_hz: *errs.last().expect("non-empty"),
            }
        })
        .collect()
}

/// The paper's SNR axis.
pub fn paper_snrs() -> Vec<f64> {
    vec![-25.0, -20.0, -15.0, -10.0, -5.0, 0.0, 5.0, 10.0]
}

/// The paper's headline bound: 120 Hz (0.14 ppm of 869.75 MHz).
pub const PAPER_BOUND_HZ: f64 = 120.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_noise_meets_paper_bound_at_moderate_snr() {
        for p in run(&[-10.0, 0.0], false, 5, FbMethod::MatchedFilter) {
            assert!(
                p.median_error_hz < PAPER_BOUND_HZ,
                "{} dB: median {} Hz",
                p.snr_db,
                p.median_error_hz
            );
        }
    }

    #[test]
    fn minus_25_db_median_within_bound() {
        let p = &run(&[-25.0], false, 7, FbMethod::MatchedFilter)[0];
        // The −25 dB point sits at the estimation threshold: require the
        // median within 1.5× the paper bound (see EXPERIMENTS.md).
        assert!(p.median_error_hz < 1.5 * PAPER_BOUND_HZ, "median {} Hz", p.median_error_hz);
    }

    #[test]
    fn real_noise_comparable_to_gaussian() {
        let g = &run(&[-10.0], false, 5, FbMethod::MatchedFilter)[0];
        let r = &run(&[-10.0], true, 5, FbMethod::MatchedFilter)[0];
        assert!(
            r.median_error_hz < 4.0 * g.median_error_hz.max(20.0),
            "real {} vs gaussian {}",
            r.median_error_hz,
            g.median_error_hz
        );
    }

    #[test]
    fn de_solver_agrees_with_matched_filter_at_high_snr() {
        let mf = &run(&[5.0], false, 3, FbMethod::MatchedFilter)[0];
        let de = &run(&[5.0], false, 3, FbMethod::DifferentialEvolution)[0];
        assert!(mf.median_error_hz < 60.0, "mf {}", mf.median_error_hz);
        assert!(de.median_error_hz < 120.0, "de {}", de.median_error_hz);
    }
}
