//! Fleet-scale experiment: device count × gateway count grid through the
//! discrete-event scenario engine and the network-server pipeline.
//!
//! Not a paper artefact — the paper evaluates one gateway — but the
//! architectural extension the journal version (arXiv:2107.04833)
//! motivates: real LoRaWAN deployments have several gateways per uplink
//! and a network server deduplicating the copies. Each grid cell runs a
//! warm-up phase through the honest channel, then schedules the
//! frame-delay attack (chain parked at gateway 0, one targeted meter) as
//! a mid-run interceptor-swap event, and reports server throughput plus
//! detection metrics.

use softlora::{NetworkServer, ServerStats};
use softlora_attack::FrameDelayAttack;
use softlora_phy::{PhyConfig, SpreadingFactor};
use softlora_sim::{FleetDeployment, HonestChannel, Position, Scenario};
use std::time::Instant;

/// One cell of the devices × gateways grid.
#[derive(Debug, Clone)]
pub struct FleetCell {
    /// Devices in the scenario.
    pub devices: usize,
    /// Gateways in the fleet.
    pub gateways: usize,
    /// Uplink groups delivered to the server.
    pub uplinks: u64,
    /// Per-gateway copies processed by the server.
    pub copies: u64,
    /// Wall-clock seconds the server spent processing the copies.
    pub elapsed_s: f64,
    /// Server throughput in copies (frames) per second.
    pub frames_per_s: f64,
    /// Aggregate server statistics.
    pub stats: ServerStats,
    /// Detection rate over scored verdicts.
    pub detection_rate: f64,
    /// False-alarm rate over scored verdicts.
    pub false_alarm_rate: f64,
}

/// Runs the grid. Each cell simulates `warmup_s` seconds of clean traffic
/// (devices reporting every `period_s` seconds), then `attack_s` seconds
/// with the frame-delay attack (delay `tau_s`) against the first device,
/// and pushes every delivery group through a [`NetworkServer`] batch.
pub fn run(
    devices_grid: &[usize],
    gateways_grid: &[usize],
    period_s: f64,
    warmup_s: f64,
    attack_s: f64,
    tau_s: f64,
) -> Vec<FleetCell> {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let mut cells = Vec::new();
    for &gateways in gateways_grid {
        for &devices in devices_grid {
            let fleet = FleetDeployment::with_gateways(gateways);
            let gw_positions = fleet.gateway_positions();
            let mut scenario = Scenario::new_fleet(
                phy,
                fleet.medium(),
                gw_positions.clone(),
                Box::new(HonestChannel),
            );
            let device_positions = fleet.device_positions(devices, 42);
            for (k, pos) in device_positions.iter().enumerate() {
                scenario.add_device(0x2601_6000 + k as u32, *pos, period_s, k as u64);
            }
            let mut builder = NetworkServer::builder(phy).adc_quantisation(false).warmup_frames(2);
            for g in 0..gateways {
                builder = builder.gateway(1000 + g as u64);
            }
            for k in 0..scenario.devices() {
                let cfg = scenario.device_config(k).clone();
                builder = builder.provision(cfg.dev_addr, cfg.keys);
            }
            let mut server = builder.build();

            // The attack arrives as a scheduled event once warm-up ends:
            // eavesdropper beside the targeted meter, jam/replay chain
            // parked 2 m from gateway 0.
            let target = device_positions[0];
            let attack = FrameDelayAttack::near_gateway(
                Position::new(target.x + 2.0, target.y + 1.0, target.z),
                &gw_positions,
                0,
                2.0,
                tau_s,
                phy,
                7,
            )
            .with_targets(vec![0x2601_6000]);
            scenario.schedule_interceptor(warmup_s, Box::new(attack));

            let mut groups = Vec::new();
            scenario.run(warmup_s + attack_s, |u| groups.push(u.clone()));
            let copies: u64 = groups.iter().map(|g| g.copies.len() as u64).sum();

            let start = Instant::now();
            let verdicts = server.process_batch(&groups).expect("server pipeline");
            let elapsed_s = start.elapsed().as_secs_f64();
            assert_eq!(verdicts.len(), groups.len());

            let det = server.detection_stats();
            cells.push(FleetCell {
                devices,
                gateways,
                uplinks: groups.len() as u64,
                copies,
                elapsed_s,
                frames_per_s: if elapsed_s > 0.0 { copies as f64 / elapsed_s } else { 0.0 },
                stats: server.stats(),
                detection_rate: det.detection_rate(),
                false_alarm_rate: det.false_alarm_rate(),
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grid_runs_and_detects() {
        let cells = run(&[2], &[1, 2], 300.0, 900.0, 600.0, 45.0);
        assert_eq!(cells.len(), 2);
        for cell in &cells {
            assert!(cell.uplinks > 0, "{cell:?}");
            // Honest groups carry one copy per gateway; attacked groups
            // add the fleet-wide replay copies on top.
            assert!(cell.copies >= cell.uplinks * cell.gateways as u64, "{cell:?}");
            assert!(cell.frames_per_s > 0.0);
            assert!(cell.stats.accepted > 0, "{cell:?}");
            assert!(cell.false_alarm_rate < 0.05, "{cell:?}");
        }
        // Single gateway: replays are FB-flagged (the paper's defence).
        assert!(cells[0].stats.fb_replays_flagged > 0, "{:?}", cells[0]);
        // Fleet: the replay is also caught by cross-gateway consistency,
        // and the uplink still gets through via a clean gateway.
        assert!(cells[1].stats.cross_gateway_replays_flagged > 0, "{:?}", cells[1]);
        assert!(cells[1].stats.accepted >= cells[0].stats.accepted, "{cells:?}");
    }
}
