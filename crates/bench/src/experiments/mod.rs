//! One module per paper artefact. Each exposes a `run(...)` function
//! returning structured results so the repro binaries, integration tests
//! and EXPERIMENTS.md generation all share the same code path.

pub mod attack_e2e;
pub mod campus;
pub mod fig10;
pub mod fig11_12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig6_9;
pub mod fleet;
pub mod overhead;
pub mod roc;
pub mod table1;
pub mod table2;
