//! Paper Fig. 15: SNR survey and signal-timing accuracy in the six-floor
//! building.
//!
//! A fixed transmitter sits in section A on the 3rd floor; a mobile
//! SoftLoRa receiver visits every accessible (column, floor) cell. For
//! each cell we record the link SNR from the deployment model and measure
//! the PHY timestamping error upper bound at that SNR.

use crate::common;
use softlora::phy_timestamp::{OnsetMethod, PhyTimestamper};
use softlora_phy::{PhyConfig, SpreadingFactor};
use softlora_sim::deployment::{BuildingDeployment, BUILDING_COLUMNS, BUILDING_FLOORS};

/// One surveyed cell of the building.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig15Cell {
    /// Column index (0..11).
    pub col: usize,
    /// Floor (1..=6).
    pub floor: usize,
    /// Link SNR from the fixed node, dB.
    pub snr_db: f64,
    /// Measured timing error upper bound, µs (None for inaccessible
    /// cells).
    pub timing_error_us: Option<f64>,
}

/// Column label for a cell.
pub fn column_label(col: usize) -> &'static str {
    BUILDING_COLUMNS[col]
}

/// Surveys the whole building with `trials` captures per cell.
pub fn run(trials: usize) -> Vec<Fig15Cell> {
    let b = BuildingDeployment::new();
    let medium = b.medium();
    let tx = b.fixed_node();
    let phy = PhyConfig::uplink(SpreadingFactor::Sf12);
    let ts = PhyTimestamper::new(OnsetMethod::PowerAic);
    // SF12 captures are long; survey timing with SF9 chirps for tractable
    // runtime — the error depends on SNR, not SF, for amplitude pickers.
    let phy_fast = PhyConfig::uplink(SpreadingFactor::Sf9);

    let mut cells = Vec::new();
    for col in 0..BUILDING_COLUMNS.len() {
        for floor in 1..=BUILDING_FLOORS {
            let accessible = b.accessible(col, floor);
            let snr = medium.link(&tx, &b.position(col, floor), 14.0).snr_db();
            let timing = if accessible {
                let mut worst = 0.0f64;
                for t in 0..trials {
                    let clean = common::capture(
                        &phy_fast,
                        2,
                        -21_000.0,
                        1.0,
                        500,
                        (col * 100 + floor * 10 + t) as u64,
                    );
                    let noisy = common::with_noise(&clean, snr, true, (col * 31 + floor) as u64);
                    let err = ts.timestamp_error_s(&noisy).expect("pick").abs() * 1e6
                        + noisy.dt() * 1e6 / 2.0;
                    worst = worst.max(err);
                }
                Some(worst)
            } else {
                None
            };
            cells.push(Fig15Cell { col, floor, snr_db: snr, timing_error_us: timing });
        }
    }
    let _ = phy; // SF12 is the paper's default config for this experiment
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snr_spans_paper_range() {
        let cells = run(1);
        let snrs: Vec<f64> =
            cells.iter().filter(|c| !(c.col == 0 && c.floor == 3)).map(|c| c.snr_db).collect();
        let min = snrs.iter().cloned().fold(f64::MAX, f64::min);
        let max = snrs.iter().cloned().fold(f64::MIN, f64::max);
        assert!((-2.5..=0.5).contains(&min), "min {min}");
        assert!((10.0..=14.5).contains(&max), "max {max}");
    }

    #[test]
    fn inaccessible_cells_have_no_timing() {
        let cells = run(1);
        for c in &cells {
            let inaccessible = c.col == 10 && (c.floor == 1 || c.floor == 2);
            assert_eq!(c.timing_error_us.is_none(), inaccessible, "cell {:?}", (c.col, c.floor));
        }
    }

    #[test]
    fn timing_errors_sub_ten_microseconds_mostly() {
        // Paper: "SoftLoRa achieves sub-10 µs signal timestamping accuracy
        // in a concrete building" (cells range 0.07–8.03 µs).
        let cells = run(2);
        let errs: Vec<f64> = cells.iter().filter_map(|c| c.timing_error_us).collect();
        let within: usize = errs.iter().filter(|&&e| e < 10.0).count();
        assert!(
            within as f64 / errs.len() as f64 > 0.85,
            "{within}/{} cells under 10 µs",
            errs.len()
        );
    }

    #[test]
    fn survey_covers_all_cells() {
        let cells = run(1);
        assert_eq!(cells.len(), 66);
    }
}
