//! Paper §8.1.1: the full frame-delay attack in the six-floor building,
//! and the SoftLoRa defence end to end.
//!
//! End device in section A1 / 3rd floor, gateway in C3 / 6th floor. The
//! paper's observations reproduced here:
//!
//! * SF7 cannot cross the building reliably; SF8 can (we express this as
//!   the SF7 margin being thin while SF8's is comfortable);
//! * the attack executes: the original is silently jammed, the recording
//!   at the eavesdropper stays clean, and the delayed replay decodes at
//!   the gateway;
//! * a commodity gateway timestamps the replayed records τ late, while
//!   the SoftLoRa gateway flags the replay by its FB.

use softlora::observer::GatewayStats;
use softlora::SoftLoraGateway;
use softlora_attack::FrameDelayAttack;
use softlora_lorawan::{ClassADevice, DeviceConfig, Gateway as CommodityGateway, RxVerdict};
use softlora_phy::oscillator::Oscillator;
use softlora_phy::{PhyConfig, SpreadingFactor};
use softlora_sim::deployment::BuildingDeployment;
use softlora_sim::{AirFrame, HonestChannel, Interceptor, Position};
use std::cell::RefCell;
use std::rc::Rc;

/// Result of the end-to-end attack experiment.
#[derive(Debug, Clone)]
pub struct AttackE2e {
    /// SNR margin over the SF7 demodulation floor on the cross-building
    /// link, dB (thin — the paper found SF7 unusable).
    pub sf7_margin_db: f64,
    /// SNR margin over the SF8 floor, dB.
    pub sf8_margin_db: f64,
    /// Injected delay τ, seconds.
    pub tau_s: f64,
    /// Number of frames sent.
    pub frames: usize,
    /// Frames whose original copy was suppressed stealthily.
    pub originals_suppressed: usize,
    /// Timestamp error of records accepted by the *commodity* gateway,
    /// seconds (≈ τ under attack).
    pub commodity_timestamp_error_s: f64,
    /// Replays flagged by the SoftLoRa gateway.
    pub softlora_detections: usize,
    /// Genuine warm-up frames the SoftLoRa gateway accepted.
    pub softlora_accepted: usize,
}

/// Runs the experiment: `warmup` clean frames followed by `attacked`
/// frames under the frame-delay attack with delay `tau_s`.
pub fn run(warmup: usize, attacked: usize, tau_s: f64) -> AttackE2e {
    let building = BuildingDeployment::new();
    let medium = building.medium();
    let device_pos = building.fixed_node();
    let gw_pos = building.attack_gateway_site();
    let phy = PhyConfig::uplink(SpreadingFactor::Sf8);

    let link = medium.link(&device_pos, &gw_pos, 14.0);
    let sf7_margin_db = link.snr_db() - SpreadingFactor::Sf7.demod_floor_db();
    let sf8_margin_db = link.snr_db() - SpreadingFactor::Sf8.demod_floor_db();

    // Device with a realistic crystal.
    let dev_cfg = DeviceConfig::new(0x2601_0042, phy);
    let mut device = ClassADevice::new(dev_cfg.clone());
    let mut device_osc = Oscillator::sample_end_device(869.75e6, 11);

    // Gateways: commodity and SoftLoRa, both provisioned.
    let mut commodity = CommodityGateway::new();
    commodity.provision(dev_cfg.dev_addr, dev_cfg.keys.clone());
    // All warm-up frames are learning frames: at the cross-building SNR
    // (≈ −1 dB) the FB estimates carry onset-coupling noise of hundreds of
    // Hz, so the adaptive band needs the full clean history before it can
    // separate genuine jitter from the ~1.2 kHz two-USRP replay artefact
    // (the paper builds the database "in the absence of attacks", §7.2).
    // Outcomes are consumed through the observer hook rather than by
    // matching verdicts.
    let softlora_stats = Rc::new(RefCell::new(GatewayStats::default()));
    let mut softlora = SoftLoraGateway::builder(phy)
        .adc_quantisation(false)
        .warmup_frames(warmup.max(1))
        .seed(77)
        .provision(dev_cfg.dev_addr, dev_cfg.keys.clone())
        .observer(Box::new(Rc::clone(&softlora_stats)))
        .build();

    // Attack: eavesdropper next to the device (A1/3F), USRPs next to the
    // gateway (C3/6F).
    let eaves_pos = Position::new(device_pos.x + 2.0, 1.0, device_pos.z);
    let attacker_pos = Position::new(gw_pos.x - 2.0, 1.0, gw_pos.z);
    let mut attack = FrameDelayAttack::new(eaves_pos, attacker_pos, tau_s, phy, 5);
    let mut honest = HonestChannel;

    let mut originals_suppressed = 0;
    let mut commodity_errors = Vec::new();

    let mut t = 100.0;
    for k in 0..warmup + attacked {
        let under_attack = k >= warmup;
        device.sense(500 + k as u16, t - 0.5).expect("sense");
        let tx = device.try_transmit(t).expect("transmit");
        let frame = AirFrame {
            dev_addr: dev_cfg.dev_addr,
            bytes: tx.bytes.clone(),
            tx_start_global_s: t,
            airtime_s: tx.airtime_s,
            tx_power_dbm: 14.0,
            tx_position: device_pos,
            tx_bias_hz: device_osc.frame_bias_hz(),
            tx_phase: 0.3,
            sf: phy.sf,
        };
        let deliveries = if under_attack {
            attack.intercept(&frame, &medium, &gw_pos)
        } else {
            honest.intercept(&frame, &medium, &gw_pos)
        };

        for d in &deliveries {
            // Commodity gateway path: the RN2483 model decides whether the
            // host sees the frame.
            let model = softlora_phy::rn2483::Rn2483Model::new();
            let outcome = model.receive(&phy, d.bytes.len(), d.snr_db, d.jamming);
            if outcome.is_stealthy_suppression() && !d.is_replay {
                originals_suppressed += 1;
            }
            if matches!(
                outcome,
                softlora_phy::rn2483::ReceptionOutcome::Legitimate
                    | softlora_phy::rn2483::ReceptionOutcome::BothReceived
            ) {
                if let RxVerdict::Accepted(up) = commodity.receive(&d.bytes, d.arrival_global_s) {
                    // True time of interest was t − 0.5.
                    commodity_errors.push(up.records[0].global_time_s - (t - 0.5));
                }
            }
            // SoftLoRa path: the observer tallies accepts and flags.
            softlora.process(d).expect("softlora pipeline");
        }
        t += 200.0;
    }

    // Under attack, the commodity gateway's accepted records are the
    // replays: their error ≈ τ. (Warm-up errors are milliseconds.)
    let attacked_errors: Vec<f64> = commodity_errors.iter().cloned().filter(|e| *e > 1.0).collect();
    let commodity_timestamp_error_s = if attacked_errors.is_empty() {
        0.0
    } else {
        attacked_errors.iter().sum::<f64>() / attacked_errors.len() as f64
    };

    let stats = softlora_stats.borrow();
    AttackE2e {
        sf7_margin_db,
        sf8_margin_db,
        tau_s,
        frames: warmup + attacked,
        originals_suppressed,
        commodity_timestamp_error_s,
        softlora_detections: stats.replays_flagged as usize,
        softlora_accepted: stats.accepted as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_attack_and_defence() {
        // Six warm-up frames: at the cross-building SNR (≈ −1 dB) the FB
        // estimates carry onset-coupling noise of a few hundred Hz, so the
        // adaptive band needs a handful of frames to stabilise below the
        // ~1.2 kHz two-USRP replay artefact.
        let r = run(6, 4, 30.0);
        // Link margins: SF8 comfortable, SF7 thin (paper: SF7 unusable).
        assert!(r.sf8_margin_db > r.sf7_margin_db);
        assert!(r.sf7_margin_db < 9.0, "sf7 margin {}", r.sf7_margin_db);
        // Every attacked original was suppressed silently.
        assert_eq!(r.originals_suppressed, 4);
        assert_eq!(r.softlora_detections, 4);
        // The commodity gateway accepted replays with ~τ timestamp error.
        assert!(
            (r.commodity_timestamp_error_s - 30.0).abs() < 0.5,
            "commodity error {}",
            r.commodity_timestamp_error_s
        );
        // SoftLoRa accepted the warm-up frames and nothing else.
        assert!(r.softlora_accepted >= 6);
    }

    #[test]
    fn no_attack_no_detections() {
        let r = run(5, 0, 30.0);
        assert_eq!(r.softlora_detections, 0);
        assert_eq!(r.originals_suppressed, 0);
        assert!(r.commodity_timestamp_error_s.abs() < 1e-6);
    }
}
