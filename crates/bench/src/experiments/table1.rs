//! Paper Table 1: jamming attack time windows for the RN2483.
//!
//! The windows are *measured* the way the paper measured them: sweep the
//! jamming onset over the frame and record where the victim's observable
//! outcome changes (jammer-captured → silent drop → CRC alert → both
//! received), rather than just printing the model formulas.

use softlora_phy::rn2483::{JammingAttempt, ReceptionOutcome, Rn2483Model};
use softlora_phy::{PhyConfig, SpreadingFactor};

/// One measured row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Spreading factor.
    pub sf: u32,
    /// Chirp time in ms.
    pub chirp_ms: f64,
    /// Preamble time in ms.
    pub preamble_ms: f64,
    /// Payload size in bytes.
    pub payload: usize,
    /// Measured w1 in ms (last onset that captures the receiver).
    pub w1_ms: f64,
    /// Measured w2 in ms (last onset that silently drops).
    pub w2_ms: f64,
    /// Measured w3 in ms (last onset that raises a CRC alert).
    pub w3_ms: f64,
    /// Paper's measured values (w1, w2, w3) in ms, for comparison.
    pub paper_ms: (f64, f64, f64),
}

impl Table1Row {
    /// Effective (stealthy) attack window in ms.
    pub fn effective_ms(&self) -> f64 {
        self.w2_ms - self.w1_ms
    }
}

/// The paper's measured Table 1 values: (SF, payload, w1, w2, w3) in ms.
pub const PAPER_TABLE1: [(u32, usize, f64, f64, f64); 6] = [
    (7, 10, 5.0, 28.0, 141.0),
    (7, 20, 5.0, 38.0, 156.0),
    (7, 30, 6.0, 41.0, 165.0),
    (7, 40, 6.0, 54.0, 178.0),
    (8, 30, 10.0, 82.0, 208.0),
    (9, 30, 22.0, 156.0, 274.0),
];

/// Sweeps the jamming onset and measures the outcome boundaries for one
/// configuration.
fn measure(sf: SpreadingFactor, payload: usize, paper: (f64, f64, f64)) -> Table1Row {
    let cfg = PhyConfig::uplink(sf);
    let model = Rn2483Model::new();
    let snr = 5.0; // comfortably decodable
    let outcome_at = |onset_s: f64| -> ReceptionOutcome {
        model.receive(&cfg, payload, snr, Some(JammingAttempt { onset_s, relative_power_db: 10.0 }))
    };
    // Sweep at 0.1 ms resolution to the frame end plus slack.
    let end = cfg.airtime(payload) + 0.2;
    let mut w1 = 0.0;
    let mut w2 = 0.0;
    let mut w3 = 0.0;
    let mut onset = 0.0;
    while onset < end {
        match outcome_at(onset) {
            ReceptionOutcome::JammerCaptured => w1 = onset,
            ReceptionOutcome::SilentDrop => w2 = onset,
            ReceptionOutcome::CrcAlert => w3 = onset,
            _ => {}
        }
        onset += 1e-4;
    }
    Table1Row {
        sf: sf.value(),
        chirp_ms: cfg.chirp_time() * 1e3,
        preamble_ms: cfg.preamble_time() * 1e3,
        payload,
        w1_ms: w1 * 1e3,
        w2_ms: w2 * 1e3,
        w3_ms: w3 * 1e3,
        paper_ms: paper,
    }
}

/// Reproduces all rows of Table 1.
pub fn run() -> Vec<Table1Row> {
    PAPER_TABLE1
        .iter()
        .map(|&(sf, payload, w1, w2, w3)| {
            measure(SpreadingFactor::from_value(sf).expect("table sf"), payload, (w1, w2, w3))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_paper_table() {
        let rows = run();
        assert_eq!(rows.len(), 6);
        for (row, paper) in rows.iter().zip(PAPER_TABLE1.iter()) {
            assert_eq!(row.sf, paper.0);
            assert_eq!(row.payload, paper.1);
        }
    }

    #[test]
    fn w1_matches_paper_within_a_chirp() {
        for row in run() {
            assert!(
                (row.w1_ms - row.paper_ms.0).abs() <= row.chirp_ms + 0.3,
                "SF{} {}B: w1 {} vs paper {}",
                row.sf,
                row.payload,
                row.w1_ms,
                row.paper_ms.0
            );
        }
    }

    #[test]
    fn w2_shape_tracks_paper() {
        // Within 20 % of the paper's measured value for every row.
        for row in run() {
            let rel = (row.w2_ms - row.paper_ms.1).abs() / row.paper_ms.1;
            assert!(
                rel < 0.2,
                "SF{} {}B: w2 {} vs paper {}",
                row.sf,
                row.payload,
                row.w2_ms,
                row.paper_ms.1
            );
        }
    }

    #[test]
    fn w3_shape_tracks_paper() {
        // w3 = airtime + decode latency; within 20 % of the paper's value.
        for row in run() {
            let rel = (row.w3_ms - row.paper_ms.2).abs() / row.paper_ms.2;
            assert!(
                rel < 0.2,
                "SF{} {}B: w3 {} vs paper {}",
                row.sf,
                row.payload,
                row.w3_ms,
                row.paper_ms.2
            );
        }
    }

    #[test]
    fn effective_window_is_tens_of_ms() {
        for row in run() {
            assert!(row.effective_ms() > 20.0, "SF{}: {}", row.sf, row.effective_ms());
        }
    }

    #[test]
    fn ordering_invariant() {
        for row in run() {
            assert!(row.w1_ms < row.w2_ms && row.w2_ms < row.w3_ms);
        }
    }
}
