//! Paper Table 2: signal-timestamping error upper bound for the envelope
//! detector versus the AIC detector, on I and Q traces, over ten trials.

use crate::common;
use softlora::phy_timestamp::{OnsetMethod, PhyTimestamper};
use softlora_dsp::aic::aic_pick;
use softlora_dsp::envelope::EnvelopeDetector;
use softlora_phy::{PhyConfig, SpreadingFactor};

/// Result of one detector/trace-component combination across trials.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// "ENV" or "AIC".
    pub detector: &'static str,
    /// "I" or "Q".
    pub component: &'static str,
    /// Per-trial error upper bounds in µs (error magnitude plus the
    /// half-sample quantisation bound, matching the paper's metric).
    pub errors_us: Vec<f64>,
}

impl Table2Row {
    /// Maximum error across trials, µs.
    pub fn max_us(&self) -> f64 {
        self.errors_us.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean error across trials, µs.
    pub fn mean_us(&self) -> f64 {
        self.errors_us.iter().sum::<f64>() / self.errors_us.len().max(1) as f64
    }
}

/// Runs the ten high-SNR trials of Table 2.
pub fn run(trials: usize) -> Vec<Table2Row> {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let mut rows = vec![
        Table2Row { detector: "ENV", component: "I", errors_us: Vec::new() },
        Table2Row { detector: "ENV", component: "Q", errors_us: Vec::new() },
        Table2Row { detector: "AIC", component: "I", errors_us: Vec::new() },
        Table2Row { detector: "AIC", component: "Q", errors_us: Vec::new() },
    ];
    for t in 0..trials {
        let cap = common::capture(&phy, 2, -22_000.0 - 150.0 * (t % 4) as f64, 1.5, 500, t as u64);
        let dt_us = cap.dt() * 1e6;
        let bound = |onset: usize| -> f64 {
            (onset as f64 - cap.true_onset as f64).abs() * dt_us + dt_us / 2.0
        };
        let env = EnvelopeDetector::new();
        rows[0].errors_us.push(bound(env.detect(&cap.i).expect("env I").onset));
        rows[1].errors_us.push(bound(env.detect(&cap.q).expect("env Q").onset));
        rows[2].errors_us.push(bound(aic_pick(&cap.i, 16).expect("aic I").onset));
        rows[3].errors_us.push(bound(aic_pick(&cap.q, 16).expect("aic Q").onset));
    }
    rows
}

/// The paper's summary claim: AIC under 2 µs, envelope under ~10 µs.
pub fn paper_bounds() -> (f64, f64) {
    (2.0, 9.8)
}

/// Convenience used by the integration tests: errors of the production
/// timestamper on the same trace family.
pub fn production_timestamper_max_error_us(trials: usize) -> f64 {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let ts = PhyTimestamper::new(OnsetMethod::Aic);
    let mut max = 0.0f64;
    for t in 0..trials {
        let cap = common::capture(&phy, 2, -21_000.0, 0.5, 500, 1000 + t as u64);
        let err = ts.timestamp_error_s(&cap).expect("timestamp").abs() * 1e6;
        max = max.max(err);
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aic_rows_meet_paper_bound() {
        let rows = run(10);
        let (aic_bound, env_bound) = paper_bounds();
        for row in rows.iter().filter(|r| r.detector == "AIC") {
            assert!(row.max_us() <= aic_bound, "AIC {} max {} µs", row.component, row.max_us());
        }
        for row in rows.iter().filter(|r| r.detector == "ENV") {
            assert!(
                row.max_us() <= env_bound + 2.0,
                "ENV {} max {} µs",
                row.component,
                row.max_us()
            );
        }
    }

    #[test]
    fn aic_beats_envelope() {
        let rows = run(10);
        let mean = |d: &str| -> f64 {
            rows.iter().filter(|r| r.detector == d).map(Table2Row::mean_us).sum::<f64>() / 2.0
        };
        assert!(mean("AIC") < mean("ENV"), "AIC {} ENV {}", mean("AIC"), mean("ENV"));
    }

    #[test]
    fn production_path_microsecond_accurate() {
        assert!(production_timestamper_max_error_us(6) < 3.0);
    }
}
