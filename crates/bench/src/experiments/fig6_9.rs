//! Paper Figs. 6–9: the illustrative signal-processing figures.
//!
//! * Fig. 6 — I trace and spectrogram of an ideal SF7 up chirp (Kaiser
//!   window, 2^S-point STFT): we regenerate the spectrogram and report its
//!   geometry (≈ 20 frames, ≈ 50 µs time resolution) plus the linear
//!   frequency ridge.
//! * Fig. 7 — the I trace's shape depends on the unknown phase θ,
//!   defeating matched filtering.
//! * Fig. 8 — a real capture's dip centre shifts due to the FB.
//! * Fig. 9 — envelope-ratio and AIC detector outputs on a capture.

use crate::common;
use softlora_dsp::aic::aic_pick;
use softlora_dsp::envelope::EnvelopeDetector;
use softlora_dsp::spectrogram::{stft, Spectrogram, StftConfig};
use softlora_phy::{ChirpGenerator, PhyConfig, SpreadingFactor};

/// Summary of the regenerated figures.
#[derive(Debug, Clone)]
pub struct Fig6to9 {
    /// Spectrogram frame count (paper: 20 over one SF7 chirp).
    pub spectrogram_frames: usize,
    /// Spectrogram time resolution, µs (paper: ≈ 50 µs).
    pub time_resolution_us: f64,
    /// Frequency ridge of the chirp, Hz, one value per frame.
    pub ridge_hz: Vec<f64>,
    /// Correlation between the θ=0 and θ=π I traces (Fig. 7; strongly
    /// negative — the shapes differ, so no single matched-filter template
    /// exists).
    pub phase_trace_correlation: f64,
    /// Envelope detector onset error, samples (Fig. 9a).
    pub envelope_onset_error: i64,
    /// AIC detector onset error, samples (Fig. 9b).
    pub aic_onset_error: i64,
}

/// Regenerates the data behind Figs. 6–9.
pub fn run() -> Fig6to9 {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let fs = 2.4e6;

    // Fig. 6: ideal chirp spectrogram.
    let generator =
        ChirpGenerator::new(phy.sf, phy.channel.bandwidth.hz(), fs).expect("chirp generator");
    let chirp = generator.upchirp(0, 0.0, 0.0, 1.0);
    let sg: Spectrogram = stft(&chirp, &StftConfig::paper_fig6(7, fs)).expect("spectrogram");
    let ridge_hz = sg.ridge();

    // Fig. 7: θ = 0 versus θ = π.
    let (i0, _) = generator.upchirp_iq(0, 0.0, 0.0, 1.0);
    let (ipi, _) = generator.upchirp_iq(0, 0.0, std::f64::consts::PI, 1.0);
    let dot: f64 = i0.iter().zip(ipi.iter()).map(|(a, b)| a * b).sum();
    let norm: f64 = i0.iter().map(|a| a * a).sum();
    let phase_trace_correlation = dot / norm;

    // Figs. 8–9: a realistic capture with FB, and the two detectors.
    let cap = common::capture(&phy, 2, -22_800.0, 1.2, 700, 3);
    let env = EnvelopeDetector::new().detect(&cap.i).expect("envelope");
    let aic = aic_pick(&cap.i, 16).expect("aic");

    Fig6to9 {
        spectrogram_frames: sg.frames(),
        time_resolution_us: sg.time_resolution() * 1e6,
        ridge_hz,
        phase_trace_correlation,
        envelope_onset_error: env.onset as i64 - cap.true_onset as i64,
        aic_onset_error: aic.onset as i64 - cap.true_onset as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectrogram_geometry_matches_paper() {
        let f = run();
        assert!((19..=22).contains(&f.spectrogram_frames), "{}", f.spectrogram_frames);
        assert!((f.time_resolution_us - 46.7).abs() < 6.0, "{}", f.time_resolution_us);
    }

    #[test]
    fn ridge_sweeps_the_band_upward() {
        let f = run();
        let first = f.ridge_hz.first().copied().expect("ridge");
        let last = f.ridge_hz.last().copied().expect("ridge");
        assert!(first < -40_000.0, "first {first}");
        assert!(last > 40_000.0, "last {last}");
    }

    #[test]
    fn phase_flip_inverts_the_trace() {
        // cos(Θ+π) = −cos Θ: correlation ≈ −1, demonstrating Fig. 7's
        // "impossible to define a template shape" argument.
        let f = run();
        assert!(f.phase_trace_correlation < -0.99, "{}", f.phase_trace_correlation);
    }

    #[test]
    fn detectors_land_near_the_onset() {
        let f = run();
        assert!(f.aic_onset_error.abs() <= 4, "aic {}", f.aic_onset_error);
        assert!(f.envelope_onset_error.abs() <= 24, "env {}", f.envelope_onset_error);
    }
}
