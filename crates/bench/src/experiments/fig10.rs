//! Paper Fig. 10: AIC timestamping error versus received SNR.
//!
//! Methodology follows §6.2: zero-mean Gaussian noise is added to a
//! high-SNR capture at each target SNR, and the AIC error is averaged over
//! trials. The paper reports errors within ~20 µs for the building's SNR
//! range (−1..13 dB) and within ~25 µs at −20 dB; our amplitude-domain
//! pickers match the first regime and degrade faster below ≈ −5 dB (see
//! EXPERIMENTS.md for the discussion).

use crate::common;
use softlora::phy_timestamp::{OnsetMethod, PhyTimestamper};
use softlora_phy::{PhyConfig, SpreadingFactor};

/// One SNR point of the Fig. 10 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig10Point {
    /// Received SNR in dB.
    pub snr_db: f64,
    /// Mean absolute timestamping error, µs.
    pub mean_error_us: f64,
    /// Maximum absolute timestamping error, µs.
    pub max_error_us: f64,
}

/// Sweeps the SNR axis with `trials` captures per point using `method`.
pub fn run(snrs_db: &[f64], trials: usize, method: OnsetMethod) -> Vec<Fig10Point> {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let ts = PhyTimestamper::new(method);
    snrs_db
        .iter()
        .map(|&snr| {
            let mut sum = 0.0;
            let mut max = 0.0f64;
            for t in 0..trials {
                let clean = common::capture(&phy, 2, -22_000.0, 1.0, 700, 31 * t as u64 + 5);
                let noisy = common::with_noise(&clean, snr, false, 77 + t as u64);
                let err = ts.timestamp_error_s(&noisy).expect("pick").abs() * 1e6;
                sum += err;
                max = max.max(err);
            }
            Fig10Point { snr_db: snr, mean_error_us: sum / trials as f64, max_error_us: max }
        })
        .collect()
}

/// The paper's SNR axis.
pub fn paper_snrs() -> Vec<f64> {
    vec![-20.0, -10.0, -1.0, 0.0, 5.0, 10.0, 13.0, 20.0, 30.0, 40.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn building_snr_range_within_20us() {
        // The Fig. 15 confirmation: for SNRs −1..13 dB the average error
        // stays within ~20 µs.
        let pts = run(&[-1.0, 5.0, 13.0], 6, OnsetMethod::PowerAic);
        for p in pts {
            assert!(p.mean_error_us < 20.0, "{} dB: {} µs", p.snr_db, p.mean_error_us);
        }
    }

    #[test]
    fn high_snr_sub_microsecond_class() {
        let pts = run(&[30.0], 5, OnsetMethod::Aic);
        assert!(pts[0].mean_error_us < 3.0, "{} µs", pts[0].mean_error_us);
    }

    #[test]
    fn error_monotone_in_snr_broadly() {
        let pts = run(&[0.0, 13.0, 30.0], 6, OnsetMethod::PowerAic);
        assert!(pts[0].mean_error_us >= pts[2].mean_error_us);
    }
}
