//! Detector ablation: detection rate versus false-alarm rate across the
//! tolerance-band policy (an extension beyond the paper's evaluation,
//! listed in DESIGN.md).
//!
//! The FB estimate a gateway sees is `device centre + estimation noise`,
//! where the noise scale depends on operating SNR (the onset-coupling
//! effect measured in EXPERIMENTS.md: ≈ 50 Hz at bench SNR, ≈ 300–500 Hz
//! at the building's −1 dB). A replay adds the chain artefact (≈ 600 Hz
//! for one USRP, ≈ 1.2–2 kHz for two). This experiment sweeps the
//! detector's `band_sigma` policy against those regimes and reports the
//! ROC-style trade-off.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use softlora::fb_db::FbDatabase;
use softlora::replay_detect::ReplayDetector;

/// One ROC point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// The `band_sigma` multiplier swept.
    pub band_sigma: f64,
    /// Detection rate over the replayed frames.
    pub detection_rate: f64,
    /// False-alarm rate over the genuine frames.
    pub false_alarm_rate: f64,
}

/// Operating regime of the ROC sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocRegime {
    /// Per-frame FB estimation noise (std), Hz.
    pub fb_noise_hz: f64,
    /// Replay chain artefact, Hz.
    pub artefact_hz: f64,
    /// Human-readable label.
    pub label: &'static str,
}

/// The two regimes the paper's experiments actually exercise.
pub const REGIMES: [RocRegime; 2] = [
    RocRegime { fb_noise_hz: 50.0, artefact_hz: -600.0, label: "bench SNR, 1 USRP" },
    RocRegime { fb_noise_hz: 400.0, artefact_hz: -1500.0, label: "building -1 dB, 2 USRPs" },
];

/// Sweeps `band_sigma` values for a regime with `frames` genuine and
/// `frames` replayed frames per point.
pub fn run(regime: &RocRegime, band_sigmas: &[f64], frames: usize, seed: u64) -> Vec<RocPoint> {
    band_sigmas
        .iter()
        .map(|&bs| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut gauss = || {
                let u1: f64 = rng.random::<f64>().max(1e-12);
                let u2: f64 = rng.random();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            // Band floor stays at the paper-derived 360 Hz; sigma swept.
            let mut det = ReplayDetector::new(FbDatabase::new(32, 3, 360.0, bs));
            let center = -22_000.0;
            // Warm up with 8 genuine frames.
            for _ in 0..8 {
                det.check_and_update(1, center + regime.fb_noise_hz * gauss());
            }
            // Interleave genuine and replayed frames.
            for _ in 0..frames {
                let genuine = center + regime.fb_noise_hz * gauss();
                det.check_scored(1, genuine, false);
                let replay = center + regime.artefact_hz + regime.fb_noise_hz * gauss();
                // Score replays without letting them update the database on
                // a miss (the miss itself is the scored event).
                let v = det.check(1, replay);
                det.score(v, true);
            }
            let s = det.stats();
            RocPoint {
                band_sigma: bs,
                detection_rate: s.detection_rate(),
                false_alarm_rate: s.false_alarm_rate(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_regime_is_easy() {
        // 600 Hz artefact vs 50 Hz noise: everything from 2σ to 6σ detects
        // perfectly with no false alarms (the 360 Hz floor dominates).
        let pts = run(&REGIMES[0], &[2.0, 4.0, 6.0], 200, 1);
        for p in &pts {
            assert_eq!(p.detection_rate, 1.0, "{p:?}");
            assert_eq!(p.false_alarm_rate, 0.0, "{p:?}");
        }
    }

    #[test]
    fn building_regime_shows_tradeoff() {
        // 1.5 kHz artefact vs 400 Hz noise: tight bands detect but risk
        // false alarms; wide bands miss replays. This is the regime where
        // the band policy genuinely matters. A single 300-frame run has
        // binomial noise comparable to the 5% false-alarm bound, so
        // average the rates over a few independent seeds.
        let seeds = [1u64, 2, 3];
        let mut avg = [RocPoint { band_sigma: 0.0, detection_rate: 0.0, false_alarm_rate: 0.0 }; 3];
        for &seed in &seeds {
            let pts = run(&REGIMES[1], &[1.0, 3.0, 8.0], 300, seed);
            for (a, p) in avg.iter_mut().zip(&pts) {
                a.band_sigma = p.band_sigma;
                a.detection_rate += p.detection_rate / seeds.len() as f64;
                a.false_alarm_rate += p.false_alarm_rate / seeds.len() as f64;
            }
        }
        let [tight, mid, loose] = &avg;
        assert!(tight.detection_rate > 0.95, "{tight:?}");
        assert!(tight.false_alarm_rate > 0.1, "{tight:?}");
        assert!(mid.detection_rate > 0.7, "{mid:?}");
        assert!(mid.false_alarm_rate < 0.05, "{mid:?}");
        assert!(loose.detection_rate < 0.1, "{loose:?}");
        // Monotonicity: wider band -> fewer false alarms, fewer detections.
        assert!(tight.false_alarm_rate >= mid.false_alarm_rate);
        assert!(mid.false_alarm_rate >= loose.false_alarm_rate);
        assert!(tight.detection_rate >= mid.detection_rate);
        assert!(mid.detection_rate >= loose.detection_rate);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&REGIMES[0], &[3.0], 50, 9);
        let b = run(&REGIMES[0], &[3.0], 50, 9);
        assert_eq!(a, b);
    }
}
