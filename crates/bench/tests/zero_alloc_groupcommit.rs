//! Pins the allocation-free steady state of the group-commit durability
//! path.
//!
//! A committed batch reaches the WAL as **one coalesced frame** —
//! `ShardWal::append_batch` writes one header, one CRC and one
//! contiguous run — and durability is one `sync_dirty` sweep across the
//! shards. Warm, neither may touch the heap: the segment writer's
//! buffer is pre-grown, the frame header is a stack array and the fsync
//! batching is pure book-keeping. This is the invariant that lets the
//! group committer run on the commit path's latency budget, and this
//! test makes regressing it loud. The file intentionally holds **one**
//! test: the counting allocator is process-global, so a lone test keeps
//! the measured region free of concurrent harness allocations.

use softlora_bench::alloc_counter::CountingAllocator;
use softlora_store::{test_dir, ShardedStore, WalOptions};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[test]
fn steady_state_group_commit_path_is_allocation_free() {
    // --- Setup (allocations allowed): a 2-shard store with a segment
    // budget large enough that the measured region never rotates, plus a
    // prebuilt coalesced frame payload (the commit path reuses one
    // Encoder the same way). ---
    let dir = test_dir("zero-alloc-groupcommit");
    let options = WalOptions { segment_bytes: 1 << 22, ..WalOptions::default() };
    let store = ShardedStore::open(&dir, 2, options).expect("open store");
    for recovery in store.take_recovery() {
        assert_eq!(recovery.records.len(), 0, "fresh directory");
    }

    let mut payload = Vec::new();
    for k in 0u8..3 {
        let record = [k; 48];
        payload.extend_from_slice(&(record.len() as u32).to_le_bytes());
        payload.extend_from_slice(&record);
    }

    let run_batch = |store: &ShardedStore, payload: &[u8]| {
        for shard in 0..2 {
            store
                .shard(shard)
                .lock()
                .expect("shard wal poisoned")
                .append_batch(payload, 3)
                .expect("append batch");
        }
        store.sync_dirty().expect("group-commit fsync");
    };

    // --- Warm-up: grow the writer buffers, fault in the metrics. ---
    for _ in 0..3 {
        run_batch(&store, &payload);
    }

    // --- Steady state: zero allocations across many committed batches. ---
    let before = ALLOC.snapshot();
    for _ in 0..16 {
        run_batch(&store, &payload);
    }
    let after = ALLOC.snapshot();
    let allocated = before.allocations_since(&after);
    assert_eq!(
        allocated,
        0,
        "steady-state append_batch→sync_dirty path allocated {allocated} times over 16 \
         batches ({} bytes)",
        after.bytes_allocated - before.bytes_allocated,
    );

    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
