//! Pins the allocation-free steady state of the streaming **collection
//! path** — the `AnalyzedFrame` box the ROADMAP flagged as the last
//! known per-frame allocation. A `GatewayFrontBlock` used to heap-allocate
//! a `Vec` per analysed group to carry its front results into the ring;
//! the results now ride inline in the `FrontPart` itself (`FrontVec`),
//! so a warm front block must analyse a group and emit its part without
//! a single heap allocation.
//!
//! One test per file: the counting allocator is process-global, so a
//! lone test keeps the measured region free of harness allocations.

use softlora::{FrontPart, NetworkServer};
use softlora_bench::alloc_counter::CountingAllocator;
use softlora_lorawan::{ClassADevice, DeviceConfig};
use softlora_phy::{PhyConfig, SpreadingFactor};
use softlora_runtime::ring::channel;
use softlora_runtime::{Block, InputPort, OutputPort, WorkIo, WorkResult};
use softlora_sim::{Delivery, FleetDelivery, UplinkDeliveries};
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[test]
fn steady_state_streaming_front_block_is_allocation_free() {
    // --- Setup (allocations allowed): a one-gateway server dismantled
    // into streaming blocks, plus one genuine SF7 uplink group. ---
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let dev_cfg = DeviceConfig::new(0x2601_0001, phy);
    let mut dev = ClassADevice::new(dev_cfg.clone());
    dev.sense(1, 99.0).expect("sense");
    let tx = dev.try_transmit(100.0).expect("tx");
    let delivery = Delivery {
        bytes: tx.bytes,
        dev_addr: dev_cfg.dev_addr,
        arrival_global_s: 100.0 + 4e-6,
        snr_db: 10.0,
        carrier_bias_hz: -22_000.0,
        carrier_phase: 0.4,
        sf: phy.sf,
        jamming: None,
        is_replay: false,
    };
    let group = Arc::new(UplinkDeliveries {
        uplink: 0,
        dev_addr: dev_cfg.dev_addr,
        tx_start_global_s: 100.0,
        airtime_s: 0.1,
        copies: vec![FleetDelivery { gateway: 0, delivery }],
    });

    let server = NetworkServer::builder(phy)
        .adc_quantisation(false)
        .gateway(3)
        .provision(dev_cfg.dev_addr, dev_cfg.keys.clone())
        .build();
    let (mut fronts, _sink) = server.into_streaming();
    let mut front = fronts.pop().expect("one gateway front block");

    // Hand-built flowgraph edges: groups in, parts out. The rings are
    // preallocated slot arrays, so moving items through them is free.
    let (mut group_tx, group_rx) = channel::<Arc<UplinkDeliveries>, 64>();
    let (part_tx, mut part_rx) = channel::<FrontPart, 64>();
    let mut inputs = [InputPort::new(Box::new(group_rx))];
    let mut outputs = [OutputPort::new(Box::new(part_tx))];

    let mut run_group = |front: &mut dyn Block<In = Arc<UplinkDeliveries>, Out = FrontPart>| {
        assert!(group_tx.push(Arc::clone(&group)).is_ok(), "ring has room");
        let result = front.work(&mut WorkIo { inputs: &mut inputs, outputs: &mut outputs });
        assert_eq!(result, WorkResult::Produced(1), "one group in, one part out");
        let part = part_rx.pop().expect("front emitted a part");
        // The block must have done real work: the gateway heard the
        // group's single copy, and its result rides inline in the part.
        assert_eq!(part.fronts.len(), 1, "one analysed copy per group");
    };

    // --- Warm-up: fill the scratch pools and FFT plans. Capture
    // synthesis draws a per-frame-index random lead (up to 200 extra
    // samples) and the block's frame index advances monotonically, so a
    // long warm-up bounds the pools at the lead distribution's maximum
    // before the measured window opens. ---
    for _ in 0..64 {
        run_group(&mut front);
    }

    // --- Steady state: zero allocations across many groups. ---
    let before = ALLOC.snapshot();
    for _ in 0..16 {
        run_group(&mut front);
    }
    let after = ALLOC.snapshot();
    let allocated = before.allocations_since(&after);
    assert_eq!(
        allocated,
        0,
        "steady-state streaming front block allocated {allocated} times over 16 groups \
         ({} bytes)",
        after.bytes_allocated - before.bytes_allocated,
    );
}
