//! Pins the allocation-free steady state of the gateway **front half**
//! and the commit path's record-encode seam — the last two per-frame
//! allocation sources called out on the ROADMAP:
//!
//! * `Pipeline::front_half_with` used to heap-allocate a
//!   `Vec<StageTiming>` per frame; stage timings are now an inline
//!   fixed-size array (`StageTimings`), so a warm front half must be
//!   allocation-free end to end;
//! * the server tail used to allocate a fresh buffer per WAL record in
//!   `CommitRecord::encode`; commits now reuse one per-shard scratch
//!   `Encoder` — pinned here through the same clear-and-reuse `Encoder`
//!   discipline on a commit-record-shaped payload.
//!
//! One test per file: the counting allocator is process-global, so a
//! lone test keeps the measured region free of harness allocations.

use softlora::SoftLoraGateway;
use softlora_bench::alloc_counter::CountingAllocator;
use softlora_dsp::DspScratch;
use softlora_lorawan::{ClassADevice, DeviceConfig};
use softlora_phy::{PhyConfig, SpreadingFactor};
use softlora_sim::Delivery;
use softlora_store::Encoder;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[test]
fn steady_state_front_half_and_record_encode_are_allocation_free() {
    // --- Setup (allocations allowed): one provisioned gateway and a
    // genuine SF7 delivery off a Class A device. ---
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let dev_cfg = DeviceConfig::new(0x2601_0001, phy);
    let mut dev = ClassADevice::new(dev_cfg.clone());
    let gw = SoftLoraGateway::builder(phy)
        .adc_quantisation(false)
        .seed(3)
        .provision(dev_cfg.dev_addr, dev_cfg.keys.clone())
        .build();
    dev.sense(1, 99.0).expect("sense");
    let tx = dev.try_transmit(100.0).expect("tx");
    let delivery = Delivery {
        bytes: tx.bytes,
        dev_addr: dev_cfg.dev_addr,
        arrival_global_s: 100.0 + 4e-6,
        snr_db: 10.0,
        carrier_bias_hz: -22_000.0,
        carrier_phase: 0.4,
        sf: phy.sf,
        jamming: None,
        is_replay: false,
    };
    let pipeline = gw.pipeline();
    let mut scratch = DspScratch::new();

    // A commit-record-shaped payload: version byte, sequence numbers,
    // absolute counters, per-gateway frame indices, the optional
    // mutations. Mirrors what each shard appends to its WAL per commit.
    let frames: [u64; 8] = [3, 1, 4, 1, 5, 9, 2, 6];
    let encode_record = |e: &mut Encoder| {
        e.u8(1).u64(42).u64(7);
        for _ in 0..18 {
            e.u64(123_456);
        }
        e.u32(frames.len() as u32);
        for &f in &frames {
            e.u64(f);
        }
        e.option(&Some((0x2601_0001u32, -22_000.5f64)), |e, (dev, fb)| {
            e.u32(*dev).f64(*fb);
        });
        e.option(&None::<u8>, |e, v| {
            e.u8(*v);
        });
        e.option(&Some((0x2601_0001u32, 9u16)), |e, (dev, fcnt)| {
            e.u32(*dev).u16(*fcnt);
        });
        e.option(&None::<u8>, |e, v| {
            e.u8(*v);
        });
    };
    let mut wal_buf = Encoder::new();

    let run_frame = |index: u64, scratch: &mut DspScratch, wal_buf: &mut Encoder| {
        let front = pipeline.front_half_with(&delivery, index, scratch).expect("front half");
        // The front half must have done real work: four timed stages on
        // the analysed path, stored inline.
        match &front {
            softlora::pipeline::FrontFrame::Analyzed(a) => assert_eq!(a.timings.len(), 4),
            softlora::pipeline::FrontFrame::NotReceived { .. } => {
                panic!("SNR 10 dB must pass the radio gate")
            }
        }
        wal_buf.clear();
        encode_record(wal_buf);
        assert!(wal_buf.len() > 100, "record encode must produce a real payload");
    };

    // --- Warm-up: fill the scratch pools, build FFT plans, grow the
    // reusable encoder to its steady capacity. Capture synthesis draws a
    // per-frame-index random lead (up to 200 extra samples), so warm over
    // the very indices the measured loop replays — that bounds every pool
    // at exactly the capacity the steady state needs, deterministically.
    for k in 0..16 {
        run_frame(2_000 + k, &mut scratch, &mut wal_buf);
    }

    // --- Steady state: zero allocations across many frames. ---
    let before = ALLOC.snapshot();
    for k in 0..16 {
        run_frame(2_000 + k, &mut scratch, &mut wal_buf);
    }
    let after = ALLOC.snapshot();
    let allocated = before.allocations_since(&after);
    assert_eq!(
        allocated,
        0,
        "steady-state front-half + record-encode path allocated {allocated} times over \
         16 frames ({} bytes)",
        after.bytes_allocated - before.bytes_allocated,
    );
}
