//! Pins the allocation-free warm path of the telemetry layer: once a
//! handle is resolved (registration may allocate — it renders the label
//! key and inserts into the registry map), recording through it is
//! relaxed atomics only. Counter increments, gauge stores and histogram
//! records must never heap-allocate, or every instrumented hot path —
//! the gateway front half, the shard commit loop, the WAL append —
//! inherits a per-event allocation.
//!
//! One test per file: the counting allocator is process-global, so a
//! lone test keeps the measured region free of harness allocations.

use softlora_bench::alloc_counter::CountingAllocator;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[test]
fn warm_metric_recording_is_allocation_free() {
    // --- Setup (allocations allowed): resolve every handle once, the
    // way instrumented components do at construction. ---
    let registry = softlora_telemetry::Registry::new();
    let counter = registry.counter("bench_events_total");
    let labeled = registry.counter_with("bench_labeled_total", &[("shard", "3")]);
    let gauge = registry.gauge("bench_level");
    let histogram = registry.histogram_with("bench_latency_ns", &[("stage", "detect")]);

    // --- Warm-up: touch every cell once. ---
    counter.inc();
    labeled.add(2);
    gauge.set(0.5);
    for v in [0u64, 1, 900, 40_000, u64::MAX] {
        histogram.record(v);
    }

    // --- Steady state: zero allocations across many records, spanning
    // every bucket magnitude a real latency distribution hits. ---
    let before = ALLOC.snapshot();
    for k in 0..4096u64 {
        counter.inc();
        labeled.add(k & 7);
        gauge.set(k as f64 * 0.25);
        histogram.record(k.wrapping_mul(2_654_435_761) >> (k % 48));
    }
    let after = ALLOC.snapshot();
    let allocated = before.allocations_since(&after);
    assert_eq!(
        allocated,
        0,
        "warm metric recording allocated {allocated} times over 4096 iterations \
         ({} bytes)",
        after.bytes_allocated - before.bytes_allocated
    );

    // The records must have landed: the cells are live, not optimised
    // away.
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter_sum("bench_events_total"), 1 + 4096);
    let hist = snapshot
        .find_with("bench_latency_ns", &[("stage", "detect")])
        .and_then(|s| s.value.as_histogram())
        .expect("histogram series present");
    assert_eq!(hist.count, 5 + 4096);
}
