//! Pins the allocation-free steady state of the per-frame signal path.
//!
//! A warm receiver must demodulate a frame and pick its onset without a
//! single heap allocation — that is the whole point of the FFT planner +
//! scratch-arena refactor, and this test makes regressing it loud. The
//! file intentionally holds **one** test: the counting allocator is
//! process-global, so a lone test keeps the measured region free of
//! concurrent harness allocations.

use softlora_bench::alloc_counter::CountingAllocator;
use softlora_dsp::aic::{aic_onset_with, power_aic_onset_with};
use softlora_dsp::Complex;
use softlora_phy::demodulator::DemodScratch;
use softlora_phy::modulator::Modulator;
use softlora_phy::{Demodulator, PhyConfig, SpreadingFactor};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[test]
fn steady_state_demodulate_onset_path_is_allocation_free() {
    // --- Setup (allocations allowed): one SF7 frame in a padded capture,
    // plus the I/Q traces the onset pickers run on. ---
    let cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
    let modulator = Modulator::new(cfg, 2).expect("modulator");
    let demodulator = Demodulator::new(cfg, 2).expect("demodulator");
    let payload = b"steady state frame";
    let frame = modulator.modulate(payload, -21_000.0, 0.4, 1.0).expect("modulate");
    let lead = 120usize;
    let mut capture: Vec<Complex> = vec![Complex::ZERO; lead];
    capture.extend_from_slice(&frame.samples);
    capture.extend(std::iter::repeat_n(Complex::ZERO, 400));
    // The onset pickers run on what the SDR path captures: the silent
    // lead plus the first few preamble chirps (a whole frame would give
    // the changepoint statistic a second, stronger edge at frame end).
    let pick_window = lead + 3 * demodulator.samples_per_chirp();
    let i_trace: Vec<f64> = capture[..pick_window].iter().map(|z| z.re).collect();
    let q_trace: Vec<f64> = capture[..pick_window].iter().map(|z| z.im).collect();

    let mut scratch = DemodScratch::new();

    // One frame's worth of the steady-state path: demodulate, then the
    // two production onset pickers (variance AIC — the paper's choice —
    // and the power-AIC extension).
    let run_frame = |scratch: &mut DemodScratch| {
        let out = demodulator.demodulate_with(&capture, lead, scratch).expect("demodulate");
        assert_eq!(out.payload, payload);
        let onset = aic_onset_with(&i_trace, 16, &mut scratch.dsp).expect("aic onset");
        let power_onset =
            power_aic_onset_with(&i_trace, &q_trace, 16, &mut scratch.dsp).expect("power onset");
        // Both pickers must land within a chirp of the true onset —
        // sanity that the measured path is doing real work.
        assert!(onset.abs_diff(lead) < demodulator.samples_per_chirp());
        assert!(power_onset.abs_diff(lead) < demodulator.samples_per_chirp());
        scratch.recycle(out);
    };

    // --- Warm-up: fill the buffer pools, build the FFT plans, grow the
    // payload/nibble staging to their steady sizes. ---
    for _ in 0..3 {
        run_frame(&mut scratch);
    }

    // --- Steady state: zero allocations across many frames. ---
    let before = ALLOC.snapshot();
    for _ in 0..16 {
        run_frame(&mut scratch);
    }
    let after = ALLOC.snapshot();
    let allocated = before.allocations_since(&after);
    assert_eq!(
        allocated,
        0,
        "steady-state demodulate→onset path allocated {allocated} times over 16 frames \
         ({} bytes)",
        after.bytes_allocated - before.bytes_allocated,
    );
}
