//! Pins the allocation-free steady state of the **pipelined ingest
//! path**: poll-side reassembly (`Reassembler::stash` + `drain_ready`),
//! the SPSC handoff to the off-thread commit worker
//! (`CommitPipe::offer`), the worker's batch pop + commit + watermark
//! publish, and the recycle loop that returns group shells to the
//! reassembler's pools. Once the pools are warm, moving a group from
//! wire arrival to committed-and-recycled must allocate **nothing** on
//! the poll thread.
//!
//! The commit worker runs concurrently on its own thread with its own
//! (warmed) batch buffers; the counting allocator is process-global, so
//! the measured region waits for each group's commit + recycle before
//! stashing the next — any worker-side per-group allocation is caught
//! too.
//!
//! One test per file: the counting allocator is process-global, so a
//! lone test keeps the measured region free of harness allocations.

use softlora::ServerVerdict;
use softlora_bench::alloc_counter::CountingAllocator;
use softlora_net::ingest::{
    CommitPipe, CommitSink, CommitTelemetry, CopyHeader, Reassembler, Stash,
};
use softlora_net::NetError;
use softlora_phy::SpreadingFactor;
use softlora_sim::{Delivery, FleetDelivery, UplinkDeliveries};
use std::time::{Duration, Instant};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// A sink that does nothing but count — the pipe's choreography without
/// a server tail, so the pin isolates the ingest machinery itself.
struct NullSink {
    committed: u64,
}

impl CommitSink for NullSink {
    fn commit(
        &mut self,
        groups: &[UplinkDeliveries],
        _verdicts: &mut Vec<ServerVerdict>,
    ) -> Result<(), NetError> {
        self.committed += groups.len() as u64;
        Ok(())
    }
}

fn header(uplink: u64) -> CopyHeader {
    CopyHeader {
        uplink,
        dev_addr: 0x2601_0001,
        tx_start_global_s: uplink as f64,
        airtime_s: 0.056,
        copies_total: 1,
        copy_index: 0,
    }
}

#[test]
fn steady_state_ingest_to_commit_is_allocation_free() {
    // --- Setup (allocations allowed): telemetry handles, the pipe with
    // its worker thread, a reassembler, and one real delivery whose
    // payload buffer is recycled through every measured group. ---
    let registry = softlora_telemetry::global();
    let telemetry = CommitTelemetry {
        batches: registry.counter("test_zero_alloc_batches"),
        groups_committed: registry.counter("test_zero_alloc_groups"),
        queue_depth: registry.gauge_with("test_zero_alloc_depth", &[]),
        batch_size: registry.histogram_with("test_zero_alloc_batch_size", &[]),
        stalls: registry.counter("test_zero_alloc_stalls"),
    };
    let mut pipe = CommitPipe::spawn(NullSink { committed: 0 }, 64, false, telemetry);
    let mut reassembler = Reassembler::new(Duration::from_secs(60), 1024);
    let mut slot = Some(FleetDelivery {
        gateway: 0,
        delivery: Delivery {
            bytes: vec![0x40, 0x01, 0x00, 0x01, 0x26, 0x00, 0x09, 0x00, 0x01, 0xAA, 0xBB],
            dev_addr: 0x2601_0001,
            arrival_global_s: 100.0,
            snr_db: 8.5,
            carrier_bias_hz: -21_000.0,
            carrier_phase: 0.3,
            sf: SpreadingFactor::Sf7,
            jamming: None,
            is_replay: false,
        },
    });
    let mut batch: Vec<UplinkDeliveries> = Vec::with_capacity(4);

    // One full trip: stash the single copy, release it under the fleet
    // barrier, hand it to the commit worker, wait for the watermark,
    // then reclaim the shell *and* the delivery for the next trip.
    let run_group = |uplink: u64,
                     slot: &mut Option<FleetDelivery>,
                     reassembler: &mut Reassembler,
                     pipe: &mut CommitPipe,
                     batch: &mut Vec<UplinkDeliveries>| {
        let copy = slot.take().expect("delivery recycled from previous trip");
        assert_eq!(reassembler.stash(&header(uplink), Some(copy)), Stash::Filed);
        batch.clear();
        let tally = reassembler.drain_ready(Some(uplink + 1), false, batch);
        assert_eq!(tally.emitted, 1, "complete group below the barrier must release");
        pipe.offer(batch.pop().expect("one group released"));
        pipe.kick();
        let deadline = Instant::now() + Duration::from_secs(10);
        while pipe.committed() < uplink + 1 {
            assert!(Instant::now() < deadline, "commit worker stalled at uplink {uplink}");
            std::hint::spin_loop();
        }
        loop {
            if let Some(mut group) = pipe.pop_recycled() {
                *slot = group.copies.pop();
                assert!(slot.is_some(), "committed group must still hold its copy");
                reassembler.recycle(group);
                break;
            }
            assert!(Instant::now() < deadline, "recycle ring never returned the group");
            std::hint::spin_loop();
        }
    };

    // --- Warm-up: fill the shell/group pools, the worker's batch and
    // verdict buffers, and the handoff rings. ---
    for uplink in 0..16 {
        run_group(uplink, &mut slot, &mut reassembler, &mut pipe, &mut batch);
    }

    // --- Steady state: zero allocations across many groups. ---
    let before = ALLOC.snapshot();
    for uplink in 16..48 {
        run_group(uplink, &mut slot, &mut reassembler, &mut pipe, &mut batch);
    }
    let after = ALLOC.snapshot();
    let allocated = before.allocations_since(&after);
    assert_eq!(
        allocated,
        0,
        "steady-state stash → drain → offer → commit → recycle path allocated \
         {allocated} times over 32 groups ({} bytes)",
        after.bytes_allocated - before.bytes_allocated,
    );

    let log = pipe.finish().expect("commit worker exits cleanly");
    assert!(log.verdicts.is_empty(), "verdict recording was disabled");
}
