//! Pins verdict equality across the DSP kernel switch on the
//! attacked-fleet end-to-end path.
//!
//! Every fast kernel on the default verdict path (fused-stage FFT
//! schedule, chunked dechirp multiplies/folds, batched transforms) is
//! bit-identical to its reference counterpart, and the one ulp-close
//! path (the N/2 real-input transform) feeds no default-config verdict
//! consumer — so a frame-delay-attacked fleet must produce **bit-for-bit
//! identical server verdicts** with `fast_dsp` on and off. This is the
//! end-to-end guarantee behind shipping the fast kernels enabled by
//! default.

use softlora::{NetworkServer, ServerVerdict};
use softlora_attack::FrameDelayAttack;
use softlora_phy::{PhyConfig, SpreadingFactor};
use softlora_sim::{FleetDeployment, HonestChannel, Position, Scenario, UplinkDeliveries};

fn phy() -> PhyConfig {
    PhyConfig::uplink(SpreadingFactor::Sf7)
}

/// A small attacked fleet: two gateways, two devices, the frame-delay
/// chain turning on after the warm-up window and targeting device 0.
fn attacked_groups(gateways: usize) -> (Vec<UplinkDeliveries>, Scenario) {
    let phy = phy();
    let fleet = FleetDeployment::with_gateways(gateways);
    let gw_positions = fleet.gateway_positions();
    let mut scenario =
        Scenario::new_fleet(phy, fleet.medium(), gw_positions.clone(), Box::new(HonestChannel));
    let device_positions = fleet.device_positions(2, 42);
    for (k, pos) in device_positions.iter().enumerate() {
        scenario.add_device(0x2601_6000 + k as u32, *pos, 60.0, k as u64);
    }
    let target = device_positions[0];
    let attack = FrameDelayAttack::near_gateway(
        Position::new(target.x + 2.0, target.y + 1.0, target.z),
        &gw_positions,
        0,
        2.0,
        30.0,
        phy,
        7,
    )
    .with_targets(vec![0x2601_6000]);
    scenario.schedule_interceptor(300.0, Box::new(attack));
    let mut groups = Vec::new();
    scenario.run(480.0, |u| groups.push(u.clone()));
    (groups, scenario)
}

fn run_with_kernel(
    groups: &[UplinkDeliveries],
    scenario: &Scenario,
    gateways: usize,
    fast: bool,
) -> Vec<ServerVerdict> {
    // `SoftLoraConfig::new` (inside the builder) snapshots the
    // process-wide switch, and `Pipeline::new` re-applies it — so
    // flipping it before building configures the whole server.
    softlora_dsp::set_fast_kernels(fast);
    let mut builder = NetworkServer::builder(phy()).adc_quantisation(false).warmup_frames(2);
    for g in 0..gateways {
        builder = builder.gateway(1000 + g as u64);
    }
    for k in 0..scenario.devices() {
        let cfg = scenario.device_config(k).clone();
        builder = builder.provision(cfg.dev_addr, cfg.keys);
    }
    let mut server = builder.build();
    server.process_batch(groups).expect("server pipeline")
}

#[test]
fn attacked_fleet_verdicts_are_identical_across_kernels() {
    let gateways = 2;
    let (groups, scenario) = attacked_groups(gateways);
    assert!(groups.len() >= 10, "scenario must produce a real uplink stream");

    let fast = run_with_kernel(&groups, &scenario, gateways, true);
    let reference = run_with_kernel(&groups, &scenario, gateways, false);
    softlora_dsp::set_fast_kernels(true);

    assert_eq!(fast.len(), reference.len());
    for (k, (a, b)) in fast.iter().zip(&reference).enumerate() {
        assert_eq!(a, b, "uplink {k}: kernel switch changed the verdict");
    }
    // The stream must exercise the detector, not just the radio gate:
    // at least one replay flag and one accepted frame.
    assert!(fast.iter().any(|v| v.is_replay_flagged()), "attack window produced no flags");
    assert!(fast.iter().any(|v| v.is_accepted()), "warm-up produced no accepted frames");
}
