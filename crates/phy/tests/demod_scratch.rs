//! Scratch-reuse demodulation must equal fresh-allocation demodulation.
//!
//! The allocation-free receiver path reuses one [`DemodScratch`] across
//! frames; these properties pin that a warm (reused) arena produces
//! **bit-for-bit** the same frames as a cold arena built per call —
//! payloads, headers, CFO estimates (compared as raw bits) and frame
//! starts all identical, frame after frame.

use proptest::prelude::*;
use softlora_dsp::Complex;
use softlora_phy::demodulator::{DemodScratch, Demodulator};
use softlora_phy::modulator::Modulator;
use softlora_phy::{PhyConfig, SpreadingFactor};

fn build(sf: SpreadingFactor, os: usize) -> (Modulator, Demodulator) {
    let cfg = PhyConfig::uplink(sf);
    (Modulator::new(cfg, os).unwrap(), Demodulator::new(cfg, os).unwrap())
}

fn with_padding(frame: &[Complex], lead: usize, tail: usize) -> Vec<Complex> {
    let mut v = vec![Complex::ZERO; lead];
    v.extend_from_slice(frame);
    v.extend(std::iter::repeat_n(Complex::ZERO, tail));
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random payloads, biases and timing: a reused scratch demodulates
    /// every frame exactly as a fresh one does.
    #[test]
    fn warm_scratch_equals_cold_scratch(
        payload in prop::collection::vec(any::<u8>(), 1..24),
        cfo_khz in -24i32..24,
        lead in 20usize..220,
    ) {
        let (m, d) = build(SpreadingFactor::Sf7, 2);
        let frame = m.modulate(&payload, f64::from(cfo_khz) * 1000.0, 0.4, 1.0).unwrap();
        let capture = with_padding(&frame.samples, lead, 300);

        // One warm arena, demodulating the same capture repeatedly
        // (steady state), against a cold arena per call.
        let mut warm = DemodScratch::new();
        for round in 0..3 {
            let got = d.demodulate_with(&capture, lead, &mut warm).unwrap();
            let mut cold = DemodScratch::new();
            let want = d.demodulate_with(&capture, lead, &mut cold).unwrap();
            prop_assert!(got.payload == want.payload, "payload mismatch, round {}", round);
            prop_assert_eq!(got.header, want.header);
            prop_assert!(got.cfo_hz.to_bits() == want.cfo_hz.to_bits(),
                "cfo bits differ: {} vs {}", got.cfo_hz, want.cfo_hz);
            prop_assert_eq!(got.frame_start, want.frame_start);
            prop_assert_eq!(got.corrected_codewords, want.corrected_codewords);
            prop_assert_eq!(&got.payload, &payload);
            warm.recycle(got);
        }
    }

    /// The legacy allocating API (thread-local arena) matches the
    /// explicit-scratch API bit for bit.
    #[test]
    fn legacy_api_matches_scratch_api(
        payload in prop::collection::vec(any::<u8>(), 1..20),
        sto_frac in 0.0f64..0.9,
    ) {
        let (m, d) = build(SpreadingFactor::Sf8, 1);
        let frame = m.modulate(&payload, -18_000.0, sto_frac, 1.0).unwrap();
        let capture = with_padding(&frame.samples, 64, 256);

        let legacy = d.demodulate(&capture, 64).unwrap();
        let mut scratch = DemodScratch::new();
        let explicit = d.demodulate_with(&capture, 64, &mut scratch).unwrap();
        prop_assert_eq!(&legacy.payload, &explicit.payload);
        prop_assert_eq!(legacy.header, explicit.header);
        prop_assert!(legacy.cfo_hz.to_bits() == explicit.cfo_hz.to_bits());
        prop_assert_eq!(legacy.frame_start, explicit.frame_start);
        scratch.recycle(explicit);
    }

    /// `find_frame_start` with a reused arena equals a cold arena.
    #[test]
    fn frame_scan_scratch_reuse_is_identical(lead_chirps in 4usize..8) {
        let (m, d) = build(SpreadingFactor::Sf7, 2);
        let frame = m.modulate(b"scan me", -15_000.0, 0.0, 1.0).unwrap();
        let lead = lead_chirps * m.samples_per_chirp() + 37;
        let capture = with_padding(&frame.samples, lead, 300);

        let mut warm = DemodScratch::new();
        let a = d.find_frame_start_with(&capture, 6.0, &mut warm);
        let b = d.find_frame_start_with(&capture, 6.0, &mut warm);
        let mut cold = DemodScratch::new();
        let c = d.find_frame_start_with(&capture, 6.0, &mut cold);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a, c);
        prop_assert!(a.is_some());
    }
}
