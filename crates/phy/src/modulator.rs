//! LoRa frame modulator: bytes in, baseband I/Q out.
//!
//! Frame structure (matching the LoRa air-time formula the paper uses):
//!
//! ```text
//! | preamble: P up-chirps | 2 sync up-chirps | 2.25 down-chirp SFD | payload symbols |
//! ```
//!
//! The bit chain is whitening → Hamming(4, 4+CR) → diagonal interleaving →
//! Gray mapping → cyclic chirp shift. The first interleaving block carries
//! the explicit PHY header at the robust rate (CR 4/8, `SF − 2` bits per
//! symbol); later blocks use the configured coding rate, at `SF − 2` bits
//! per symbol when low-data-rate optimisation is active and `SF` otherwise.

use crate::chirp::ChirpGenerator;
use crate::coding::{crc16_ccitt, gray_encode, hamming_encode, interleave_block, Whitener};
use crate::params::{CodingRate, PhyConfig, SpreadingFactor};
use crate::PhyError;
use softlora_dsp::Complex;

/// Sync-word chirp symbols transmitted between the preamble and the SFD.
pub const SYNC_SYMBOLS: [usize; 2] = [24, 48];

/// Maximum payload length our one-byte header length field can describe.
pub const MAX_PAYLOAD: usize = 255;

/// A modulated frame: the transmitted symbol stream plus its waveform
/// layout, ready to be placed on a channel.
#[derive(Debug, Clone)]
pub struct ModulatedFrame {
    /// Complex baseband samples of the whole frame.
    pub samples: Vec<Complex>,
    /// The chirp symbol values of the payload section (after the SFD).
    pub payload_symbols: Vec<usize>,
    /// Sample index where the payload section starts.
    pub payload_start: usize,
    /// Sample rate of `samples` in Hz.
    pub sample_rate: f64,
}

/// Frame modulator bound to a PHY configuration and sample rate.
///
/// # Example
///
/// ```
/// use softlora_phy::modulator::Modulator;
/// use softlora_phy::{PhyConfig, SpreadingFactor};
///
/// let cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
/// let m = Modulator::new(cfg, 2)?; // 2x oversampling
/// let frame = m.modulate(b"hello", 0.0, 0.0, 1.0)?;
/// assert!(!frame.samples.is_empty());
/// # Ok::<(), softlora_phy::PhyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Modulator {
    cfg: PhyConfig,
    oversample: usize,
    generator: ChirpGenerator,
}

impl Modulator {
    /// Creates a modulator with `oversample` samples per chip.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidConfig`] for invalid configs (see
    /// [`PhyConfig::validate`]), zero oversampling, or SF6 with an explicit
    /// header (real chips only support implicit headers at SF6).
    pub fn new(cfg: PhyConfig, oversample: usize) -> Result<Self, PhyError> {
        cfg.validate()?;
        if cfg.sf == SpreadingFactor::Sf6 && cfg.explicit_header {
            return Err(PhyError::InvalidConfig { reason: "SF6 supports implicit headers only" });
        }
        let generator =
            ChirpGenerator::oversampled(cfg.sf, cfg.channel.bandwidth.hz(), oversample)?;
        Ok(Modulator { cfg, oversample, generator })
    }

    /// The PHY configuration.
    pub fn config(&self) -> &PhyConfig {
        &self.cfg
    }

    /// Samples per chirp at this modulator's rate.
    pub fn samples_per_chirp(&self) -> usize {
        self.generator.samples_per_chirp()
    }

    /// Oversampling factor (samples per chip).
    pub fn oversample(&self) -> usize {
        self.oversample
    }

    /// Sample rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.generator.sample_rate()
    }

    /// Encodes `payload` into the chirp symbol stream (no waveform).
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::PayloadTooLong`] for payloads above
    /// [`MAX_PAYLOAD`] bytes.
    pub fn encode_symbols(&self, payload: &[u8]) -> Result<Vec<usize>, PhyError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(PhyError::PayloadTooLong { max: MAX_PAYLOAD, actual: payload.len() });
        }
        let sf = self.cfg.sf.value() as usize;

        // Whiten payload, append CRC over the *whitened* bytes (self-
        // consistent choice; the demodulator mirrors it).
        let mut body = payload.to_vec();
        Whitener::new().apply(&mut body);
        if self.cfg.payload_crc {
            let crc = crc16_ccitt(&body);
            body.push((crc >> 8) as u8);
            body.push((crc & 0xFF) as u8);
        }

        // Nibble stream, low nibble first.
        let mut nibbles: Vec<u8> = Vec::with_capacity(2 * body.len() + 6);
        if self.cfg.explicit_header {
            nibbles.extend_from_slice(&header_nibbles(payload.len(), self.cfg));
        }
        for b in &body {
            nibbles.push(b & 0x0F);
            nibbles.push(b >> 4);
        }

        let mut symbols = Vec::new();
        let mut idx = 0;

        // Header block: CR 4/8, reduced rate (SF−2 bits per symbol).
        if self.cfg.explicit_header {
            let ppm = sf - 2;
            let mut block = Vec::with_capacity(ppm);
            for _ in 0..ppm {
                let nib = nibbles.get(idx).copied().unwrap_or(0);
                idx += 1;
                block.push(hamming_encode(nib, CodingRate::Cr4_8));
            }
            let interleaved = interleave_block(&block, ppm, 8)?;
            for v in interleaved {
                symbols.push(self.map_symbol(v as u32, sf - ppm));
            }
        }

        // Payload blocks.
        let ppm = if self.cfg.low_data_rate { sf - 2 } else { sf };
        let cw_bits = self.cfg.cr.codeword_bits();
        while idx < nibbles.len() {
            let mut block = Vec::with_capacity(ppm);
            for _ in 0..ppm {
                let nib = nibbles.get(idx).copied().unwrap_or(0);
                idx += 1;
                block.push(hamming_encode(nib, self.cfg.cr));
            }
            let interleaved = interleave_block(&block, ppm, cw_bits)?;
            for v in interleaved {
                symbols.push(self.map_symbol(v as u32, sf - ppm));
            }
        }
        Ok(symbols)
    }

    /// Gray-maps an interleaved value and applies the reduced-rate shift.
    fn map_symbol(&self, value: u32, shift: usize) -> usize {
        let chips = self.cfg.sf.chips();
        ((gray_encode(value) as usize) << shift) % chips
    }

    /// Modulates a payload to a complete baseband frame.
    ///
    /// `delta_hz` is the transmitter's frequency bias, `theta` its carrier
    /// phase and `amp` the waveform amplitude. The bias and phase model the
    /// oscillator trait the paper's defence measures; the continuous phase
    /// across symbols is preserved.
    ///
    /// # Errors
    ///
    /// Same as [`Modulator::encode_symbols`].
    pub fn modulate(
        &self,
        payload: &[u8],
        delta_hz: f64,
        theta: f64,
        amp: f64,
    ) -> Result<ModulatedFrame, PhyError> {
        let payload_symbols = self.encode_symbols(payload)?;
        let n = self.generator.samples_per_chirp();
        let quarter = n / 4;
        let total_chirps = self.cfg.preamble_chirps + 2 + 2; // + quarter SFD
        let total = total_chirps * n + quarter + payload_symbols.len() * n;
        let mut samples = Vec::with_capacity(total);

        // Preamble up-chirps.
        for _ in 0..self.cfg.preamble_chirps {
            samples.extend(self.generator.upchirp(0, delta_hz, theta, amp));
        }
        // Sync word.
        for &s in &SYNC_SYMBOLS {
            samples.extend(self.generator.upchirp(s % self.cfg.sf.chips(), delta_hz, theta, amp));
        }
        // SFD: 2.25 down-chirps.
        let down = self.generator.downchirp(0, delta_hz, theta, amp);
        samples.extend_from_slice(&down);
        samples.extend_from_slice(&down);
        samples.extend_from_slice(&down[..quarter]);

        let payload_start = samples.len();
        for &sym in &payload_symbols {
            samples.extend(self.generator.upchirp(sym, delta_hz, theta, amp));
        }

        Ok(ModulatedFrame {
            samples,
            payload_symbols,
            payload_start,
            sample_rate: self.generator.sample_rate(),
        })
    }
}

/// Builds the 5 header nibbles: length (2), flags (1: CRC bit | CR), and a
/// CRC-8 checksum (2) over the first three.
pub(crate) fn header_nibbles(payload_len: usize, cfg: PhyConfig) -> [u8; 5] {
    let len = payload_len as u8;
    let flags = ((cfg.payload_crc as u8) << 3) | (cfg.cr.parity_bits() as u8 & 0x07);
    let check = header_checksum(len, flags);
    [len & 0x0F, len >> 4, flags, check & 0x0F, check >> 4]
}

/// CRC-8 (poly 0x07) over the two header bytes.
pub(crate) fn header_checksum(len: u8, flags: u8) -> u8 {
    let mut crc: u8 = 0;
    for byte in [len, flags] {
        crc ^= byte;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 { (crc << 1) ^ 0x07 } else { crc << 1 };
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LoRaChannel;

    fn modulator(sf: SpreadingFactor) -> Modulator {
        Modulator::new(PhyConfig::uplink(sf), 2).unwrap()
    }

    #[test]
    fn frame_layout_lengths() {
        let m = modulator(SpreadingFactor::Sf7);
        let frame = m.modulate(b"abcdef", 0.0, 0.0, 1.0).unwrap();
        let n = m.samples_per_chirp();
        // 8 preamble + 2 sync + 2.25 SFD = 12.25 chirps before payload.
        assert_eq!(frame.payload_start, 12 * n + n / 4);
        assert_eq!(frame.samples.len(), frame.payload_start + frame.payload_symbols.len() * n);
    }

    #[test]
    fn symbol_count_matches_airtime_formula() {
        // The encoded symbol count must equal the datasheet formula that
        // PhyConfig::payload_symbols implements — this ties our coding chain
        // to the paper's timing arithmetic.
        for sf in [SpreadingFactor::Sf7, SpreadingFactor::Sf8, SpreadingFactor::Sf9] {
            let cfg = PhyConfig::uplink(sf);
            let m = Modulator::new(cfg, 1).unwrap();
            for len in [10usize, 20, 30, 40] {
                let payload = vec![0xA5u8; len];
                let symbols = m.encode_symbols(&payload).unwrap();
                assert_eq!(symbols.len(), cfg.payload_symbols(len), "{sf} payload {len}");
            }
        }
    }

    #[test]
    fn symbol_count_matches_airtime_formula_with_ldro() {
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf12);
        let m = Modulator::new(cfg, 1).unwrap();
        for len in [10usize, 30, 51] {
            let payload = vec![0x3Cu8; len];
            assert_eq!(m.encode_symbols(&payload).unwrap().len(), cfg.payload_symbols(len));
        }
    }

    #[test]
    fn symbols_in_range() {
        let m = modulator(SpreadingFactor::Sf8);
        let symbols = m.encode_symbols(&[0xFF; 32]).unwrap();
        for &s in &symbols {
            assert!(s < 256);
        }
    }

    #[test]
    fn header_block_uses_reduced_rate_symbols() {
        // Header symbols are multiples of 4 (shifted by SF − (SF−2) = 2).
        let m = modulator(SpreadingFactor::Sf9);
        let symbols = m.encode_symbols(b"x").unwrap();
        for &s in &symbols[..8] {
            assert_eq!(s % 4, 0, "header symbol {s} not reduced-rate");
        }
    }

    #[test]
    fn payload_too_long_rejected() {
        let m = modulator(SpreadingFactor::Sf7);
        assert!(matches!(m.encode_symbols(&vec![0u8; 300]), Err(PhyError::PayloadTooLong { .. })));
    }

    #[test]
    fn sf6_explicit_header_rejected() {
        let mut cfg = PhyConfig::uplink(SpreadingFactor::Sf6);
        assert!(Modulator::new(cfg, 1).is_err());
        cfg.explicit_header = false;
        assert!(Modulator::new(cfg, 1).is_ok());
    }

    #[test]
    fn different_payloads_different_symbols() {
        let m = modulator(SpreadingFactor::Sf7);
        let a = m.encode_symbols(b"payload-a").unwrap();
        let b = m.encode_symbols(b"payload-b").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_encoding() {
        let m = modulator(SpreadingFactor::Sf7);
        assert_eq!(m.encode_symbols(b"same").unwrap(), m.encode_symbols(b"same").unwrap());
    }

    #[test]
    fn empty_payload_encodes() {
        let m = modulator(SpreadingFactor::Sf7);
        let symbols = m.encode_symbols(b"").unwrap();
        // Header block + one payload block for the CRC bytes.
        assert!(!symbols.is_empty());
    }

    #[test]
    fn waveform_amplitude_uniform() {
        let m = modulator(SpreadingFactor::Sf7);
        let frame = m.modulate(b"test", -20e3, 1.0, 0.7).unwrap();
        for z in &frame.samples {
            assert!((z.norm() - 0.7).abs() < 1e-9);
        }
    }

    #[test]
    fn header_checksum_changes_with_fields() {
        assert_ne!(header_checksum(10, 0b1001), header_checksum(11, 0b1001));
        assert_ne!(header_checksum(10, 0b1001), header_checksum(10, 0b1010));
    }

    #[test]
    fn header_nibbles_encode_length_and_flags() {
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
        let h = header_nibbles(0xAB, cfg);
        assert_eq!(h[0], 0x0B);
        assert_eq!(h[1], 0x0A);
        assert_eq!(h[2] & 0x07, 1); // CR 4/5
        assert_eq!(h[2] >> 3, 1); // CRC enabled
    }

    #[test]
    fn custom_channel_supported() {
        let cfg = PhyConfig {
            channel: LoRaChannel { center_hz: 915e6, bandwidth: crate::Bandwidth::Khz250 },
            ..PhyConfig::uplink(SpreadingFactor::Sf7)
        };
        let m = Modulator::new(cfg, 2).unwrap();
        assert!((m.sample_rate() - 500e3).abs() < 1e-6);
    }
}
