//! LoRa frame demodulator: baseband I/Q in, bytes out.
//!
//! Implements the classic dechirp-and-FFT receiver. Synchronisation follows
//! the standard preamble/SFD trick: dechirping a preamble *up*-chirp yields
//! a tone at `cfo + sto` (in bins/chips), dechirping an SFD *down*-chirp
//! yields `cfo − sto`; combining the two separates carrier frequency offset
//! from sample timing offset. A fine stage then polishes timing by template
//! correlation and removes the fractional carrier/timing residuals with
//! parabolic FFT-peak interpolation on the preamble and SFD tones.
//!
//! The demodulator mirrors the RN2483 behaviour the paper's §4.3 attack
//! experiments rely on: losing the header results in a *silent*
//! [`PhyError::HeaderLost`] drop, while a payload CRC failure raises the
//! "alert" error [`PhyError::PayloadCrc`].

use crate::chirp::{cached_chirp_refs, ChirpGenerator};
use crate::coding::{
    crc16_ccitt, deinterleave_block_into, gray_decode, hamming_decode, DecodeOutcome, Whitener,
};
use crate::modulator::{header_checksum, SYNC_SYMBOLS};
use crate::params::{CodingRate, PhyConfig};
use crate::PhyError;
use softlora_dsp::fft::{argmax_bin, parabolic_peak};
use softlora_dsp::{Complex, DspScratch};
use std::cell::RefCell;
use std::sync::Arc;

/// Decoded PHY header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhyHeader {
    /// Payload length in bytes (before CRC).
    pub payload_len: usize,
    /// Payload coding rate.
    pub cr: CodingRate,
    /// Whether a payload CRC-16 follows the payload.
    pub has_crc: bool,
}

/// Result of successfully demodulating a frame.
#[derive(Debug, Clone)]
pub struct DemodulatedFrame {
    /// Recovered payload bytes (de-whitened, CRC stripped).
    pub payload: Vec<u8>,
    /// Decoded header.
    pub header: PhyHeader,
    /// Estimated carrier frequency offset in Hz (transmitter bias minus
    /// receiver bias, as seen by this receiver).
    pub cfo_hz: f64,
    /// Estimated frame start, in samples from the beginning of the capture.
    pub frame_start: usize,
    /// Number of Hamming-corrected codewords in the payload.
    pub corrected_codewords: usize,
}

/// Reusable working memory for a demodulator: a [`DspScratch`] arena for
/// the dechirp windows/spectra plus symbol, nibble and payload buffers.
///
/// One instance per worker; feed it to [`Demodulator::demodulate_with`]
/// and return finished frames through [`DemodScratch::recycle`] so their
/// payload buffers rotate back into the pool. After a few warm-up frames
/// the demodulate path performs **zero heap allocations** per frame
/// (pinned by the counting-allocator test in `softlora-bench`).
#[derive(Debug, Default)]
pub struct DemodScratch {
    /// The DSP arena (FFT plans, complex/real pools).
    pub dsp: DspScratch,
    syms: Vec<u16>,
    nibbles: Vec<u8>,
    codewords: Vec<u8>,
    payloads: Vec<Vec<u8>>,
}

impl DemodScratch {
    /// Creates an empty scratch; pools fill on first use.
    pub fn new() -> Self {
        DemodScratch::default()
    }

    /// Returns a finished frame's payload buffer to the pool so the next
    /// demodulation reuses its capacity.
    pub fn recycle(&mut self, frame: DemodulatedFrame) {
        self.put_payload(frame.payload);
    }

    fn take_payload(&mut self) -> Vec<u8> {
        let mut buf = self.payloads.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    fn put_payload(&mut self, buf: Vec<u8>) {
        if buf.capacity() > 0 {
            self.payloads.push(buf);
        }
    }
}

thread_local! {
    static THREAD_DEMOD_SCRATCH: RefCell<DemodScratch> = RefCell::new(DemodScratch::new());
}

/// Dechirp-and-FFT LoRa demodulator.
///
/// The reference waveforms (up/down dechirp references and the clean
/// up-chirp template) are shared per `(SF, bandwidth, sample rate)`
/// through the process-wide [`crate::chirp::cached_chirp_refs`] cache, so
/// constructing many demodulators at the same radio parameters reuses the
/// same immutable tables.
#[derive(Debug, Clone)]
pub struct Demodulator {
    cfg: PhyConfig,
    oversample: usize,
    generator: ChirpGenerator,
    up_ref: Arc<Vec<Complex>>,
    down_ref: Arc<Vec<Complex>>,
    /// Clean symbol-0 up-chirp, the fine-timing correlation template.
    template: Arc<Vec<Complex>>,
}

impl Demodulator {
    /// Creates a demodulator for frames produced by a matching
    /// [`crate::modulator::Modulator`] at the same oversampling factor.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidConfig`] for invalid configurations.
    pub fn new(cfg: PhyConfig, oversample: usize) -> Result<Self, PhyError> {
        cfg.validate()?;
        let generator =
            ChirpGenerator::oversampled(cfg.sf, cfg.channel.bandwidth.hz(), oversample)?;
        let refs = cached_chirp_refs(cfg.sf, cfg.channel.bandwidth.hz(), generator.sample_rate())?;
        Ok(Demodulator {
            cfg,
            oversample,
            generator,
            up_ref: refs.up_conj,
            down_ref: refs.down_conj,
            template: refs.upchirp,
        })
    }

    /// Samples per chirp.
    pub fn samples_per_chirp(&self) -> usize {
        self.generator.samples_per_chirp()
    }

    /// Sample rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.generator.sample_rate()
    }

    /// Zero-padding factor of the dechirped decision FFT: each chip/bin is
    /// resolved into 4 sub-bins, making fractional tone positions directly
    /// measurable.
    const PAD: usize = 4;

    /// Dechirps one window with the given reference, folds to chip rate
    /// and writes the 4x zero-padded FFT spectrum (length `4 · 2^SF`) into
    /// the scratch-provided buffer.
    fn dechirp_fft_into(
        &self,
        window: &[Complex],
        reference: &[Complex],
        dsp: &mut DspScratch,
        spec: &mut Vec<Complex>,
    ) {
        let chips = self.cfg.sf.chips();
        let os = self.oversample;
        spec.clear();
        spec.resize(chips * Self::PAD, Complex::ZERO);
        // Fused dechirp kernel: the conjugate-multiply by the reference and
        // the fold/alias to chip rate (boxcar decimation of the os
        // polyphase samples — adequate since the dechirped tone is
        // narrowband) land straight in the FFT input slots, chunked for
        // the autovectorizer and bit-identical to the original loop.
        softlora_dsp::kernels::dechirp_fold_into(window, reference, os, &mut spec[..chips]);
        // chips * PAD is a power of two, so the planned in-place transform
        // is exactly what `fft_forward` ran here before.
        let n = spec.len();
        dsp.planner().plan(n).forward(spec);
    }

    /// Fractional tone position of the dechirped window, in chip units
    /// within `[0, 2^SF)`: padded-FFT argmax plus the shared
    /// [`parabolic_peak`] sub-bin refinement.
    fn dechirp_tone_chips(
        &self,
        window: &[Complex],
        reference: &[Complex],
        dsp: &mut DspScratch,
    ) -> f64 {
        let mut spec = dsp.take_complex_empty();
        self.dechirp_fft_into(window, reference, dsp, &mut spec);
        let peak = parabolic_peak(&spec);
        dsp.put_complex(spec);
        peak / Self::PAD as f64
    }

    /// Derotates a window by `-cfo_hz` into a scratch buffer, with phase
    /// referenced to the window's first sample index `abs_start` so
    /// successive windows stay phase-continuous.
    fn derotate_into(
        &self,
        samples: &[Complex],
        abs_start: usize,
        len: usize,
        cfo_hz: f64,
        out: &mut Vec<Complex>,
    ) {
        let dt = 1.0 / self.sample_rate();
        out.clear();
        out.extend((0..len).map(|n| {
            let idx = abs_start + n;
            if idx < samples.len() {
                samples[idx]
                    * Complex::cis(-2.0 * std::f64::consts::PI * cfo_hz * (idx as f64 * dt))
            } else {
                Complex::ZERO
            }
        }));
    }

    /// Reads the offset-corrected symbol value of the dechirped window at
    /// `ws` (the body of what used to be a per-call closure, lifted so it
    /// can borrow the scratch arena).
    #[allow(clippy::too_many_arguments)]
    fn read_symbol_at(
        &self,
        samples: &[Complex],
        ws: usize,
        cfo_hz: f64,
        ref_offset: f64,
        dsp: &mut DspScratch,
        win: &mut Vec<Complex>,
    ) -> Option<usize> {
        let n = self.samples_per_chirp();
        let chips = self.cfg.sf.chips();
        if ws + n > samples.len() {
            return None;
        }
        self.derotate_into(samples, ws, n, cfo_hz, win);
        let value = self.dechirp_tone_chips(win, &self.up_ref, dsp) - ref_offset;
        Some((value.round() as i64).rem_euclid(chips as i64) as usize)
    }

    /// Demodulates a frame from `samples`.
    ///
    /// `start_hint` is an estimate of the frame's first sample, accurate to
    /// within ±¼ chirp (the gateway's energy detector or, on SoftLoRa, the
    /// AIC PHY timestamp provides this). The carrier frequency offset may be
    /// up to ±W/4.
    ///
    /// # Errors
    ///
    /// * [`PhyError::CaptureTooShort`] if the capture cannot contain a
    ///   minimal frame at the hint.
    /// * [`PhyError::HeaderLost`] if preamble/header recovery fails (the
    ///   silent-drop path).
    /// * [`PhyError::PayloadCrc`] if the payload CRC check fails (the
    ///   alert path).
    pub fn demodulate(
        &self,
        samples: &[Complex],
        start_hint: usize,
    ) -> Result<DemodulatedFrame, PhyError> {
        THREAD_DEMOD_SCRATCH
            .with(|s| self.demodulate_with(samples, start_hint, &mut s.borrow_mut()))
    }

    /// [`Demodulator::demodulate`] against a caller-owned scratch arena —
    /// the steady-state path: windows, spectra, symbol/nibble staging and
    /// the payload buffer all come from `scratch`, so after warm-up a
    /// frame demodulates without touching the heap. Results are
    /// bit-for-bit identical to [`Demodulator::demodulate`] (which
    /// delegates here with a thread-local arena).
    ///
    /// Return the finished frame through [`DemodScratch::recycle`] to keep
    /// the payload pool warm.
    ///
    /// # Errors
    ///
    /// Same as [`Demodulator::demodulate`].
    pub fn demodulate_with(
        &self,
        samples: &[Complex],
        start_hint: usize,
        scratch: &mut DemodScratch,
    ) -> Result<DemodulatedFrame, PhyError> {
        let mut win = scratch.dsp.take_complex_empty();
        let mut payload = scratch.take_payload();
        let result = self.demodulate_inner(samples, start_hint, scratch, &mut win, &mut payload);
        scratch.dsp.put_complex(win);
        match result {
            Ok((header, cfo_hz, frame_start, corrected_codewords)) => {
                Ok(DemodulatedFrame { payload, header, cfo_hz, frame_start, corrected_codewords })
            }
            Err(e) => {
                scratch.put_payload(payload);
                Err(e)
            }
        }
    }

    /// The demodulation body; returns `(header, cfo, frame start,
    /// corrected codewords)` with the payload written into `payload`.
    fn demodulate_inner(
        &self,
        samples: &[Complex],
        start_hint: usize,
        scratch: &mut DemodScratch,
        win: &mut Vec<Complex>,
        payload: &mut Vec<u8>,
    ) -> Result<(PhyHeader, f64, usize, usize), PhyError> {
        let n = self.samples_per_chirp();
        let chips = self.cfg.sf.chips();
        let os = self.oversample;
        let min_len = start_hint + (self.cfg.preamble_chirps + 4 + 8) * n;
        if samples.len() < min_len {
            return Err(PhyError::CaptureTooShort { required: min_len, actual: samples.len() });
        }

        // --- Coarse sync: fractional preamble up-tone and SFD down-tone,
        // in chip units. Use the 3rd preamble chirp so a hint up to
        // ¼ chirp early still lands inside the preamble. ---
        let up_win_start = start_hint + 2 * n;
        let b_up = self.dechirp_tone_chips(
            &samples[up_win_start..up_win_start + n],
            &self.up_ref,
            &mut scratch.dsp,
        );
        let sfd_start = start_hint + (self.cfg.preamble_chirps + 2) * n;
        let b_down = self.dechirp_tone_chips(
            &samples[sfd_start..sfd_start + n],
            &self.down_ref,
            &mut scratch.dsp,
        );

        // Signed fold to (−2^S/2, 2^S/2] in float chip units.
        let fold_f = |x: f64| -> f64 {
            let m = chips as f64;
            (x + m / 2.0).rem_euclid(m) - m / 2.0
        };
        let fold = |x: i64| -> i64 {
            let m = chips as i64;
            let half = m / 2;
            ((x + half).rem_euclid(m)) - half
        };
        // b_up = cfo + sto, b_down = cfo − sto  (bins/chips, mod 2^S).
        let diff = fold_f(b_up - b_down);
        let sto_chips_f = diff / 2.0;
        let sto_chips = sto_chips_f.round() as i64;
        let cfo_chips = fold_f(b_up - sto_chips_f);
        let bin_hz = self.cfg.channel.bandwidth.hz() / chips as f64;
        let mut cfo_hz = cfo_chips * bin_hz;
        // A positive sto means our windows started late; shift back.
        let mut start = start_hint as i64 - sto_chips * os as i64;
        if start < 0 {
            return Err(PhyError::HeaderLost);
        }

        // --- Fine timing: correlate a derotated preamble chirp against the
        // clean template over ±2 chips. ---
        let template = &self.template;
        let search = 2 * os as i64;
        let mut best_off = 0i64;
        let mut best_mag = -1.0f64;
        for off in -search..=search {
            let ws = start + 2 * n as i64 + off;
            if ws < 0 || (ws as usize + n) > samples.len() {
                continue;
            }
            self.derotate_into(samples, ws as usize, n, cfo_hz, win);
            let corr: Complex = win.iter().zip(template.iter()).map(|(a, b)| *a * b.conj()).sum();
            let mag = corr.norm();
            if mag > best_mag {
                best_mag = mag;
                best_off = off;
            }
        }
        start += best_off;
        if start < 0 {
            return Err(PhyError::HeaderLost);
        }
        let start = start as usize;

        // --- Fractional CFO/STO separation. The preamble up-chirps carry
        // symbol 0 (their dechirped tone does not wrap, so its fractional
        // peak position is unbiased) and the SFD provides the matching
        // down-chirp measurement; combining them separates the fractional
        // carrier offset from the fractional timing offset just like the
        // coarse stage did for the integer parts. ---
        let up_f = {
            self.derotate_into(samples, start + 2 * n, n, cfo_hz, win);
            fold_f(self.dechirp_tone_chips(win, &self.up_ref, &mut scratch.dsp))
        };
        let down_f = {
            let ws = start + (self.cfg.preamble_chirps + 2) * n;
            self.derotate_into(samples, ws, n, cfo_hz, win);
            fold_f(self.dechirp_tone_chips(win, &self.down_ref, &mut scratch.dsp))
        };
        let cfo_frac_bins = (up_f + down_f) / 2.0;
        let sto_frac_chips = (up_f - down_f) / 2.0;
        cfo_hz += cfo_frac_bins * bin_hz;
        let frac_shift = (sto_frac_chips * os as f64).round() as i64;
        let start = (start as i64 - frac_shift).max(0) as usize;

        // --- Residual common-mode trim: whatever (small) tone offset the
        // preamble still shows after the corrections is shared by every
        // payload symbol; subtract it from each decision. ---
        let mut ref_offset = 0.0;
        for k in [2usize, 3] {
            self.derotate_into(samples, start + k * n, n, cfo_hz, win);
            ref_offset += fold_f(self.dechirp_tone_chips(win, &self.up_ref, &mut scratch.dsp));
        }
        ref_offset /= 2.0;
        let cfo_report = cfo_hz + ref_offset * bin_hz;

        // --- Sync word sanity check (loose: each within ±1 of expected). ---
        let mut sync_ok = 0;
        for (k, &expect) in SYNC_SYMBOLS.iter().enumerate() {
            let ws = start + (self.cfg.preamble_chirps + k) * n;
            if let Some(sym) =
                self.read_symbol_at(samples, ws, cfo_hz, ref_offset, &mut scratch.dsp, win)
            {
                let err = fold(sym as i64 - (expect % chips) as i64).abs();
                if err <= 1 {
                    sync_ok += 1;
                }
            }
        }
        if sync_ok == 0 {
            return Err(PhyError::HeaderLost);
        }

        // --- Payload section. ---
        let payload_start = start + (self.cfg.preamble_chirps + 2) * n + 2 * n + n / 4;

        let sf = self.cfg.sf.value() as usize;
        let mut corrected = 0usize;
        scratch.nibbles.clear();
        let mut symbol_idx = 0usize;

        // Header block (explicit header assumed for gateway uplinks).
        let header = if self.cfg.explicit_header {
            let ppm = sf - 2;
            scratch.syms.clear();
            for _ in 0..8 {
                let ws = payload_start + symbol_idx * n;
                let s = self
                    .read_symbol_at(samples, ws, cfo_hz, ref_offset, &mut scratch.dsp, win)
                    .ok_or(PhyError::HeaderLost)?;
                symbol_idx += 1;
                // Reduced rate: round to the nearest multiple of 4.
                let v = ((s + 2) >> 2) as u32 % (1u32 << ppm);
                scratch.syms.push(gray_decode(v) as u16);
            }
            deinterleave_block_into(&scratch.syms, ppm, 8, &mut scratch.codewords)?;
            // Header nibbles land at the front of the nibble stream; the
            // five header fields are consumed below and drained off so the
            // stream starts with the payload nibbles that rode along.
            for &cw in &scratch.codewords {
                let (nib, outcome) = hamming_decode(cw, CodingRate::Cr4_8);
                if outcome == DecodeOutcome::Detected {
                    return Err(PhyError::HeaderLost);
                }
                if outcome == DecodeOutcome::Corrected {
                    corrected += 1;
                }
                scratch.nibbles.push(nib);
            }
            let len = (scratch.nibbles[0] | (scratch.nibbles[1] << 4)) as usize;
            let flags = scratch.nibbles[2];
            let check = scratch.nibbles[3] | (scratch.nibbles[4] << 4);
            if header_checksum(len as u8, flags) != check {
                return Err(PhyError::HeaderLost);
            }
            let cr = CodingRate::from_parity_bits((flags & 0x07) as usize)
                .map_err(|_| PhyError::HeaderLost)?;
            let has_crc = flags & 0x08 != 0;
            scratch.nibbles.drain(..5);
            PhyHeader { payload_len: len, cr, has_crc }
        } else {
            PhyHeader { payload_len: 0, cr: self.cfg.cr, has_crc: self.cfg.payload_crc }
        };

        let body_len = header.payload_len + if header.has_crc { 2 } else { 0 };
        let total_nibbles = 2 * body_len;
        let ppm = if self.cfg.low_data_rate { sf - 2 } else { sf };
        let cw_bits = header.cr.codeword_bits();
        let shift = sf - ppm;

        // The header fixes the remaining block count (each block yields
        // exactly `ppm` nibbles), so all payload windows dechirp into one
        // contiguous batch lane and transform through a stage-major
        // `forward_many` — one plan, each twiddle table streamed once per
        // stage for the whole group instead of once per symbol. Spectra,
        // and therefore decisions, are bit-identical to the former
        // symbol-at-a-time loop.
        let remaining = total_nibbles.saturating_sub(scratch.nibbles.len());
        let blocks = remaining.div_ceil(ppm);
        let spec_len = chips * Self::PAD;
        // Bound the batch lane to ~2 MiB of complex samples per round.
        let blocks_per_batch = ((1usize << 17) / (spec_len * cw_bits)).max(1);
        let mut done = 0usize;
        while done < blocks {
            let nblocks = (blocks - done).min(blocks_per_batch);
            let nsyms = nblocks * cw_bits;
            let mut batch = scratch.dsp.take_batch(nsyms, spec_len);
            let mut short = false;
            for s in 0..nsyms {
                let ws = payload_start + (symbol_idx + s) * n;
                if ws + n > samples.len() {
                    short = true;
                    break;
                }
                self.derotate_into(samples, ws, n, cfo_hz, win);
                softlora_dsp::kernels::dechirp_fold_into(
                    win,
                    &self.up_ref,
                    os,
                    &mut batch[s * spec_len..s * spec_len + chips],
                );
            }
            if short {
                scratch.dsp.put_complex(batch);
                return Err(PhyError::PayloadCrc);
            }
            scratch.dsp.planner().plan(spec_len).forward_many(&mut batch);
            for b in 0..nblocks {
                scratch.syms.clear();
                for j in 0..cw_bits {
                    let spec = &batch[(b * cw_bits + j) * spec_len..][..spec_len];
                    let value = parabolic_peak(spec) / Self::PAD as f64 - ref_offset;
                    let s = (value.round() as i64).rem_euclid(chips as i64) as usize;
                    let v = if shift > 0 {
                        ((s + (1 << (shift - 1))) >> shift) as u32 % (1u32 << ppm)
                    } else {
                        s as u32
                    };
                    scratch.syms.push(gray_decode(v) as u16);
                }
                if let Err(e) =
                    deinterleave_block_into(&scratch.syms, ppm, cw_bits, &mut scratch.codewords)
                {
                    scratch.dsp.put_complex(batch);
                    return Err(e);
                }
                for &cw in &scratch.codewords {
                    let (nib, outcome) = hamming_decode(cw, header.cr);
                    if outcome == DecodeOutcome::Corrected {
                        corrected += 1;
                    }
                    scratch.nibbles.push(nib);
                }
            }
            symbol_idx += nsyms;
            done += nblocks;
            scratch.dsp.put_complex(batch);
        }

        // Reassemble bytes (low nibble first) straight into the payload
        // buffer — CRC check and de-whitening run on it in place.
        payload.clear();
        for pair in scratch.nibbles.chunks(2).take(body_len) {
            payload.push(pair[0] | (pair.get(1).copied().unwrap_or(0) << 4));
        }

        // CRC check on whitened body, then de-whiten.
        if header.has_crc {
            if payload.len() < 2 {
                return Err(PhyError::PayloadCrc);
            }
            let crc_hi = payload[payload.len() - 2];
            let crc_lo = payload[payload.len() - 1];
            payload.truncate(payload.len() - 2);
            let want = ((crc_hi as u16) << 8) | crc_lo as u16;
            if crc16_ccitt(payload) != want {
                return Err(PhyError::PayloadCrc);
            }
        }
        Whitener::new().apply(payload);

        Ok((header, cfo_report, start, corrected))
    }

    /// Scans a capture for the coarse start of a LoRa frame.
    ///
    /// Slides a dechirp window in quarter-chirp steps and looks for a run of
    /// windows whose dechirped spectra show a dominant bin that *advances by
    /// exactly `2^S/4` per step* — the signature of constant preamble
    /// up-chirps seen through a sliding window (the tone bin encodes
    /// `cfo + timing`, and the timing term grows by a quarter chirp per
    /// step). The run start is then refined with an AIC onset pick on the
    /// sample-magnitude trace, yielding a start accurate to well within the
    /// ±¼ chirp that [`Demodulator::demodulate`] requires.
    ///
    /// `threshold` is the required peak-to-average spectral ratio (e.g. 8.0
    /// for comfortable SNR, 4.0 near the demodulation floor).
    pub fn find_frame_start(&self, samples: &[Complex], threshold: f64) -> Option<usize> {
        THREAD_DEMOD_SCRATCH
            .with(|s| self.find_frame_start_with(samples, threshold, &mut s.borrow_mut()))
    }

    /// [`Demodulator::find_frame_start`] against a caller-owned scratch
    /// arena: the sliding dechirp spectra, the magnitude trace and the
    /// AIC pick all reuse pooled buffers.
    pub fn find_frame_start_with(
        &self,
        samples: &[Complex],
        threshold: f64,
        scratch: &mut DemodScratch,
    ) -> Option<usize> {
        let n = self.samples_per_chirp();
        if samples.len() < 4 * n {
            return None;
        }
        let step = n / 4;
        // The decision spectrum is 4x zero-padded: positions are in padded
        // bins, and a quarter-chirp window step advances the tone by a
        // quarter of the chip range = `chips` padded bins.
        let padded = (self.cfg.sf.chips() * Self::PAD) as i64;
        let bin_step = padded / 4;
        let tol = Self::PAD as i64; // one chip of slack
        let mut run_start = None;
        let mut prev_bin: Option<i64> = None;
        let mut run_len = 0usize;
        let mut pos = 0usize;
        let mut found = None;
        let mut spec = scratch.dsp.take_complex_empty();
        while pos + n <= samples.len() {
            self.dechirp_fft_into(
                &samples[pos..pos + n],
                &self.up_ref,
                &mut scratch.dsp,
                &mut spec,
            );
            let (bin, mag) = argmax_bin(&spec);
            let avg = spec.iter().map(|z| z.norm()).sum::<f64>() / spec.len() as f64;
            let strong = avg > 0.0 && mag / avg > threshold;
            let progression_ok = match prev_bin {
                None => true,
                Some(p) => {
                    let d = (bin as i64 - p - bin_step).rem_euclid(padded);
                    d <= tol || d >= padded - tol
                }
            };
            if strong && (run_len == 0 || progression_ok) {
                if run_len == 0 {
                    run_start = Some(pos);
                }
                prev_bin = Some(bin as i64);
                run_len += 1;
                // 12 consecutive quarter-chirp windows ≈ 3 full stable
                // chirps: enough evidence of a preamble.
                if run_len >= 12 {
                    found = run_start;
                    break;
                }
            } else {
                run_len = 0;
                run_start = None;
                prev_bin = None;
            }
            pos += step;
        }
        scratch.dsp.put_complex(spec);
        let coarse = found?;
        // Refine: AIC onset pick on the magnitude trace around the coarse
        // start (the first strong window can precede the true onset by up
        // to a window length at high SNR).
        let lo = coarse.saturating_sub(2 * n);
        let hi = (coarse + 2 * n).min(samples.len());
        let mut mags = scratch.dsp.take_real_empty();
        mags.extend(samples[lo..hi].iter().map(|z| z.norm()));
        let pick = softlora_dsp::aic::aic_onset_with(&mags, 16, &mut scratch.dsp);
        scratch.dsp.put_real(mags);
        match pick {
            Ok(onset) => Some(lo + onset),
            Err(_) => Some(coarse),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulator::Modulator;
    use crate::params::SpreadingFactor;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn build(sf: SpreadingFactor, os: usize) -> (Modulator, Demodulator) {
        let cfg = PhyConfig::uplink(sf);
        (Modulator::new(cfg, os).unwrap(), Demodulator::new(cfg, os).unwrap())
    }

    fn with_padding(frame: &[Complex], lead: usize, tail: usize) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; lead];
        v.extend_from_slice(frame);
        v.extend(vec![Complex::ZERO; tail]);
        v
    }

    fn add_noise(samples: &mut [Complex], sigma: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gauss = || {
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        for z in samples.iter_mut() {
            *z += Complex::new(sigma * gauss(), sigma * gauss());
        }
    }

    #[test]
    fn clean_round_trip_sf7() {
        let (m, d) = build(SpreadingFactor::Sf7, 2);
        let payload = b"hello softlora!";
        let frame = m.modulate(payload, 0.0, 0.0, 1.0).unwrap();
        let capture = with_padding(&frame.samples, 100, 500);
        let out = d.demodulate(&capture, 100).unwrap();
        assert_eq!(out.payload, payload);
        assert_eq!(out.header.payload_len, payload.len());
        assert!(out.header.has_crc);
        assert!(out.cfo_hz.abs() < 50.0, "cfo {}", out.cfo_hz);
    }

    #[test]
    fn round_trip_all_sf() {
        for sf in [
            SpreadingFactor::Sf7,
            SpreadingFactor::Sf8,
            SpreadingFactor::Sf9,
            SpreadingFactor::Sf10,
        ] {
            let (m, d) = build(sf, 1);
            let payload = b"test payload 123";
            let frame = m.modulate(payload, 0.0, 0.5, 1.0).unwrap();
            let capture = with_padding(&frame.samples, 64, 256);
            let out = d.demodulate(&capture, 64).unwrap();
            assert_eq!(out.payload, payload, "{sf}");
        }
    }

    #[test]
    fn round_trip_sf12_ldro() {
        let (m, d) = build(SpreadingFactor::Sf12, 1);
        let payload = b"ldro";
        let frame = m.modulate(payload, 0.0, 0.0, 1.0).unwrap();
        let capture = with_padding(&frame.samples, 10, 100);
        let out = d.demodulate(&capture, 10).unwrap();
        assert_eq!(out.payload, payload);
    }

    #[test]
    fn round_trip_with_large_cfo() {
        // Device FBs in the paper are 17–25 kHz; the demodulator must
        // tolerate them (|cfo| < W/4 = 31.25 kHz).
        let (m, d) = build(SpreadingFactor::Sf7, 2);
        let payload = b"frequency bias";
        for cfo in [-25_000.0, -17_000.0, 12_345.0, 25_000.0] {
            let frame = m.modulate(payload, cfo, 1.1, 1.0).unwrap();
            let capture = with_padding(&frame.samples, 50, 300);
            let out = d.demodulate(&capture, 50).unwrap();
            assert_eq!(out.payload, payload, "cfo {cfo}");
            // The demod-level CFO estimate is coarse: a ±1-sample timing
            // residual at 2x oversampling aliases into ±0.5 bin (≈490 Hz).
            assert!((out.cfo_hz - cfo).abs() < 600.0, "cfo {cfo} est {}", out.cfo_hz);
        }
    }

    #[test]
    fn round_trip_with_timing_offset() {
        let (m, d) = build(SpreadingFactor::Sf7, 2);
        let payload = b"timing";
        let n = m.samples_per_chirp() as i64;
        let frame = m.modulate(payload, -20e3, 0.3, 1.0).unwrap();
        // Hint off by up to ±¼ chirp.
        for hint_err in [-n / 4 + 1, -n / 8, 0, n / 8, n / 4 - 1] {
            let lead = 2000usize;
            let capture = with_padding(&frame.samples, lead, 300);
            let hint = (lead as i64 + hint_err) as usize;
            let out = d.demodulate(&capture, hint).unwrap();
            assert_eq!(out.payload, payload, "hint err {hint_err}");
            assert!(
                (out.frame_start as i64 - lead as i64).abs() <= 2,
                "hint err {hint_err}: start {} vs {}",
                out.frame_start,
                lead
            );
        }
    }

    #[test]
    fn round_trip_with_noise() {
        let (m, d) = build(SpreadingFactor::Sf7, 2);
        let payload = b"noisy channel";
        let frame = m.modulate(payload, -22e3, 0.0, 1.0).unwrap();
        let mut capture = with_padding(&frame.samples, 200, 400);
        // sigma 0.35 per I/Q component: SNR = 1 / (2·0.35²) ≈ 6 dB.
        add_noise(&mut capture, 0.35, 42);
        let out = d.demodulate(&capture, 200).unwrap();
        assert_eq!(out.payload, payload);
    }

    #[test]
    fn round_trip_near_demod_floor() {
        // SF9 floor is −12.5 dB; run at ≈ −6 dB where decoding should still
        // comfortably succeed (amplitude 1, sigma 1.0 -> SNR = -3 dB).
        let (m, d) = build(SpreadingFactor::Sf9, 1);
        let payload = b"low snr";
        let frame = m.modulate(payload, 5e3, 0.2, 1.0).unwrap();
        let mut capture = with_padding(&frame.samples, 128, 256);
        add_noise(&mut capture, 1.0, 7);
        let out = d.demodulate(&capture, 128).unwrap();
        assert_eq!(out.payload, payload);
    }

    #[test]
    fn corrupted_payload_raises_crc_alert() {
        let (m, d) = build(SpreadingFactor::Sf7, 2);
        let frame = m.modulate(b"integrity", 0.0, 0.0, 1.0).unwrap();
        let mut capture = with_padding(&frame.samples, 20, 200);
        // Blast payload symbols *after* the 8-symbol header block with a
        // strong tone (CR 4/5 cannot correct, CRC must catch it).
        let start = 20 + frame.payload_start + 9 * m.samples_per_chirp();
        for k in 0..3 * m.samples_per_chirp() {
            capture[start + k] = Complex::from_polar(3.0, 0.31 * k as f64);
        }
        match d.demodulate(&capture, 20) {
            Err(PhyError::PayloadCrc) => {}
            other => panic!("expected PayloadCrc, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_header_is_silent_drop() {
        let (m, d) = build(SpreadingFactor::Sf7, 2);
        let frame = m.modulate(b"header", 0.0, 0.0, 1.0).unwrap();
        let mut capture = with_padding(&frame.samples, 20, 200);
        // Corrupt the header block (first symbols after the SFD).
        let start = 20 + frame.payload_start;
        for k in 0..6 * m.samples_per_chirp() {
            capture[start + k] = Complex::from_polar(3.0, 0.47 * k as f64);
        }
        match d.demodulate(&capture, 20) {
            Err(PhyError::HeaderLost) => {}
            other => panic!("expected HeaderLost, got {other:?}"),
        }
    }

    #[test]
    fn capture_too_short_detected() {
        let (_, d) = build(SpreadingFactor::Sf7, 2);
        let tiny = vec![Complex::ZERO; 100];
        assert!(matches!(d.demodulate(&tiny, 0), Err(PhyError::CaptureTooShort { .. })));
    }

    #[test]
    fn find_frame_start_locates_preamble() {
        let (m, d) = build(SpreadingFactor::Sf7, 2);
        let frame = m.modulate(b"locate me", -15e3, 0.0, 1.0).unwrap();
        let lead = 5 * m.samples_per_chirp() + 37;
        let mut capture = with_padding(&frame.samples, lead, 300);
        add_noise(&mut capture, 0.1, 3);
        let found = d.find_frame_start(&capture, 6.0).expect("preamble not found");
        let err = (found as i64 - lead as i64).abs();
        assert!(err <= (m.samples_per_chirp() / 4) as i64, "err {err}");
        // And the coarse start must be good enough to demodulate.
        let out = d.demodulate(&capture, found).unwrap();
        assert_eq!(out.payload, b"locate me");
    }

    #[test]
    fn find_frame_start_rejects_pure_noise() {
        let (_, d) = build(SpreadingFactor::Sf7, 2);
        let mut capture = vec![Complex::ZERO; 30 * d.samples_per_chirp()];
        add_noise(&mut capture, 1.0, 11);
        assert!(d.find_frame_start(&capture, 8.0).is_none());
    }

    #[test]
    fn hamming_corrections_counted_under_noise() {
        // CR 4/8 payload with noise: occasionally codewords get corrected.
        let mut cfg = PhyConfig::uplink(SpreadingFactor::Sf8);
        cfg.cr = CodingRate::Cr4_8;
        let m = Modulator::new(cfg, 1).unwrap();
        let d = Demodulator::new(cfg, 1).unwrap();
        let payload = vec![0x5Au8; 24];
        let frame = m.modulate(&payload, 0.0, 0.0, 1.0).unwrap();
        let mut capture = with_padding(&frame.samples, 32, 128);
        add_noise(&mut capture, 0.9, 23);
        let out = d.demodulate(&capture, 32).unwrap();
        assert_eq!(out.payload, payload);
        // corrected_codewords is usize — just touch it for the API.
        let _ = out.corrected_codewords;
    }
}
