//! Behavioural model of the RN2483/SX1276 receiver under interference
//! (paper §4.3).
//!
//! The paper's attack experiments characterise how a commodity LoRa chip
//! reacts to a jamming frame that starts at different offsets into a
//! legitimate reception. This module reproduces that observable behaviour —
//! which frames the host sees and whether any alert is raised — without
//! waveform-level simulation, so the network simulator can evaluate
//! thousands of frames cheaply. (The waveform-level path exists too: see
//! [`crate::demodulator`].)

use crate::channel::CAPTURE_THRESHOLD_DB;
use crate::frame_timing::{jamming_windows, JammingCalibration, JammingWindows};
use crate::params::PhyConfig;

/// What the gateway host observes for one legitimate frame under (possible)
/// jamming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceptionOutcome {
    /// No interference (or interference too weak): the legitimate frame is
    /// received normally.
    Legitimate,
    /// The jammer started early enough (before `w1`) and strong enough that
    /// the chip locked onto the *jamming* frame instead; the host receives
    /// the jammer's frame.
    JammerCaptured,
    /// The chip aborted reception without telling the host anything — the
    /// stealthy outcome the frame-delay attack needs (onset in `[w1, w2]`).
    SilentDrop,
    /// The chip decoded a frame whose integrity check failed and raised a
    /// corruption alert (onset in `[w2, w3]`).
    CrcAlert,
    /// The jammer started after `w3`: both frames are received
    /// sequentially.
    BothReceived,
    /// The legitimate frame was below the demodulation floor regardless of
    /// jamming.
    NoSignal,
}

impl ReceptionOutcome {
    /// Whether this outcome is *stealthy* from the attacker's point of
    /// view: the legitimate frame is suppressed and the gateway raises no
    /// alert.
    pub fn is_stealthy_suppression(self) -> bool {
        matches!(self, ReceptionOutcome::SilentDrop)
    }

    /// Whether the gateway's host sees any frame at all.
    pub fn host_sees_frame(self) -> bool {
        matches!(
            self,
            ReceptionOutcome::Legitimate
                | ReceptionOutcome::JammerCaptured
                | ReceptionOutcome::BothReceived
        )
    }
}

/// Behavioural RN2483 receiver model.
#[derive(Debug, Clone)]
pub struct Rn2483Model {
    calibration: JammingCalibration,
}

impl Default for Rn2483Model {
    fn default() -> Self {
        Self::new()
    }
}

impl Rn2483Model {
    /// Creates the model with the Table-1 calibration.
    pub fn new() -> Self {
        Rn2483Model { calibration: JammingCalibration::default() }
    }

    /// Creates the model with a custom calibration.
    pub fn with_calibration(calibration: JammingCalibration) -> Self {
        Rn2483Model { calibration }
    }

    /// The calibration in use.
    pub fn calibration(&self) -> &JammingCalibration {
        &self.calibration
    }

    /// The jamming windows for a frame.
    pub fn windows(&self, cfg: &PhyConfig, payload_len: usize) -> JammingWindows {
        jamming_windows(cfg, payload_len, &self.calibration)
    }

    /// Determines the reception outcome of a legitimate frame.
    ///
    /// * `legit_snr_db` — SNR of the legitimate frame at the gateway;
    /// * `jam` — optional jamming transmission: onset relative to the
    ///   legitimate frame start (seconds; may be negative) and the jamming
    ///   signal's power *relative to the legitimate signal* in dB.
    pub fn receive(
        &self,
        cfg: &PhyConfig,
        payload_len: usize,
        legit_snr_db: f64,
        jam: Option<JammingAttempt>,
    ) -> ReceptionOutcome {
        if legit_snr_db < cfg.sf.demod_floor_db() {
            return ReceptionOutcome::NoSignal;
        }
        let Some(jam) = jam else {
            return ReceptionOutcome::Legitimate;
        };
        // A jammer more than the capture margin *below* the legitimate
        // signal cannot corrupt the reception.
        if jam.relative_power_db < -CAPTURE_THRESHOLD_DB {
            return ReceptionOutcome::Legitimate;
        }
        let w = self.windows(cfg, payload_len);
        if jam.onset_s < w.w1 {
            // The chip has not committed to the legitimate preamble yet; a
            // sufficiently strong jammer steals the lock. A comparable-power
            // jammer still prevents either frame from decoding — treat as
            // silent drop (neither preamble wins cleanly).
            if jam.relative_power_db >= CAPTURE_THRESHOLD_DB {
                ReceptionOutcome::JammerCaptured
            } else {
                ReceptionOutcome::SilentDrop
            }
        } else if jam.onset_s < w.w2 {
            ReceptionOutcome::SilentDrop
        } else if jam.onset_s < w.w3 {
            ReceptionOutcome::CrcAlert
        } else {
            ReceptionOutcome::BothReceived
        }
    }
}

/// A jamming transmission overlapping a legitimate frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JammingAttempt {
    /// Jamming onset relative to the legitimate frame's onset, seconds.
    pub onset_s: f64,
    /// Jammer power at the victim receiver, relative to the legitimate
    /// signal's power there, in dB.
    pub relative_power_db: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{PhyConfig, SpreadingFactor};

    fn cfg() -> PhyConfig {
        PhyConfig::uplink(SpreadingFactor::Sf7)
    }

    fn strong_jam(onset_s: f64) -> Option<JammingAttempt> {
        Some(JammingAttempt { onset_s, relative_power_db: 10.0 })
    }

    #[test]
    fn no_jam_receives_legitimate() {
        let m = Rn2483Model::new();
        assert_eq!(m.receive(&cfg(), 20, 5.0, None), ReceptionOutcome::Legitimate);
    }

    #[test]
    fn below_floor_is_no_signal() {
        let m = Rn2483Model::new();
        assert_eq!(m.receive(&cfg(), 20, -10.0, None), ReceptionOutcome::NoSignal);
        // Jamming does not resurrect an undecodable frame.
        assert_eq!(m.receive(&cfg(), 20, -10.0, strong_jam(0.01)), ReceptionOutcome::NoSignal);
    }

    #[test]
    fn weak_jammer_is_harmless() {
        let m = Rn2483Model::new();
        let jam = Some(JammingAttempt { onset_s: 0.02, relative_power_db: -10.0 });
        assert_eq!(m.receive(&cfg(), 20, 5.0, jam), ReceptionOutcome::Legitimate);
    }

    #[test]
    fn early_strong_jam_captures_receiver() {
        let m = Rn2483Model::new();
        // Before w1 = 5 chirps ≈ 5.12 ms.
        assert_eq!(m.receive(&cfg(), 20, 5.0, strong_jam(0.002)), ReceptionOutcome::JammerCaptured);
    }

    #[test]
    fn early_comparable_jam_is_silent() {
        let m = Rn2483Model::new();
        let jam = Some(JammingAttempt { onset_s: 0.002, relative_power_db: 0.0 });
        assert_eq!(m.receive(&cfg(), 20, 5.0, jam), ReceptionOutcome::SilentDrop);
    }

    #[test]
    fn effective_window_silently_drops() {
        let m = Rn2483Model::new();
        let w = m.windows(&cfg(), 20);
        let mid = (w.w1 + w.w2) / 2.0;
        assert_eq!(m.receive(&cfg(), 20, 5.0, strong_jam(mid)), ReceptionOutcome::SilentDrop);
        assert!(m.receive(&cfg(), 20, 5.0, strong_jam(mid)).is_stealthy_suppression());
    }

    #[test]
    fn late_jam_raises_crc_alert() {
        let m = Rn2483Model::new();
        let w = m.windows(&cfg(), 20);
        let late = (w.w2 + w.w3) / 2.0;
        assert_eq!(m.receive(&cfg(), 20, 5.0, strong_jam(late)), ReceptionOutcome::CrcAlert);
    }

    #[test]
    fn very_late_jam_both_received() {
        let m = Rn2483Model::new();
        let w = m.windows(&cfg(), 20);
        assert_eq!(
            m.receive(&cfg(), 20, 5.0, strong_jam(w.w3 + 0.01)),
            ReceptionOutcome::BothReceived
        );
    }

    #[test]
    fn outcome_sweep_is_monotone_in_onset() {
        // Sweeping the onset must walk through the outcome sequence in
        // order: capture -> silent -> alert -> both.
        let m = Rn2483Model::new();
        let w = m.windows(&cfg(), 30);
        let mut seen = Vec::new();
        let mut onset = 0.0;
        while onset < w.w3 + 0.05 {
            let o = m.receive(&cfg(), 30, 5.0, strong_jam(onset));
            if seen.last() != Some(&o) {
                seen.push(o);
            }
            onset += 0.001;
        }
        assert_eq!(
            seen,
            vec![
                ReceptionOutcome::JammerCaptured,
                ReceptionOutcome::SilentDrop,
                ReceptionOutcome::CrcAlert,
                ReceptionOutcome::BothReceived
            ]
        );
    }

    #[test]
    fn host_visibility_classification() {
        assert!(ReceptionOutcome::Legitimate.host_sees_frame());
        assert!(ReceptionOutcome::JammerCaptured.host_sees_frame());
        assert!(ReceptionOutcome::BothReceived.host_sees_frame());
        assert!(!ReceptionOutcome::SilentDrop.host_sees_frame());
        assert!(!ReceptionOutcome::CrcAlert.host_sees_frame());
        assert!(!ReceptionOutcome::NoSignal.host_sees_frame());
    }
}
