//! Radio channel and link-budget models.
//!
//! Provides the propagation machinery behind the paper's two testbeds: the
//! six-floor concrete building (Fig. 15, SNRs from −1 to 13 dB) and the
//! 1.07 km campus link (§8.2, one-way propagation time 3.57 µs, heavy rain
//! during the tests). Geometry-specific deployments live in `softlora-sim`;
//! this module supplies the generic pieces: path-loss laws, thermal noise
//! floors, propagation delay, and the capture-effect threshold for
//! co-channel LoRa transmissions.

/// Speed of light in m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// One-way propagation delay over `distance_m` metres, in seconds.
///
/// ```
/// use softlora_phy::channel::propagation_delay_s;
/// // The paper's campus link: 1.07 km -> 3.57 µs.
/// let d = propagation_delay_s(1070.0);
/// assert!((d - 3.57e-6).abs() < 0.02e-6);
/// ```
pub fn propagation_delay_s(distance_m: f64) -> f64 {
    distance_m / SPEED_OF_LIGHT
}

/// Free-space path loss in dB at `distance_m` metres and `freq_hz` hertz.
///
/// `FSPL = 20·log10(d) + 20·log10(f) − 147.55`.
pub fn free_space_path_loss_db(distance_m: f64, freq_hz: f64) -> f64 {
    20.0 * distance_m.max(1e-3).log10() + 20.0 * freq_hz.log10() - 147.55
}

/// Log-distance path-loss model with shadowing hook:
/// `PL(d) = PL(d0) + 10·n·log10(d/d0)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDistance {
    /// Reference distance in metres (usually 1 m).
    pub d0_m: f64,
    /// Path loss at the reference distance, dB.
    pub pl0_db: f64,
    /// Path-loss exponent (2 free space, 2.7–4 urban, up to 6 indoor NLOS).
    pub exponent: f64,
}

impl LogDistance {
    /// Indoor-concrete defaults at 868 MHz: `PL(1 m) = 31.2 dB`, exponent 3.3.
    pub fn indoor_868() -> Self {
        LogDistance { d0_m: 1.0, pl0_db: 31.2, exponent: 3.3 }
    }

    /// Open-campus defaults at 868 MHz: exponent 2.7 (partially obstructed).
    pub fn campus_868() -> Self {
        LogDistance { d0_m: 1.0, pl0_db: 31.2, exponent: 2.7 }
    }

    /// Path loss in dB at `distance_m` metres.
    pub fn path_loss_db(&self, distance_m: f64) -> f64 {
        self.pl0_db + 10.0 * self.exponent * (distance_m.max(self.d0_m) / self.d0_m).log10()
    }
}

/// Rain attenuation margin in dB for sub-GHz links.
///
/// At 868 MHz rain attenuation is small (well under 0.01 dB/km even in
/// heavy rain), but antenna wetting and reduced multipath coherence add an
/// empirical margin; the paper's campus tests ran in heavy rain and still
/// achieved microsecond timestamping.
pub fn rain_margin_db(distance_km: f64, rain_rate_mm_h: f64) -> f64 {
    // Specific attenuation at 868 MHz is negligible; model the wetting
    // margin as 0.3 dB plus a tiny distance-proportional term.
    0.3 + 0.002 * rain_rate_mm_h * distance_km
}

/// Thermal noise floor in dBm for a receiver of bandwidth `bw_hz` and noise
/// figure `nf_db`: `−174 + 10·log10(BW) + NF`.
///
/// ```
/// use softlora_phy::channel::noise_floor_dbm;
/// // 125 kHz, 6 dB NF -> about −117 dBm.
/// let nf = noise_floor_dbm(125e3, 6.0);
/// assert!((nf + 117.0).abs() < 0.1);
/// ```
pub fn noise_floor_dbm(bw_hz: f64, nf_db: f64) -> f64 {
    -174.0 + 10.0 * bw_hz.log10() + nf_db
}

/// Co-channel capture threshold for LoRa: a frame is decodable in the
/// presence of a same-SF interferer if it is at least this much stronger
/// (dB). The ~6 dB figure is the commonly measured SX127x co-SF capture
/// margin and is what makes the paper's jamming effective.
pub const CAPTURE_THRESHOLD_DB: f64 = 6.0;

/// A point-to-point radio link budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    /// Transmit power in dBm (EIRP).
    pub tx_power_dbm: f64,
    /// Total path loss in dB (path loss + penetration + margins).
    pub path_loss_db: f64,
    /// Receiver noise floor in dBm.
    pub noise_floor_dbm: f64,
}

impl LinkBudget {
    /// Received signal power in dBm.
    pub fn rx_power_dbm(&self) -> f64 {
        self.tx_power_dbm - self.path_loss_db
    }

    /// Received SNR in dB.
    pub fn snr_db(&self) -> f64 {
        self.rx_power_dbm() - self.noise_floor_dbm
    }

    /// Whether a frame at spreading factor `sf` is decodable on this link
    /// (SNR above the SX1276 demodulation floor).
    pub fn decodable(&self, sf: crate::SpreadingFactor) -> bool {
        self.snr_db() >= sf.demod_floor_db()
    }

    /// Linear amplitude scale corresponding to the received power, relative
    /// to a 0 dBm reference amplitude of 1.0.
    pub fn rx_amplitude(&self) -> f64 {
        10f64.powf(self.rx_power_dbm() / 20.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpreadingFactor;

    #[test]
    fn propagation_delay_microseconds_scale() {
        // Paper §3: "radio signal propagation times ... are generally in
        // microseconds".
        assert!(propagation_delay_s(300.0) < 1.1e-6);
        assert!((propagation_delay_s(1070.0) - 3.569e-6).abs() < 5e-9);
    }

    #[test]
    fn fspl_known_value() {
        // 868 MHz at 1 km: ≈ 91.2 dB.
        let pl = free_space_path_loss_db(1000.0, 868e6);
        assert!((pl - 91.2).abs() < 0.3, "{pl}");
    }

    #[test]
    fn fspl_monotone_in_distance_and_freq() {
        assert!(free_space_path_loss_db(200.0, 868e6) > free_space_path_loss_db(100.0, 868e6));
        assert!(free_space_path_loss_db(100.0, 915e6) > free_space_path_loss_db(100.0, 868e6));
    }

    #[test]
    fn log_distance_matches_fspl_with_exponent_two() {
        let ld =
            LogDistance { d0_m: 1.0, pl0_db: free_space_path_loss_db(1.0, 868e6), exponent: 2.0 };
        for d in [10.0, 100.0, 1000.0] {
            let a = ld.path_loss_db(d);
            let b = free_space_path_loss_db(d, 868e6);
            assert!((a - b).abs() < 0.01, "d={d}: {a} vs {b}");
        }
    }

    #[test]
    fn log_distance_clamps_below_reference() {
        let ld = LogDistance::indoor_868();
        assert_eq!(ld.path_loss_db(0.1), ld.pl0_db);
    }

    #[test]
    fn noise_floor_values() {
        assert!((noise_floor_dbm(125e3, 6.0) + 117.03).abs() < 0.05);
        // Wider bandwidth, higher floor.
        assert!(noise_floor_dbm(500e3, 6.0) > noise_floor_dbm(125e3, 6.0));
    }

    #[test]
    fn link_budget_snr_and_decodability() {
        let link = LinkBudget {
            tx_power_dbm: 14.0,
            path_loss_db: 120.0,
            noise_floor_dbm: noise_floor_dbm(125e3, 6.0),
        };
        assert!((link.rx_power_dbm() + 106.0).abs() < 1e-9);
        assert!((link.snr_db() - 11.0).abs() < 0.1);
        assert!(link.decodable(SpreadingFactor::Sf7));

        let weak = LinkBudget { path_loss_db: 140.0, ..link };
        // SNR ≈ −9 dB: SF7 floor is −7.5 (fails) but SF8's −10 passes.
        assert!(!weak.decodable(SpreadingFactor::Sf7));
        assert!(weak.decodable(SpreadingFactor::Sf8));
    }

    #[test]
    fn sf8_crosses_what_sf7_cannot_like_paper_building() {
        // Paper §8.1.1: SF7 fails across the building floors, SF8 works.
        // Find a path loss that reproduces that ordering.
        let pl = 139.0;
        let link = LinkBudget {
            tx_power_dbm: 14.0,
            path_loss_db: pl,
            noise_floor_dbm: noise_floor_dbm(125e3, 6.0),
        };
        assert!(!link.decodable(SpreadingFactor::Sf7));
        assert!(link.decodable(SpreadingFactor::Sf8));
    }

    #[test]
    fn rx_amplitude_is_20log_inverse() {
        let link = LinkBudget { tx_power_dbm: 0.0, path_loss_db: 40.0, noise_floor_dbm: -117.0 };
        assert!((link.rx_amplitude() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn rain_margin_small_at_868() {
        let m = rain_margin_db(1.07, 25.0);
        assert!(m > 0.0 && m < 1.0, "{m}");
    }
}
