//! LoRa physical layer for the SoftLoRa reproduction.
//!
//! This crate rebuilds, in software, every piece of radio hardware the paper
//! ("Attack-Aware Data Timestamping in Low-Power Synchronization-Free
//! LoRaWAN", ICDCS 2020) relies on:
//!
//! * the **Chirp Spread Spectrum waveform** exactly as modelled in paper
//!   §5.2/§6.1.1/§7.1 — instantaneous angle
//!   `Θ(t) = πW²/2^S·t² − πW·t + 2πδ·t + θ` — in [`chirp`];
//! * a full **modulator/demodulator** pair (whitening, Hamming FEC,
//!   diagonal interleaving, Gray mapping, explicit header, payload CRC) in
//!   [`modulator`], [`demodulator`] and [`coding`];
//! * **oscillator models** with ppm-scale frequency bias — the physical trait
//!   the paper's defence keys on — in [`oscillator`];
//! * the **SDR receiver front-end** (quadrature mixing with receiver bias
//!   `δRx` and random phase `θRx`, low-pass filtering, 2.4 Msps sampling;
//!   paper Fig. 5) in [`sdr`];
//! * **radio channel models** (log-distance/free-space path loss, the
//!   six-floor building of paper Fig. 15, AWGN and "real" coloured noise) in
//!   [`channel`] and [`noise`];
//! * **frame timing** and the stealthy-jamming windows `w1/w2/w3` of paper
//!   Table 1 in [`frame_timing`];
//! * a behavioural model of the **RN2483 receiver chip's** lock/drop/alert
//!   logic under jamming (paper §4.3) in [`rn2483`].
//!
//! The crate is deliberately self-contained: given a payload, a device
//! oscillator and a channel, it produces the same I/Q traces an RTL-SDR
//! would capture, which the `softlora` core crate then timestamps and
//! analyses.

pub mod channel;
pub mod chirp;
pub mod coding;
pub mod demodulator;
pub mod frame_timing;
pub mod modulator;
pub mod noise;
pub mod oscillator;
pub mod params;
pub mod rn2483;
pub mod sdr;

pub use chirp::{cached_chirp_refs, ChirpGenerator, ChirpRefs};
pub use demodulator::{DemodScratch, DemodulatedFrame, Demodulator};
pub use params::{Bandwidth, CodingRate, LoRaChannel, PhyConfig, SpreadingFactor};

/// Errors returned by PHY-layer routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhyError {
    /// A configuration parameter was out of its documented domain.
    InvalidConfig {
        /// Human-readable description of the violated constraint.
        reason: &'static str,
    },
    /// The payload exceeds the maximum the PHY header can describe.
    PayloadTooLong {
        /// Maximum payload length in bytes.
        max: usize,
        /// Requested payload length in bytes.
        actual: usize,
    },
    /// Demodulation failed before the header could be recovered (no
    /// preamble lock, or header parity failure). This is the "silent drop"
    /// path of the RN2483 (paper §4.3): no alert is raised.
    HeaderLost,
    /// The header decoded but the payload failed its CRC — the chip raises
    /// a frame-corruption alert (paper §4.3).
    PayloadCrc,
    /// The capture does not contain enough samples for the requested
    /// operation.
    CaptureTooShort {
        /// Samples required.
        required: usize,
        /// Samples available.
        actual: usize,
    },
    /// An underlying DSP routine rejected its input.
    Dsp(softlora_dsp::DspError),
}

impl std::fmt::Display for PhyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhyError::InvalidConfig { reason } => write!(f, "invalid PHY configuration: {reason}"),
            PhyError::PayloadTooLong { max, actual } => {
                write!(f, "payload too long: {actual} bytes exceeds maximum {max}")
            }
            PhyError::HeaderLost => write!(f, "frame header lost (silent drop, no alert)"),
            PhyError::PayloadCrc => write!(f, "payload integrity check failed (alert raised)"),
            PhyError::CaptureTooShort { required, actual } => {
                write!(f, "capture too short: need {required} samples, got {actual}")
            }
            PhyError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl std::error::Error for PhyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PhyError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<softlora_dsp::DspError> for PhyError {
    fn from(e: softlora_dsp::DspError) -> Self {
        PhyError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(PhyError::HeaderLost.to_string().contains("silent"));
        assert!(PhyError::PayloadCrc.to_string().contains("alert"));
        let e = PhyError::PayloadTooLong { max: 255, actual: 300 };
        assert!(e.to_string().contains("300"));
    }

    #[test]
    fn dsp_error_converts_and_sources() {
        use std::error::Error;
        let d = softlora_dsp::DspError::InputTooShort { required: 4, actual: 1 };
        let e: PhyError = d.clone().into();
        assert_eq!(e, PhyError::Dsp(d));
        assert!(e.source().is_some());
    }
}
