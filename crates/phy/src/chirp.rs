//! CSS chirp synthesis (paper §5.2, §6.1.1, §7.1).
//!
//! A LoRa up-chirp at complex baseband has instantaneous angle
//!
//! ```text
//! Θ(t) = π·W²/2^S · t² − π·W·t + 2π·δ·t + θ,    t ∈ [0, 2^S/W]
//! ```
//!
//! where `W` is the bandwidth, `S` the spreading factor, `δ` the net
//! frequency bias between transmitter and receiver, and `θ` the net phase.
//! The received I/Q components are `I(t) = A/2·cos Θ(t)` and
//! `Q(t) = A/2·sin Θ(t)`. Data symbols are cyclic shifts of the base chirp.
//!
//! This module generates sampled versions of these waveforms at an arbitrary
//! sample rate — `2.4 Msps` for the RTL-SDR capture path, or an integer
//! oversampling of `W` for the modem path.

use crate::params::{PhyConfig, SpreadingFactor};
use crate::PhyError;
use softlora_dsp::Complex;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Evaluates the paper's instantaneous angle `Θ(t)` of a symbol-0 up chirp.
///
/// `w` is the bandwidth in Hz, `sf` the spreading factor, `delta` the net
/// frequency bias in Hz and `theta` the net phase in radians.
///
/// ```
/// use softlora_phy::chirp::instantaneous_angle;
/// // At t = 0 the angle equals the phase offset.
/// assert_eq!(instantaneous_angle(0.0, 125e3, 7, 0.0, 1.0), 1.0);
/// ```
pub fn instantaneous_angle(t: f64, w: f64, sf: u32, delta: f64, theta: f64) -> f64 {
    let a = std::f64::consts::PI * w * w / (1u64 << sf) as f64;
    a * t * t - std::f64::consts::PI * w * t + 2.0 * std::f64::consts::PI * delta * t + theta
}

/// Direction of a chirp's frequency sweep.
///
/// LoRaWAN uplink preambles use up chirps; downlink preambles use down
/// chirps — which is how the paper's adversary tells transmission direction
/// within one chirp time (§4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChirpDirection {
    /// Frequency increases linearly from `−W/2` to `+W/2`.
    Up,
    /// Frequency decreases linearly from `+W/2` to `−W/2`.
    Down,
}

/// Generator for sampled CSS chirps of a fixed PHY configuration and sample
/// rate.
///
/// # Example
///
/// ```
/// use softlora_phy::{ChirpGenerator, SpreadingFactor};
///
/// // Modem-rate generator: 2 samples per chip.
/// let gen = ChirpGenerator::oversampled(SpreadingFactor::Sf7, 125e3, 2)?;
/// let chirp = gen.upchirp(0, 0.0, 0.0, 1.0);
/// assert_eq!(chirp.len(), 2 * 128);
/// # Ok::<(), softlora_phy::PhyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ChirpGenerator {
    sf: SpreadingFactor,
    bandwidth_hz: f64,
    sample_rate: f64,
    samples_per_chirp: usize,
}

impl ChirpGenerator {
    /// Creates a generator at an arbitrary sample rate (e.g. the RTL-SDR's
    /// 2.4 Msps). The number of samples per chirp is `floor(T_chirp · fs)`.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidConfig`] if the sample rate is below the
    /// bandwidth (Nyquist for complex baseband) or non-finite.
    pub fn new(sf: SpreadingFactor, bandwidth_hz: f64, sample_rate: f64) -> Result<Self, PhyError> {
        if bandwidth_hz <= 0.0 || !bandwidth_hz.is_finite() {
            return Err(PhyError::InvalidConfig { reason: "bandwidth must be positive" });
        }
        if sample_rate < bandwidth_hz || !sample_rate.is_finite() {
            return Err(PhyError::InvalidConfig {
                reason: "sample rate must be at least the bandwidth",
            });
        }
        let chirp_time = sf.chips() as f64 / bandwidth_hz;
        let samples_per_chirp = (chirp_time * sample_rate).floor() as usize;
        Ok(ChirpGenerator { sf, bandwidth_hz, sample_rate, samples_per_chirp })
    }

    /// Creates a modem-rate generator with an integer number of samples per
    /// chip (`sample_rate = oversample · bandwidth`), which keeps symbol
    /// boundaries sample-aligned for the demodulator.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidConfig`] if `oversample` is zero.
    pub fn oversampled(
        sf: SpreadingFactor,
        bandwidth_hz: f64,
        oversample: usize,
    ) -> Result<Self, PhyError> {
        if oversample == 0 {
            return Err(PhyError::InvalidConfig { reason: "oversample must be positive" });
        }
        Self::new(sf, bandwidth_hz, bandwidth_hz * oversample as f64)
    }

    /// Creates the paper's SDR-capture generator for a PHY config: the
    /// RTL-SDR's 2.4 Msps.
    ///
    /// # Errors
    ///
    /// Propagates [`PhyError::InvalidConfig`] from [`ChirpGenerator::new`].
    pub fn sdr_rate(cfg: &PhyConfig) -> Result<Self, PhyError> {
        Self::new(cfg.sf, cfg.channel.bandwidth.hz(), 2.4e6)
    }

    /// Spreading factor of the generated chirps.
    pub fn sf(&self) -> SpreadingFactor {
        self.sf
    }

    /// Bandwidth in Hz.
    pub fn bandwidth_hz(&self) -> f64 {
        self.bandwidth_hz
    }

    /// Sample rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Samples per chirp at this generator's sample rate.
    pub fn samples_per_chirp(&self) -> usize {
        self.samples_per_chirp
    }

    /// Chirp duration in seconds.
    pub fn chirp_time(&self) -> f64 {
        self.sf.chips() as f64 / self.bandwidth_hz
    }

    /// Generates one up chirp carrying `symbol` (cyclic shift), with net
    /// frequency bias `delta_hz`, net phase `theta` and amplitude `amp`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol >= 2^SF` (symbols are validated upstream by the
    /// modulator; this is a programming error).
    pub fn upchirp(&self, symbol: usize, delta_hz: f64, theta: f64, amp: f64) -> Vec<Complex> {
        self.chirp(ChirpDirection::Up, symbol, delta_hz, theta, amp)
    }

    /// Generates one down chirp (used by the SFD and downlink preambles).
    ///
    /// # Panics
    ///
    /// Panics if `symbol >= 2^SF`.
    pub fn downchirp(&self, symbol: usize, delta_hz: f64, theta: f64, amp: f64) -> Vec<Complex> {
        self.chirp(ChirpDirection::Down, symbol, delta_hz, theta, amp)
    }

    /// Generates a chirp in the given direction.
    ///
    /// # Panics
    ///
    /// Panics if `symbol >= 2^SF`.
    pub fn chirp(
        &self,
        direction: ChirpDirection,
        symbol: usize,
        delta_hz: f64,
        theta: f64,
        amp: f64,
    ) -> Vec<Complex> {
        let mut out = Vec::with_capacity(self.samples_per_chirp);
        self.chirp_into(direction, symbol, delta_hz, theta, amp, &mut out);
        out
    }

    /// [`ChirpGenerator::chirp`] appended to a caller-owned buffer —
    /// capture synthesis reuses one buffer for a whole multi-chirp
    /// preamble instead of allocating per chirp.
    ///
    /// # Panics
    ///
    /// Panics if `symbol >= 2^SF`.
    pub fn chirp_into(
        &self,
        direction: ChirpDirection,
        symbol: usize,
        delta_hz: f64,
        theta: f64,
        amp: f64,
        out: &mut Vec<Complex>,
    ) {
        let chips = self.sf.chips();
        assert!(symbol < chips, "symbol {symbol} out of range for {}", self.sf);
        let w = self.bandwidth_hz;
        let t_total = self.chirp_time();
        // Frequency slope in Hz/s.
        let a = w * w / chips as f64;
        // Initial baseband frequency and time until the frequency wrap.
        let (f0, slope) = match direction {
            ChirpDirection::Up => (-w / 2.0 + symbol as f64 * w / chips as f64, a),
            ChirpDirection::Down => (w / 2.0 - symbol as f64 * w / chips as f64, -a),
        };
        let t_wrap = match direction {
            ChirpDirection::Up => (w / 2.0 - f0) / a,
            ChirpDirection::Down => (f0 + w / 2.0) / a,
        };
        // Phase accumulated by the first segment at its end.
        let two_pi = 2.0 * std::f64::consts::PI;
        let phase_at_wrap = two_pi * (f0 * t_wrap + slope * t_wrap * t_wrap / 2.0);
        // Frequency restarts at the opposite band edge after the wrap.
        let f_restart = match direction {
            ChirpDirection::Up => -w / 2.0,
            ChirpDirection::Down => w / 2.0,
        };

        let dt = 1.0 / self.sample_rate;
        out.reserve(self.samples_per_chirp);
        out.extend((0..self.samples_per_chirp).map(|n| {
            let t = n as f64 * dt;
            let core_phase = if t < t_wrap || t_wrap >= t_total {
                two_pi * (f0 * t + slope * t * t / 2.0)
            } else {
                let u = t - t_wrap;
                phase_at_wrap + two_pi * (f_restart * u + slope * u * u / 2.0)
            };
            Complex::from_polar(amp, core_phase + two_pi * delta_hz * t + theta)
        }));
    }

    /// Conjugate base up-chirp used as the dechirp reference.
    pub fn dechirp_reference(&self) -> Vec<Complex> {
        self.upchirp(0, 0.0, 0.0, 1.0).into_iter().map(Complex::conj).collect()
    }

    /// I/Q traces of an up chirp as separate real vectors, matching the
    /// paper's presentation (`I(t) = A/2·cos Θ`, `Q(t) = A/2·sin Θ` — pass
    /// `amp = A/2` for a literal match).
    pub fn upchirp_iq(
        &self,
        symbol: usize,
        delta_hz: f64,
        theta: f64,
        amp: f64,
    ) -> (Vec<f64>, Vec<f64>) {
        let z = self.upchirp(symbol, delta_hz, theta, amp);
        (z.iter().map(|c| c.re).collect(), z.iter().map(|c| c.im).collect())
    }
}

/// The shared reference waveforms of one `(SF, bandwidth, sample rate)`
/// parameterisation: every receiver instance at the same parameters uses
/// the **same** immutable tables instead of re-synthesising them.
#[derive(Debug, Clone)]
pub struct ChirpRefs {
    /// The clean symbol-0 up-chirp (fine-timing correlation template).
    pub upchirp: Arc<Vec<Complex>>,
    /// `conj(upchirp)` — the up-dechirp reference.
    pub up_conj: Arc<Vec<Complex>>,
    /// `conj(downchirp)` — the down-dechirp (SFD) reference.
    pub down_conj: Arc<Vec<Complex>>,
}

/// Cache key: `(sf, bandwidth bits, sample-rate bits)`.
type RefsKey = (u32, u64, u64);

/// Process-wide cache behind [`cached_chirp_refs`].
fn refs_cache() -> &'static Mutex<HashMap<RefsKey, ChirpRefs>> {
    static CACHE: OnceLock<Mutex<HashMap<RefsKey, ChirpRefs>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The cached reference set for `(sf, bandwidth_hz, sample_rate)`,
/// synthesised on first request.
///
/// Demodulators and FB estimators are constructed per gateway (and per
/// benchmark iteration), but their reference chirps depend only on the
/// radio parameterisation — a fleet of SF7/125 kHz receivers shares three
/// tables instead of synthesising `3 × gateways` of them. The returned
/// handles are cheap to clone.
///
/// # Errors
///
/// Propagates [`PhyError::InvalidConfig`] from [`ChirpGenerator::new`].
pub fn cached_chirp_refs(
    sf: SpreadingFactor,
    bandwidth_hz: f64,
    sample_rate: f64,
) -> Result<ChirpRefs, PhyError> {
    let key = (sf.value(), bandwidth_hz.to_bits(), sample_rate.to_bits());
    if let Some(refs) = refs_cache().lock().expect("chirp cache poisoned").get(&key) {
        return Ok(refs.clone());
    }
    // Synthesise outside the lock (SF12 at 2.4 Msps is ~80k samples).
    let generator = ChirpGenerator::new(sf, bandwidth_hz, sample_rate)?;
    let upchirp = generator.upchirp(0, 0.0, 0.0, 1.0);
    let up_conj: Vec<Complex> = upchirp.iter().map(|z| z.conj()).collect();
    let down_conj: Vec<Complex> =
        generator.downchirp(0, 0.0, 0.0, 1.0).iter().map(|z| z.conj()).collect();
    let refs = ChirpRefs {
        upchirp: Arc::new(upchirp),
        up_conj: Arc::new(up_conj),
        down_conj: Arc::new(down_conj),
    };
    let mut cache = refs_cache().lock().expect("chirp cache poisoned");
    // A racing thread may have inserted meanwhile; keep the first entry so
    // every holder shares one table.
    Ok(cache.entry(key).or_insert(refs).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_dsp::fft::{argmax_bin, fft_forward};
    use softlora_dsp::unwrap::unwrap_iq;

    fn gen(os: usize) -> ChirpGenerator {
        ChirpGenerator::oversampled(SpreadingFactor::Sf7, 125e3, os).unwrap()
    }

    #[test]
    fn sample_counts() {
        let g = gen(1);
        assert_eq!(g.samples_per_chirp(), 128);
        let g4 = gen(4);
        assert_eq!(g4.samples_per_chirp(), 512);
        let sdr = ChirpGenerator::new(SpreadingFactor::Sf7, 125e3, 2.4e6).unwrap();
        // 1.024 ms at 2.4 Msps = 2457.6 -> 2457 samples.
        assert_eq!(sdr.samples_per_chirp(), 2457);
        assert!((sdr.chirp_time() - 1.024e-3).abs() < 1e-12);
    }

    #[test]
    fn constructor_validation() {
        assert!(ChirpGenerator::new(SpreadingFactor::Sf7, 0.0, 1e6).is_err());
        assert!(ChirpGenerator::new(SpreadingFactor::Sf7, 125e3, 60e3).is_err());
        assert!(ChirpGenerator::oversampled(SpreadingFactor::Sf7, 125e3, 0).is_err());
    }

    #[test]
    fn chirp_has_constant_amplitude() {
        let g = gen(2);
        for z in g.upchirp(37, 1000.0, 0.5, 2.0) {
            assert!((z.norm() - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn dechirped_symbol_lands_in_symbol_bin() {
        // Multiplying symbol-k upchirp by conj(base) must concentrate energy
        // in FFT bin k (the fundamental CSS demodulation property).
        let g = gen(1);
        let reference = g.dechirp_reference();
        for &sym in &[0usize, 1, 5, 64, 100, 127] {
            let c = g.upchirp(sym, 0.0, 0.0, 1.0);
            let mixed: Vec<Complex> =
                c.iter().zip(reference.iter()).map(|(a, b)| *a * *b).collect();
            let spec = fft_forward(&mixed);
            let (bin, _) = argmax_bin(&spec);
            assert_eq!(bin, sym, "symbol {sym} -> bin {bin}");
        }
    }

    #[test]
    fn unwrapped_phase_matches_paper_formula() {
        // For symbol 0, the sampled phase must equal Θ(t) up to 2π.
        let g = ChirpGenerator::new(SpreadingFactor::Sf7, 125e3, 2.4e6).unwrap();
        let delta = -22_800.0; // the paper's example FB, −22.8 kHz
        let theta = 0.7;
        let (i, q) = g.upchirp_iq(0, delta, theta, 1.0);
        let un = unwrap_iq(&i, &q);
        let dt = 1.0 / g.sample_rate();
        for n in (0..un.len()).step_by(97) {
            let t = n as f64 * dt;
            let want = instantaneous_angle(t, 125e3, 7, delta, theta);
            let diff = un[n] - want;
            // Same up to a constant multiple of 2π fixed at n = 0.
            let k = (diff / (2.0 * std::f64::consts::PI)).round();
            assert!(
                (diff - k * 2.0 * std::f64::consts::PI).abs() < 1e-6,
                "sample {n}: diff {diff}"
            );
        }
    }

    #[test]
    fn frequency_bias_shifts_dechirp_bin() {
        // A frequency bias of m bins (m·W/2^S Hz) moves the dechirped peak
        // by m bins — the effect Choir/the paper exploit.
        let g = gen(1);
        let reference = g.dechirp_reference();
        let bin_hz = 125e3 / 128.0;
        let c = g.upchirp(0, 3.0 * bin_hz, 0.0, 1.0);
        let mixed: Vec<Complex> = c.iter().zip(reference.iter()).map(|(a, b)| *a * *b).collect();
        let (bin, _) = argmax_bin(&fft_forward(&mixed));
        assert_eq!(bin, 3);
    }

    #[test]
    fn down_chirp_mirrors_up_chirp_spectrally() {
        // Dechirping a down chirp with the up reference spreads energy; with
        // the conjugate (down) reference it concentrates. This property lets
        // receivers detect transmission direction in one chirp (paper §4.2.2).
        let g = gen(1);
        let down = g.downchirp(0, 0.0, 0.0, 1.0);
        let up_ref = g.dechirp_reference();
        let down_ref: Vec<Complex> = down.iter().map(|z| z.conj()).collect();

        let mixed_wrong: Vec<Complex> =
            down.iter().zip(up_ref.iter()).map(|(a, b)| *a * *b).collect();
        let mixed_right: Vec<Complex> =
            down.iter().zip(down_ref.iter()).map(|(a, b)| *a * *b).collect();
        let peak_wrong = argmax_bin(&fft_forward(&mixed_wrong)).1;
        let peak_right = argmax_bin(&fft_forward(&mixed_right)).1;
        assert!(peak_right > 4.0 * peak_wrong, "right {peak_right} wrong {peak_wrong}");
    }

    #[test]
    fn symbol_shift_is_cyclic() {
        // Symbol k chirp equals base chirp cyclically shifted by k chips
        // (up to phase); verify via dechirp bin for a shifted slice instead
        // of sample equality (the wrap makes direct comparison awkward).
        let g = gen(4);
        let reference = g.dechirp_reference();
        let c = g.upchirp(100, 0.0, 0.0, 1.0);
        let mixed: Vec<Complex> = c.iter().zip(reference.iter()).map(|(a, b)| *a * *b).collect();
        let spec = fft_forward(&mixed);
        let (bin, _) = argmax_bin(&spec);
        // The dechirped symbol-k tone sits at k·W/2^S before the frequency
        // wrap and at k·W/2^S − W after it; for k > 2^S/2 the post-wrap
        // segment is longer and dominates the full-window FFT.
        let fft_len = spec.len() as f64;
        let fs = 4.0 * 125e3;
        let dominant_hz = 100.0 * (125e3 / 128.0) - 125e3; // −27.34 kHz
        let expected = ((dominant_hz / fs * fft_len).round() as i64).rem_euclid(fft_len as i64);
        assert_eq!(bin as i64, expected);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_symbol_panics() {
        gen(1).upchirp(128, 0.0, 0.0, 1.0);
    }

    #[test]
    fn iq_split_matches_complex() {
        let g = gen(1);
        let z = g.upchirp(5, 100.0, 0.3, 1.5);
        let (i, q) = g.upchirp_iq(5, 100.0, 0.3, 1.5);
        for (n, c) in z.iter().enumerate() {
            assert_eq!(c.re, i[n]);
            assert_eq!(c.im, q[n]);
        }
    }

    #[test]
    fn phase_continuity_across_wrap() {
        // The sample-to-sample phase increment should never jump by more
        // than the max instantaneous frequency allows.
        let g = gen(8); // high oversampling to bound the increment
        let c = g.upchirp(77, 0.0, 0.0, 1.0);
        let max_inc = 2.0 * std::f64::consts::PI * (125e3 / 2.0) / g.sample_rate() + 1e-9;
        for pair in c.windows(2) {
            let d = (pair[1] * pair[0].conj()).arg().abs();
            assert!(d <= max_inc + 1e-6, "phase jump {d} exceeds {max_inc}");
        }
    }
}
