//! Frame timing decomposition and the stealthy-jamming windows of paper
//! Table 1.
//!
//! The paper identifies three critical time offsets after the onset `t0` of
//! a legitimate frame transmission:
//!
//! * jam onset in `[t0, t0+w1]` — the victim re-locks onto the (stronger)
//!   jamming preamble and receives the *jamming* frame;
//! * jam onset in `[t0+w1, t0+w2]` — the **effective attack window**: the
//!   victim decodes nothing and raises no alert (silent drop);
//! * jam onset in `[t0+w2, t0+w3]` — the victim reports frame corruption
//!   (CRC alert);
//! * jam onset after `t0+w3` — both frames are received sequentially.

use crate::params::PhyConfig;

/// Full timing decomposition of a frame, in seconds from the frame onset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameTiming {
    /// One chirp (symbol) time.
    pub chirp_time: f64,
    /// End of the preamble up-chirps.
    pub preamble_end: f64,
    /// End of the sync word + SFD (payload section start).
    pub payload_start: f64,
    /// End of the header interleaving block.
    pub header_end: f64,
    /// End of the whole frame (total air time).
    pub frame_end: f64,
}

impl FrameTiming {
    /// Computes the timing of a frame with `payload_len` payload bytes.
    pub fn of(cfg: &PhyConfig, payload_len: usize) -> Self {
        let t = cfg.chirp_time();
        FrameTiming {
            chirp_time: t,
            preamble_end: cfg.preamble_time(),
            payload_start: (cfg.preamble_chirps as f64 + 4.25) * t,
            header_end: cfg.header_end_time(),
            frame_end: cfg.airtime(payload_len),
        }
    }
}

/// The three jamming windows of paper Table 1, in seconds after the frame
/// onset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JammingWindows {
    /// Before `w1`: the gateway re-locks the jammer's preamble and receives
    /// the jamming frame.
    pub w1: f64,
    /// Between `w1` and `w2`: silent drop — the effective attack window.
    pub w2: f64,
    /// Between `w2` and `w3`: CRC-alert; after `w3`: both frames decode.
    pub w3: f64,
}

impl JammingWindows {
    /// Length of the effective (stealthy) attack window, `w2 − w1`.
    pub fn effective_window(&self) -> f64 {
        self.w2 - self.w1
    }
}

/// Calibration of the RN2483 receiver behaviour used to derive the windows.
///
/// The *mechanisms* come from the paper's §4.3 analysis; two constants are
/// calibrated against the measured Table 1 values and documented in
/// EXPERIMENTS.md:
///
/// * `lock_chirps = 5`: the chip locks the legitimate preamble from the 6th
///   chirp; jamming that starts earlier captures the receiver instead.
/// * `abandon_fraction ≈ 0.67`: when jamming corrupts more than about a
///   third of the frame (onset before ~2/3 of the air time), the chip
///   abandons reception silently; later corruption yields a decoded-but-
///   CRC-failed frame and an alert. The measured `w2` in Table 1 tracks
///   ~0.67 · airtime across all SF/payload rows (and is never below the end
///   of the header, whose corruption is always silent).
/// * `decode_latency_s ≈ 0.09`: fixed post-frame processing time the chip
///   needs before it can receive again; `w3 = airtime + latency`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JammingCalibration {
    /// Preamble chirps after which the receiver is committed to the
    /// legitimate frame.
    pub lock_chirps: f64,
    /// Fraction of the air time before which jamming causes a silent
    /// abandon rather than a CRC alert.
    pub abandon_fraction: f64,
    /// Post-frame decode/turnaround latency in seconds.
    pub decode_latency_s: f64,
}

impl Default for JammingCalibration {
    fn default() -> Self {
        JammingCalibration { lock_chirps: 5.0, abandon_fraction: 0.67, decode_latency_s: 0.09 }
    }
}

/// Computes the jamming windows for a frame configuration and payload size.
pub fn jamming_windows(
    cfg: &PhyConfig,
    payload_len: usize,
    cal: &JammingCalibration,
) -> JammingWindows {
    let timing = FrameTiming::of(cfg, payload_len);
    let w1 = cal.lock_chirps * timing.chirp_time;
    let w2 = (cal.abandon_fraction * timing.frame_end).max(timing.header_end);
    let w3 = timing.frame_end + cal.decode_latency_s;
    JammingWindows { w1, w2, w3 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{PhyConfig, SpreadingFactor};

    fn ms(x: f64) -> f64 {
        x * 1e3
    }

    #[test]
    fn timing_ordering_invariant() {
        for sf in SpreadingFactor::ALL {
            let mut cfg = PhyConfig::uplink(sf);
            if sf == SpreadingFactor::Sf6 {
                cfg.explicit_header = false;
            }
            for len in [0usize, 10, 40, 120] {
                let t = FrameTiming::of(&cfg, len);
                assert!(t.preamble_end < t.payload_start);
                assert!(t.payload_start < t.header_end);
                assert!(t.header_end <= t.frame_end, "{sf} len {len}");
            }
        }
    }

    #[test]
    fn w1_matches_table1() {
        // Table 1 measured w1: ~5–6 ms (SF7), 10 ms (SF8), 22 ms (SF9) —
        // i.e. five chirp times.
        let cal = JammingCalibration::default();
        let w7 = jamming_windows(&PhyConfig::uplink(SpreadingFactor::Sf7), 20, &cal).w1;
        let w8 = jamming_windows(&PhyConfig::uplink(SpreadingFactor::Sf8), 30, &cal).w1;
        let w9 = jamming_windows(&PhyConfig::uplink(SpreadingFactor::Sf9), 30, &cal).w1;
        assert!((ms(w7) - 5.12).abs() < 0.01);
        assert!((ms(w8) - 10.24).abs() < 0.01);
        assert!((ms(w9) - 20.48).abs() < 0.01);
    }

    #[test]
    fn w2_tracks_table1_shape() {
        // Table 1 SF7 w2: 28/38/41/54 ms for 10/20/30/40 B. Our model gives
        // 0.67·airtime; verify within a few ms and strictly increasing.
        let cal = JammingCalibration::default();
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
        let measured = [28.0, 38.0, 41.0, 54.0];
        let mut prev = 0.0;
        for (len, want) in [10usize, 20, 30, 40].iter().zip(measured.iter()) {
            let w2 = ms(jamming_windows(&cfg, *len, &cal).w2);
            assert!((w2 - want).abs() < 8.0, "payload {len}: {w2} vs {want}");
            assert!(w2 > prev);
            prev = w2;
        }
    }

    #[test]
    fn w2_grows_exponentially_with_sf() {
        // Paper: "w2 increases exponentially with the spreading factor".
        let cal = JammingCalibration::default();
        let w7 = jamming_windows(&PhyConfig::uplink(SpreadingFactor::Sf7), 30, &cal).w2;
        let w8 = jamming_windows(&PhyConfig::uplink(SpreadingFactor::Sf8), 30, &cal).w2;
        let w9 = jamming_windows(&PhyConfig::uplink(SpreadingFactor::Sf9), 30, &cal).w2;
        assert!(w8 / w7 > 1.6 && w8 / w7 < 2.4, "ratio {}", w8 / w7);
        assert!(w9 / w8 > 1.6 && w9 / w8 < 2.4, "ratio {}", w9 / w8);
        // Table 1: SF8 30 B w2 = 82 ms, SF9 30 B w2 = 156 ms.
        assert!((ms(w8) - 82.0).abs() < 10.0, "w8 {}", ms(w8));
        assert!((ms(w9) - 156.0).abs() < 12.0, "w9 {}", ms(w9));
    }

    #[test]
    fn w3_is_airtime_plus_latency() {
        let cal = JammingCalibration::default();
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
        for len in [10usize, 20, 30, 40] {
            let w = jamming_windows(&cfg, len, &cal);
            assert!((w.w3 - cfg.airtime(len) - 0.09).abs() < 1e-12);
        }
        // Table 1 SF7 20 B: w3 = 156 ms; airtime ≈ 56.6 + 90 = 146.6 ms —
        // within the shape tolerance.
        let w3 = ms(jamming_windows(&cfg, 20, &cal).w3);
        assert!((w3 - 156.0).abs() < 15.0, "{w3}");
    }

    #[test]
    fn effective_window_is_tens_of_ms() {
        // The paper's headline: "a time window of tens of milliseconds ...
        // for implementing stealthy jamming".
        let cal = JammingCalibration::default();
        for (sf, len) in [
            (SpreadingFactor::Sf7, 20usize),
            (SpreadingFactor::Sf8, 30),
            (SpreadingFactor::Sf9, 30),
        ] {
            let w = jamming_windows(&PhyConfig::uplink(sf), len, &cal);
            let eff = ms(w.effective_window());
            assert!(eff > 20.0, "{sf}: effective window only {eff} ms");
        }
    }

    #[test]
    fn windows_ordered() {
        let cal = JammingCalibration::default();
        for sf in [SpreadingFactor::Sf7, SpreadingFactor::Sf9, SpreadingFactor::Sf12] {
            let w = jamming_windows(&PhyConfig::uplink(sf), 25, &cal);
            assert!(w.w1 < w.w2 && w.w2 < w.w3);
        }
    }

    #[test]
    fn w2_never_below_header_end() {
        // Tiny payloads: the 0.67·airtime rule would dip below the header
        // end; the header mechanism floors it.
        let cal = JammingCalibration::default();
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
        let w = jamming_windows(&cfg, 0, &cal);
        assert!(w.w2 >= cfg.header_end_time() - 1e-12);
    }
}
