//! LoRa PHY parameters: spreading factors, bandwidths, coding rates,
//! channel definitions and air-time arithmetic.
//!
//! All defaults follow the paper's experimental configuration: an EU868
//! channel at `fc = 869.75 MHz` with `W = 125 kHz`, SDR sampling at
//! 2.4 Msps, and the SX1276 demodulation SNR floors from the datasheet the
//! paper cites \[3\].

use crate::PhyError;

/// LoRa spreading factor, `S ∈ [6, 12]`.
///
/// The chirp time is `2^S / W` seconds; each symbol carries `S` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpreadingFactor {
    /// SF6 (special short-range mode; implicit header only on real chips).
    Sf6,
    /// SF7 — the paper's Table 1 baseline.
    Sf7,
    /// SF8 — minimum SF that crosses the paper's building floors (§8.1.1).
    Sf8,
    /// SF9.
    Sf9,
    /// SF10.
    Sf10,
    /// SF11 (low-data-rate optimisation applies at 125 kHz).
    Sf11,
    /// SF12 — the paper's default for the building/campus experiments.
    Sf12,
}

impl SpreadingFactor {
    /// All spreading factors in ascending order.
    pub const ALL: [SpreadingFactor; 7] = [
        SpreadingFactor::Sf6,
        SpreadingFactor::Sf7,
        SpreadingFactor::Sf8,
        SpreadingFactor::Sf9,
        SpreadingFactor::Sf10,
        SpreadingFactor::Sf11,
        SpreadingFactor::Sf12,
    ];

    /// The integer value `S`.
    pub const fn value(self) -> u32 {
        match self {
            SpreadingFactor::Sf6 => 6,
            SpreadingFactor::Sf7 => 7,
            SpreadingFactor::Sf8 => 8,
            SpreadingFactor::Sf9 => 9,
            SpreadingFactor::Sf10 => 10,
            SpreadingFactor::Sf11 => 11,
            SpreadingFactor::Sf12 => 12,
        }
    }

    /// Chips (and possible symbol values) per symbol: `2^S`.
    pub const fn chips(self) -> usize {
        1usize << self.value()
    }

    /// Constructs from the integer value.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidConfig`] if `s` is outside `[6, 12]`.
    pub fn from_value(s: u32) -> Result<Self, PhyError> {
        match s {
            6 => Ok(SpreadingFactor::Sf6),
            7 => Ok(SpreadingFactor::Sf7),
            8 => Ok(SpreadingFactor::Sf8),
            9 => Ok(SpreadingFactor::Sf9),
            10 => Ok(SpreadingFactor::Sf10),
            11 => Ok(SpreadingFactor::Sf11),
            12 => Ok(SpreadingFactor::Sf12),
            _ => Err(PhyError::InvalidConfig { reason: "spreading factor must be 6..=12" }),
        }
    }

    /// Minimum SNR (dB) for reliable SX1276 demodulation at this spreading
    /// factor (datasheet values cited by the paper: −7.5 dB at SF7 down to
    /// −20 dB at SF12).
    pub fn demod_floor_db(self) -> f64 {
        match self {
            SpreadingFactor::Sf6 => -5.0,
            SpreadingFactor::Sf7 => -7.5,
            SpreadingFactor::Sf8 => -10.0,
            SpreadingFactor::Sf9 => -12.5,
            SpreadingFactor::Sf10 => -15.0,
            SpreadingFactor::Sf11 => -17.5,
            SpreadingFactor::Sf12 => -20.0,
        }
    }
}

impl std::fmt::Display for SpreadingFactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SF{}", self.value())
    }
}

/// LoRa channel bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bandwidth {
    /// 125 kHz — the EU868 default used throughout the paper.
    Khz125,
    /// 250 kHz.
    Khz250,
    /// 500 kHz.
    Khz500,
}

impl Bandwidth {
    /// Bandwidth in hertz.
    pub const fn hz(self) -> f64 {
        match self {
            Bandwidth::Khz125 => 125_000.0,
            Bandwidth::Khz250 => 250_000.0,
            Bandwidth::Khz500 => 500_000.0,
        }
    }
}

impl std::fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} kHz", self.hz() / 1000.0)
    }
}

/// LoRa forward-error-correction coding rate `4/(4+cr)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodingRate {
    /// 4/5 — single parity bit, error detection only.
    Cr4_5,
    /// 4/6 — two parity bits.
    Cr4_6,
    /// 4/7 — Hamming(7,4), corrects one bit per codeword.
    Cr4_7,
    /// 4/8 — extended Hamming(8,4), corrects one bit and detects two.
    Cr4_8,
}

impl CodingRate {
    /// The `cr` in `4/(4+cr)`, i.e. parity bits per nibble.
    pub const fn parity_bits(self) -> usize {
        match self {
            CodingRate::Cr4_5 => 1,
            CodingRate::Cr4_6 => 2,
            CodingRate::Cr4_7 => 3,
            CodingRate::Cr4_8 => 4,
        }
    }

    /// Codeword length in bits (`4 + cr`).
    pub const fn codeword_bits(self) -> usize {
        4 + self.parity_bits()
    }

    /// Constructs from the number of parity bits (1..=4).
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidConfig`] for values outside `1..=4`.
    pub fn from_parity_bits(cr: usize) -> Result<Self, PhyError> {
        match cr {
            1 => Ok(CodingRate::Cr4_5),
            2 => Ok(CodingRate::Cr4_6),
            3 => Ok(CodingRate::Cr4_7),
            4 => Ok(CodingRate::Cr4_8),
            _ => Err(PhyError::InvalidConfig { reason: "coding rate parity bits must be 1..=4" }),
        }
    }
}

impl std::fmt::Display for CodingRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "4/{}", 4 + self.parity_bits())
    }
}

/// A LoRa RF channel: centre frequency plus bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoRaChannel {
    /// Centre frequency in Hz.
    pub center_hz: f64,
    /// Bandwidth.
    pub bandwidth: Bandwidth,
}

impl LoRaChannel {
    /// The paper's experimental channel: 869.75 MHz, 125 kHz.
    pub const PAPER: LoRaChannel =
        LoRaChannel { center_hz: 869.75e6, bandwidth: Bandwidth::Khz125 };

    /// Converts a frequency offset in Hz to parts-per-million of this
    /// channel's centre frequency — the unit the paper reports FBs in.
    pub fn hz_to_ppm(&self, hz: f64) -> f64 {
        hz / self.center_hz * 1e6
    }

    /// Converts ppm of the centre frequency to Hz.
    pub fn ppm_to_hz(&self, ppm: f64) -> f64 {
        ppm * self.center_hz / 1e6
    }
}

impl Default for LoRaChannel {
    fn default() -> Self {
        LoRaChannel::PAPER
    }
}

/// Complete PHY transmission configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhyConfig {
    /// Spreading factor.
    pub sf: SpreadingFactor,
    /// Coding rate for the payload (the header always uses 4/8).
    pub cr: CodingRate,
    /// RF channel.
    pub channel: LoRaChannel,
    /// Number of preamble up-chirps (LoRaWAN default: 8).
    pub preamble_chirps: usize,
    /// Whether an explicit PHY header is transmitted (LoRaWAN uplinks: yes).
    pub explicit_header: bool,
    /// Whether a payload CRC-16 is appended (LoRaWAN uplinks: yes).
    pub payload_crc: bool,
    /// Low-data-rate optimisation (mandatory for SF11/SF12 at 125 kHz).
    pub low_data_rate: bool,
}

impl PhyConfig {
    /// LoRaWAN-style uplink defaults for a spreading factor on the paper's
    /// channel: CR 4/5, 8 preamble chirps, explicit header, CRC on, LDRO
    /// auto-enabled for SF11/SF12.
    pub fn uplink(sf: SpreadingFactor) -> Self {
        PhyConfig {
            sf,
            cr: CodingRate::Cr4_5,
            channel: LoRaChannel::PAPER,
            preamble_chirps: 8,
            explicit_header: true,
            payload_crc: true,
            low_data_rate: sf >= SpreadingFactor::Sf11,
        }
    }

    /// Chirp (symbol) time `2^S / W` in seconds.
    pub fn chirp_time(&self) -> f64 {
        self.sf.chips() as f64 / self.channel.bandwidth.hz()
    }

    /// Duration of the preamble chirps only (`preamble_chirps * chirp_time`).
    pub fn preamble_time(&self) -> f64 {
        self.preamble_chirps as f64 * self.chirp_time()
    }

    /// Number of payload symbols for `payload_len` bytes, per the standard
    /// LoRa air-time formula (SX1276 datasheet):
    ///
    /// `8 + max(ceil((8L − 4S + 28 + 16·CRC − 20·IH) / (4(S − 2·DE))) · (CR+4), 0)`
    pub fn payload_symbols(&self, payload_len: usize) -> usize {
        let s = self.sf.value() as i64;
        let l = payload_len as i64;
        let crc = if self.payload_crc { 1 } else { 0 };
        let ih = if self.explicit_header { 0 } else { 1 };
        let de = if self.low_data_rate { 1 } else { 0 };
        let num = 8 * l - 4 * s + 28 + 16 * crc - 20 * ih;
        let den = 4 * (s - 2 * de);
        let blocks = if num > 0 { (num + den - 1) / den } else { 0 };
        (8 + blocks * (self.cr.parity_bits() as i64 + 4)) as usize
    }

    /// Total frame air time in seconds, including the preamble (the `+4.25`
    /// accounts for the sync word and SFD quarter chirp).
    pub fn airtime(&self, payload_len: usize) -> f64 {
        (self.preamble_chirps as f64 + 4.25 + self.payload_symbols(payload_len) as f64)
            * self.chirp_time()
    }

    /// Duration from frame start to the end of the PHY header block in
    /// seconds: preamble + sync/SFD (4.25 chirps) + the first 8-symbol
    /// interleaving block that carries the header. Jamming after this point
    /// corrupts only the payload and therefore raises a CRC alert instead of
    /// a silent drop (paper §4.3).
    pub fn header_end_time(&self) -> f64 {
        (self.preamble_chirps as f64 + 4.25 + 8.0) * self.chirp_time()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidConfig`] when preamble length is below the
    /// 6 chirps the receiver needs to lock, or when LDRO is missing where
    /// the LoRaWAN regional parameters mandate it.
    pub fn validate(&self) -> Result<(), PhyError> {
        if self.preamble_chirps < 6 {
            return Err(PhyError::InvalidConfig {
                reason: "preamble must contain at least 6 chirps for receiver lock",
            });
        }
        if self.sf >= SpreadingFactor::Sf11
            && self.channel.bandwidth == Bandwidth::Khz125
            && !self.low_data_rate
        {
            return Err(PhyError::InvalidConfig {
                reason: "low data rate optimisation is mandatory for SF11/SF12 at 125 kHz",
            });
        }
        Ok(())
    }
}

/// EU868 regulatory constants used by the paper's overhead analysis (§3.2).
pub mod eu868 {
    /// Duty-cycle limit in the 868 MHz sub-band (1 %).
    pub const DUTY_CYCLE: f64 = 0.01;
    /// Maximum EIRP for the band, dBm.
    pub const MAX_EIRP_DBM: f64 = 14.0;
    /// The paper's carrier: 869.75 MHz.
    pub const PAPER_CENTER_HZ: f64 = 869.75e6;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf_roundtrip_and_chips() {
        for sf in SpreadingFactor::ALL {
            assert_eq!(SpreadingFactor::from_value(sf.value()).unwrap(), sf);
            assert_eq!(sf.chips(), 1 << sf.value());
        }
        assert!(SpreadingFactor::from_value(5).is_err());
        assert!(SpreadingFactor::from_value(13).is_err());
    }

    #[test]
    fn demod_floor_monotone() {
        for pair in SpreadingFactor::ALL.windows(2) {
            assert!(pair[0].demod_floor_db() > pair[1].demod_floor_db());
        }
        assert_eq!(SpreadingFactor::Sf7.demod_floor_db(), -7.5);
        assert_eq!(SpreadingFactor::Sf12.demod_floor_db(), -20.0);
    }

    #[test]
    fn chirp_time_matches_paper_table1() {
        // Paper Table 1: chirp times 1.024 / 2.048 / 4.096 ms for SF 7/8/9.
        let t7 = PhyConfig::uplink(SpreadingFactor::Sf7).chirp_time();
        let t8 = PhyConfig::uplink(SpreadingFactor::Sf8).chirp_time();
        let t9 = PhyConfig::uplink(SpreadingFactor::Sf9).chirp_time();
        assert!((t7 - 1.024e-3).abs() < 1e-9);
        assert!((t8 - 2.048e-3).abs() < 1e-9);
        assert!((t9 - 4.096e-3).abs() < 1e-9);
    }

    #[test]
    fn preamble_time_matches_paper_table1() {
        // Paper Table 1: preamble times 8.2 / 16.4 / 32.8 ms for SF 7/8/9.
        for (sf, want) in [
            (SpreadingFactor::Sf7, 8.2e-3),
            (SpreadingFactor::Sf8, 16.4e-3),
            (SpreadingFactor::Sf9, 32.8e-3),
        ] {
            let t = PhyConfig::uplink(sf).preamble_time();
            assert!((t - want).abs() < 0.1e-3, "{sf}: {t}");
        }
    }

    #[test]
    fn payload_symbol_count_known_values() {
        // Standard formula check: SF7, CR4/5, CRC on, explicit header, 20 B.
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
        // num = 160 - 28 + 28 + 16 = 176; den = 28 -> ceil = 7 -> 8 + 35 = 43.
        assert_eq!(cfg.payload_symbols(20), 43);
        // SF12 with LDRO: den = 4*(12-2) = 40.
        let cfg12 = PhyConfig::uplink(SpreadingFactor::Sf12);
        assert!(cfg12.low_data_rate);
        // num = 8*30 - 48 + 28 + 16 = 236; ceil(236/40) = 6 -> 8 + 30 = 38.
        assert_eq!(cfg12.payload_symbols(30), 38);
    }

    #[test]
    fn airtime_increases_with_payload_and_sf() {
        let cfg7 = PhyConfig::uplink(SpreadingFactor::Sf7);
        assert!(cfg7.airtime(20) > cfg7.airtime(10));
        let cfg9 = PhyConfig::uplink(SpreadingFactor::Sf9);
        assert!(cfg9.airtime(10) > cfg7.airtime(10));
    }

    #[test]
    fn sf12_30byte_airtime_order_of_magnitude() {
        // The paper's §3.2 example: SF12, 30-byte frames; ~24 frames/hour at
        // 1% duty cycle implies airtime ~1.5 s.
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf12);
        let at = cfg.airtime(30);
        assert!(at > 1.0 && at < 2.5, "airtime {at}");
        let frames_per_hour = (3600.0 * eu868::DUTY_CYCLE / at).floor();
        assert!((20.0..30.0).contains(&frames_per_hour), "{frames_per_hour}");
    }

    #[test]
    fn header_end_before_frame_end() {
        for sf in [SpreadingFactor::Sf7, SpreadingFactor::Sf9, SpreadingFactor::Sf12] {
            let cfg = PhyConfig::uplink(sf);
            assert!(cfg.header_end_time() < cfg.airtime(20));
            assert!(cfg.header_end_time() > cfg.preamble_time());
        }
    }

    #[test]
    fn validation_rules() {
        let mut cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
        assert!(cfg.validate().is_ok());
        cfg.preamble_chirps = 4;
        assert!(cfg.validate().is_err());
        let mut cfg12 = PhyConfig::uplink(SpreadingFactor::Sf12);
        cfg12.low_data_rate = false;
        assert!(cfg12.validate().is_err());
    }

    #[test]
    fn channel_ppm_conversions() {
        let ch = LoRaChannel::PAPER;
        // Paper: 120 Hz is 0.14 ppm of 869.75 MHz.
        assert!((ch.hz_to_ppm(120.0) - 0.138).abs() < 0.005);
        assert!((ch.ppm_to_hz(ch.hz_to_ppm(543.0)) - 543.0).abs() < 1e-9);
    }

    #[test]
    fn coding_rate_accessors() {
        assert_eq!(CodingRate::Cr4_5.codeword_bits(), 5);
        assert_eq!(CodingRate::Cr4_8.codeword_bits(), 8);
        assert_eq!(CodingRate::from_parity_bits(3).unwrap(), CodingRate::Cr4_7);
        assert!(CodingRate::from_parity_bits(0).is_err());
        assert!(CodingRate::from_parity_bits(5).is_err());
    }

    #[test]
    fn display_impls() {
        assert_eq!(SpreadingFactor::Sf7.to_string(), "SF7");
        assert_eq!(Bandwidth::Khz125.to_string(), "125 kHz");
        assert_eq!(CodingRate::Cr4_5.to_string(), "4/5");
    }
}
