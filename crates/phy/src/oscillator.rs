//! Crystal-oscillator models.
//!
//! Every radio in the paper's system — the 16 RN2483 end devices, the
//! RTL-SDR receiver, the two USRP attack stations — derives its carrier
//! from an imperfect crystal. The resulting frequency bias (FB) of one to
//! tens of ppm is the physical trait SoftLoRa's defence measures: a frame
//! replayed through a USRP carries the *replayer's* bias instead of the
//! original device's (paper §7).
//!
//! The model: a per-device constant bias (manufacturing), a slow
//! temperature-dependent wander, and small per-frame jitter. Paper Fig. 13
//! shows device biases of −17 to −25 kHz at 869.75 MHz (≈ 20–29 ppm) that
//! are stable within a frame and drift slowly over time.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A crystal oscillator with manufacturing bias, thermal wander and jitter.
///
/// Cloning snapshots the oscillator *including* its jitter stream, so a
/// clone replays the same per-frame draws — the staged gateway pipeline
/// uses this to keep parallel capture synthesis deterministic.
///
/// # Example
///
/// ```
/// use softlora_phy::oscillator::Oscillator;
///
/// // A typical end-device crystal: −26 ppm bias at 869.75 MHz ≈ −22.6 kHz.
/// let osc = Oscillator::with_bias_ppm(-26.0, 869.75e6, 1);
/// let fb = osc.frequency_bias_hz();
/// assert!(fb < -20_000.0 && fb > -25_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct Oscillator {
    /// Nominal carrier frequency in Hz.
    nominal_hz: f64,
    /// Constant manufacturing bias in ppm.
    bias_ppm: f64,
    /// Temperature sensitivity in ppm per kelvin around the calibration
    /// point (typical AT-cut crystal: ~0.04 ppm/K² near turnover; we use a
    /// linearised coefficient).
    temp_coeff_ppm_per_k: f64,
    /// Current temperature offset from the calibration point, kelvin.
    temp_offset_k: f64,
    /// Per-frame jitter standard deviation in Hz (short-term instability).
    jitter_hz: f64,
    rng: StdRng,
}

impl Oscillator {
    /// Creates an oscillator with the given constant bias (ppm of
    /// `nominal_hz`), no thermal wander and 30 Hz per-frame jitter — matching
    /// the frame-to-frame FB spread of roughly ±100 Hz visible in paper
    /// Fig. 13's error bars.
    pub fn with_bias_ppm(bias_ppm: f64, nominal_hz: f64, seed: u64) -> Self {
        Oscillator {
            nominal_hz,
            bias_ppm,
            temp_coeff_ppm_per_k: 0.0,
            temp_offset_k: 0.0,
            jitter_hz: 30.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Sets the per-frame jitter standard deviation in Hz.
    pub fn with_jitter_hz(mut self, jitter_hz: f64) -> Self {
        self.jitter_hz = jitter_hz;
        self
    }

    /// Enables thermal wander with the given sensitivity (ppm/K).
    pub fn with_temperature_coefficient(mut self, ppm_per_k: f64) -> Self {
        self.temp_coeff_ppm_per_k = ppm_per_k;
        self
    }

    /// Draws a device oscillator like the paper's RN2483 population:
    /// uniformly distributed bias in `[-29, -20]` ppm (Fig. 13 reports
    /// absolute FBs of 17–25 kHz at 869.75 MHz, all negative for their
    /// batch).
    pub fn sample_end_device(nominal_hz: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bias_ppm = -20.0 - 9.0 * rng.random::<f64>();
        Oscillator {
            nominal_hz,
            bias_ppm,
            temp_coeff_ppm_per_k: 0.02,
            temp_offset_k: 0.0,
            jitter_hz: 30.0,
            rng,
        }
    }

    /// Draws a USRP-class oscillator (TCXO): small bias of ±2 ppm. Paper
    /// §7.2 measures the replay chain adding −543 to −743 Hz (−0.62 to
    /// −0.85 ppm).
    pub fn sample_usrp(nominal_hz: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Negative-leaning like the paper's unit: −0.9 to −0.5 ppm.
        let bias_ppm = -0.9 + 0.4 * rng.random::<f64>();
        Oscillator {
            nominal_hz,
            bias_ppm,
            temp_coeff_ppm_per_k: 0.002,
            temp_offset_k: 0.0,
            jitter_hz: 10.0,
            rng,
        }
    }

    /// Draws an RTL-SDR receiver oscillator: consumer crystal, up to
    /// ±30 ppm but stable ("nearly fixed δRx", paper §7.1).
    pub fn sample_rtl_sdr(nominal_hz: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bias_ppm = -5.0 + 10.0 * rng.random::<f64>();
        Oscillator {
            nominal_hz,
            bias_ppm,
            temp_coeff_ppm_per_k: 0.01,
            temp_offset_k: 0.0,
            jitter_hz: 5.0,
            rng,
        }
    }

    /// Nominal carrier frequency in Hz.
    pub fn nominal_hz(&self) -> f64 {
        self.nominal_hz
    }

    /// Constant bias component in ppm.
    pub fn bias_ppm(&self) -> f64 {
        self.bias_ppm
    }

    /// Sets the temperature offset from the calibration point (kelvin),
    /// modelling the run-time conditions paper §7.2 says the FB database
    /// must adapt to.
    pub fn set_temperature_offset(&mut self, kelvin: f64) {
        self.temp_offset_k = kelvin;
    }

    /// Current deterministic frequency bias in Hz (bias + thermal, no
    /// jitter).
    pub fn frequency_bias_hz(&self) -> f64 {
        (self.bias_ppm + self.temp_coeff_ppm_per_k * self.temp_offset_k) * self.nominal_hz / 1e6
    }

    /// Draws the effective frequency bias for one frame: deterministic bias
    /// plus Gaussian per-frame jitter.
    pub fn frame_bias_hz(&mut self) -> f64 {
        self.frequency_bias_hz() + self.jitter_hz * self.gaussian()
    }

    /// Draws a uniformly random carrier phase in `[0, 2π)` — transmitters
    /// and low-end SDR receivers are not phase-locked (paper §6.1.2).
    pub fn random_phase(&mut self) -> f64 {
        2.0 * std::f64::consts::PI * self.rng.random::<f64>()
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FC: f64 = 869.75e6;

    #[test]
    fn bias_conversion() {
        let osc = Oscillator::with_bias_ppm(-26.2, FC, 0);
        // −26.2 ppm of 869.75 MHz ≈ −22.79 kHz (the paper's Fig. 12 example).
        assert!((osc.frequency_bias_hz() + 22_787.5).abs() < 10.0);
    }

    #[test]
    fn frame_bias_jitter_is_small_and_zero_mean() {
        let mut osc = Oscillator::with_bias_ppm(-20.0, FC, 1).with_jitter_hz(30.0);
        let base = osc.frequency_bias_hz();
        let draws: Vec<f64> = (0..400).map(|_| osc.frame_bias_hz()).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - base).abs() < 10.0, "mean {mean} base {base}");
        let max_dev = draws.iter().map(|d| (d - base).abs()).fold(0.0, f64::max);
        assert!(max_dev < 150.0, "max dev {max_dev}");
        assert!(max_dev > 10.0, "jitter looks disabled");
    }

    #[test]
    fn end_device_population_matches_fig13_range() {
        for seed in 0..16 {
            let osc = Oscillator::sample_end_device(FC, seed);
            let fb_khz = osc.frequency_bias_hz() / 1e3;
            assert!(
                (-25.5..=-17.0).contains(&fb_khz),
                "device {seed}: {fb_khz} kHz outside Fig. 13 range"
            );
        }
    }

    #[test]
    fn devices_have_distinct_biases() {
        let biases: Vec<i64> = (0..16)
            .map(|s| Oscillator::sample_end_device(FC, s).frequency_bias_hz() as i64)
            .collect();
        let distinct: std::collections::HashSet<i64> = biases.iter().cloned().collect();
        assert!(distinct.len() >= 14, "{distinct:?}");
    }

    #[test]
    fn usrp_bias_matches_paper_replay_offset() {
        for seed in 0..8 {
            let osc = Oscillator::sample_usrp(FC, seed);
            let fb = osc.frequency_bias_hz();
            // −0.9..−0.5 ppm -> −783..−435 Hz.
            assert!((-800.0..=-400.0).contains(&fb), "seed {seed}: {fb}");
        }
    }

    #[test]
    fn temperature_moves_bias() {
        let mut osc = Oscillator::with_bias_ppm(-20.0, FC, 2).with_temperature_coefficient(0.05);
        let cold = osc.frequency_bias_hz();
        osc.set_temperature_offset(10.0);
        let warm = osc.frequency_bias_hz();
        // 0.05 ppm/K * 10 K = 0.5 ppm ≈ 435 Hz.
        assert!((warm - cold - 434.875).abs() < 1.0, "shift {}", warm - cold);
    }

    #[test]
    fn random_phase_in_domain() {
        let mut osc = Oscillator::with_bias_ppm(0.0, FC, 3);
        for _ in 0..100 {
            let p = osc.random_phase();
            assert!((0.0..2.0 * std::f64::consts::PI).contains(&p));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Oscillator::sample_end_device(FC, 9);
        let mut b = Oscillator::sample_end_device(FC, 9);
        assert_eq!(a.frame_bias_hz(), b.frame_bias_hz());
        assert_eq!(a.random_phase(), b.random_phase());
    }
}
