//! Gray code mapping between symbol values and bit patterns.
//!
//! LoRa maps interleaved codeword bits to chirp symbols through a Gray code
//! so that the most likely demodulation error — the FFT peak landing one bin
//! off — flips only a single bit, which the Hamming stage can then correct.

/// Encodes a binary value to its reflected Gray code.
///
/// ```
/// use softlora_phy::coding::gray_encode;
/// assert_eq!(gray_encode(0), 0);
/// assert_eq!(gray_encode(1), 1);
/// assert_eq!(gray_encode(2), 3);
/// assert_eq!(gray_encode(3), 2);
/// ```
pub fn gray_encode(value: u32) -> u32 {
    value ^ (value >> 1)
}

/// Decodes a reflected Gray code back to binary.
pub fn gray_decode(gray: u32) -> u32 {
    let mut v = gray;
    v ^= v >> 16;
    v ^= v >> 8;
    v ^= v >> 4;
    v ^= v >> 2;
    v ^= v >> 1;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_12_bit_values() {
        for v in 0u32..(1 << 12) {
            assert_eq!(gray_decode(gray_encode(v)), v, "value {v}");
        }
    }

    #[test]
    fn adjacent_values_differ_in_one_bit() {
        for v in 0u32..4095 {
            let a = gray_encode(v);
            let b = gray_encode(v + 1);
            assert_eq!((a ^ b).count_ones(), 1, "values {v},{}", v + 1);
        }
    }

    #[test]
    fn known_sequence() {
        let want = [0u32, 1, 3, 2, 6, 7, 5, 4];
        for (v, &g) in want.iter().enumerate() {
            assert_eq!(gray_encode(v as u32), g);
        }
    }

    #[test]
    fn large_values_round_trip() {
        for v in [0x0000_FFFFu32, 0x1234_5678, 0xFFFF_FFFF, 0x8000_0000] {
            assert_eq!(gray_decode(gray_encode(v)), v);
        }
    }
}
