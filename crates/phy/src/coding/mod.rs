//! The LoRa bit-processing chain: whitening, Hamming FEC, diagonal
//! interleaving and Gray mapping.
//!
//! LoRa processes payload bits through four stages before they become chirp
//! symbols: the payload is **whitened** (XOR with an LFSR sequence),
//! nibbles are **Hamming-encoded** to `4 + CR` bit codewords, codewords are
//! **diagonally interleaved** across blocks of `SF` codewords to spread
//! burst errors over many symbols, and the resulting symbol values are
//! **Gray-demapped** so that a ±1 chip timing error corrupts only one bit.
//! The demodulator inverts each stage.

pub mod gray;
pub mod hamming;
pub mod interleaver;
pub mod whitening;

pub use gray::{gray_decode, gray_encode};
pub use hamming::{hamming_decode, hamming_encode, DecodeOutcome};
pub use interleaver::{deinterleave_block, deinterleave_block_into, interleave_block};
pub use whitening::Whitener;

/// CRC-16/CCITT (polynomial 0x1021, init 0xFFFF) used as the LoRa payload
/// integrity check.
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
    }

    #[test]
    fn crc16_detects_single_bit_flip() {
        let mut data = b"hello lorawan".to_vec();
        let orig = crc16_ccitt(&data);
        data[3] ^= 0x10;
        assert_ne!(crc16_ccitt(&data), orig);
    }

    #[test]
    fn crc16_empty() {
        assert_eq!(crc16_ccitt(&[]), 0xFFFF);
    }
}
