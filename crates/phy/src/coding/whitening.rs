//! Payload whitening.
//!
//! LoRa XORs payload bytes with a pseudo-random sequence from a linear
//! feedback shift register so that long runs of identical bits still produce
//! a spectrally flat chirp stream. Whitening is an involution: applying the
//! same sequence twice restores the original data.

/// LFSR-based whitening sequence generator (x^8 + x^6 + x^5 + x^4 + 1,
/// initial state 0xFF — the polynomial commonly reported for SX127x
/// whitening).
#[derive(Debug, Clone)]
pub struct Whitener {
    state: u8,
}

impl Default for Whitener {
    fn default() -> Self {
        Self::new()
    }
}

impl Whitener {
    /// Creates a whitener in its initial state.
    pub fn new() -> Self {
        Whitener { state: 0xFF }
    }

    /// Returns the next whitening byte and advances the LFSR.
    pub fn next_byte(&mut self) -> u8 {
        let out = self.state;
        // Galois LFSR step, 8 bit-steps per byte.
        for _ in 0..8 {
            let fb =
                ((self.state >> 7) ^ (self.state >> 5) ^ (self.state >> 4) ^ (self.state >> 3)) & 1;
            self.state = (self.state << 1) | fb;
        }
        out
    }

    /// Whitens (or de-whitens) `data` in place, starting from the current
    /// LFSR state.
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            *byte ^= self.next_byte();
        }
    }

    /// Convenience: whiten a copy of `data` from a fresh initial state.
    pub fn whiten(data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        Whitener::new().apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitening_is_involution() {
        let data: Vec<u8> = (0..=255).collect();
        let once = Whitener::whiten(&data);
        let twice = Whitener::whiten(&once);
        assert_eq!(twice, data);
        assert_ne!(once, data);
    }

    #[test]
    fn sequence_is_deterministic() {
        let mut a = Whitener::new();
        let mut b = Whitener::new();
        for _ in 0..64 {
            assert_eq!(a.next_byte(), b.next_byte());
        }
    }

    #[test]
    fn sequence_has_long_period() {
        // The LFSR must not get stuck or cycle quickly; check the first 200
        // bytes contain many distinct values.
        let mut w = Whitener::new();
        let seq: Vec<u8> = (0..200).map(|_| w.next_byte()).collect();
        let distinct: std::collections::HashSet<u8> = seq.iter().cloned().collect();
        assert!(distinct.len() > 100, "only {} distinct bytes", distinct.len());
    }

    #[test]
    fn whitened_zeros_are_balanced() {
        // Whitening all-zero payloads should produce roughly half ones.
        let zeros = vec![0u8; 256];
        let white = Whitener::whiten(&zeros);
        let ones: u32 = white.iter().map(|b| b.count_ones()).sum();
        let total = 256 * 8;
        let frac = ones as f64 / total as f64;
        assert!((0.40..0.60).contains(&frac), "ones fraction {frac}");
    }

    #[test]
    fn apply_continues_state() {
        // Applying in two chunks must equal applying in one.
        let data: Vec<u8> = (0..64).map(|i| (i * 7) as u8).collect();
        let mut whole = data.clone();
        Whitener::new().apply(&mut whole);
        let mut split = data.clone();
        let mut w = Whitener::new();
        w.apply(&mut split[..30]);
        w.apply(&mut split[30..]);
        assert_eq!(whole, split);
    }
}
