//! Diagonal block interleaver.
//!
//! LoRa arranges a block of `ppm` codewords (each `4 + CR` bits) into a
//! matrix and reads it out diagonally to form `4 + CR` chirp symbols of
//! `ppm` bits each. A burst error that corrupts one symbol therefore
//! touches only one bit of each codeword — which the Hamming stage can
//! correct. `ppm` is `SF` normally, or `SF − 2` for the header block and
//! in low-data-rate mode.

use crate::PhyError;

/// Interleaves a block of `ppm` codewords of `cw_bits` bits each into
/// `cw_bits` symbol values of `ppm` bits each.
///
/// Output symbol `j`, bit `i` is codeword `(i + j) mod ppm`, bit `j`
/// (the classic LoRa diagonal pattern).
///
/// # Errors
///
/// Returns [`PhyError::InvalidConfig`] unless `codewords.len() == ppm`,
/// `0 < ppm <= 16` and `0 < cw_bits <= 8`.
pub fn interleave_block(
    codewords: &[u8],
    ppm: usize,
    cw_bits: usize,
) -> Result<Vec<u16>, PhyError> {
    validate(codewords.len(), ppm, cw_bits)?;
    let mut symbols = vec![0u16; cw_bits];
    for (j, sym) in symbols.iter_mut().enumerate() {
        for i in 0..ppm {
            let row = (i + j) % ppm;
            let bit = (codewords[row] >> j) & 1;
            *sym |= (bit as u16) << i;
        }
    }
    Ok(symbols)
}

/// Inverts [`interleave_block`].
///
/// # Errors
///
/// Returns [`PhyError::InvalidConfig`] unless `symbols.len() == cw_bits` and
/// the dimension constraints of [`interleave_block`] hold.
pub fn deinterleave_block(
    symbols: &[u16],
    ppm: usize,
    cw_bits: usize,
) -> Result<Vec<u8>, PhyError> {
    let mut codewords = Vec::with_capacity(ppm);
    deinterleave_block_into(symbols, ppm, cw_bits, &mut codewords)?;
    Ok(codewords)
}

/// [`deinterleave_block`] into a caller-owned buffer (`out` is cleared and
/// refilled; capacity reused across blocks).
///
/// # Errors
///
/// Same as [`deinterleave_block`].
pub fn deinterleave_block_into(
    symbols: &[u16],
    ppm: usize,
    cw_bits: usize,
    out: &mut Vec<u8>,
) -> Result<(), PhyError> {
    if symbols.len() != cw_bits {
        return Err(PhyError::InvalidConfig { reason: "symbol count must equal codeword bits" });
    }
    validate(ppm, ppm, cw_bits)?;
    out.clear();
    out.resize(ppm, 0u8);
    for (j, &sym) in symbols.iter().enumerate() {
        for i in 0..ppm {
            let row = (i + j) % ppm;
            let bit = ((sym >> i) & 1) as u8;
            out[row] |= bit << j;
        }
    }
    Ok(())
}

fn validate(n_codewords: usize, ppm: usize, cw_bits: usize) -> Result<(), PhyError> {
    if ppm == 0 || ppm > 16 {
        return Err(PhyError::InvalidConfig { reason: "ppm must be in 1..=16" });
    }
    if cw_bits == 0 || cw_bits > 8 {
        return Err(PhyError::InvalidConfig { reason: "codeword bits must be in 1..=8" });
    }
    if n_codewords != ppm {
        return Err(PhyError::InvalidConfig { reason: "codeword count must equal ppm" });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exhaustive_small() {
        // ppm=4, cw_bits=5: iterate a spread of blocks.
        for seed in 0u32..200 {
            let codewords: Vec<u8> =
                (0..4).map(|i| ((seed.wrapping_mul(31).wrapping_add(i * 97)) % 32) as u8).collect();
            let symbols = interleave_block(&codewords, 4, 5).unwrap();
            let back = deinterleave_block(&symbols, 4, 5).unwrap();
            assert_eq!(back, codewords);
        }
    }

    #[test]
    fn round_trip_lora_dimensions() {
        // All realistic (ppm, cw_bits) combinations.
        for ppm in [5usize, 6, 7, 8, 9, 10, 11, 12] {
            for cw_bits in [5usize, 6, 7, 8] {
                let codewords: Vec<u8> =
                    (0..ppm).map(|i| ((i * 37 + 11) % (1 << cw_bits.min(8))) as u8).collect();
                let symbols = interleave_block(&codewords, ppm, cw_bits).unwrap();
                assert_eq!(symbols.len(), cw_bits);
                for &s in &symbols {
                    assert!(s < (1 << ppm), "symbol {s} exceeds {ppm} bits");
                }
                let back = deinterleave_block(&symbols, ppm, cw_bits).unwrap();
                assert_eq!(back, codewords, "ppm {ppm} cw {cw_bits}");
            }
        }
    }

    #[test]
    fn one_corrupted_symbol_touches_each_codeword_once() {
        let ppm = 7;
        let cw_bits = 8;
        let codewords: Vec<u8> = (0..ppm).map(|i| (i * 13 + 5) as u8).collect();
        let mut symbols = interleave_block(&codewords, ppm, cw_bits).unwrap();
        // Corrupt every bit of one symbol (a fully jammed chirp).
        symbols[3] ^= (1 << ppm) - 1;
        let back = deinterleave_block(&symbols, ppm, cw_bits).unwrap();
        for (orig, got) in codewords.iter().zip(back.iter()) {
            let flipped = (orig ^ got).count_ones();
            assert_eq!(flipped, 1, "codeword damaged in {flipped} bits");
        }
    }

    #[test]
    fn validation() {
        let cw = vec![0u8; 4];
        assert!(interleave_block(&cw, 5, 5).is_err()); // count mismatch
        assert!(interleave_block(&cw, 0, 5).is_err());
        assert!(interleave_block(&cw, 4, 0).is_err());
        assert!(interleave_block(&cw, 4, 9).is_err());
        assert!(deinterleave_block(&[0u16; 3], 4, 5).is_err()); // wrong symbol count
    }

    #[test]
    fn interleave_is_a_permutation_of_bits() {
        let ppm = 8;
        let cw_bits = 6;
        let codewords: Vec<u8> = vec![0x3F, 0, 0, 0, 0, 0, 0, 0];
        let symbols = interleave_block(&codewords, ppm, cw_bits).unwrap();
        let total_bits: u32 = symbols.iter().map(|s| s.count_ones()).sum();
        assert_eq!(total_bits, 6); // all six set bits survive, just moved
    }
}
