//! Hamming forward error correction over nibbles, per LoRa coding rate.
//!
//! Each 4-bit nibble becomes a `4 + CR` bit codeword:
//!
//! * CR 4/5 — one overall parity bit: detects (does not correct) odd errors;
//! * CR 4/6 — two parity bits: detects most 1–2 bit errors;
//! * CR 4/7 — Hamming(7,4): corrects any single-bit error;
//! * CR 4/8 — extended Hamming(8,4): corrects single errors and detects
//!   doubles.
//!
//! Bit order within a codeword: data bits `d3 d2 d1 d0` in the low nibble,
//! parity bits above them.

use crate::params::CodingRate;

/// Outcome of decoding one codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// Codeword was consistent; no errors detected.
    Clean,
    /// A single-bit error was detected and corrected (CR 4/7, 4/8 only).
    Corrected,
    /// An uncorrectable error was detected; the returned nibble is a best
    /// guess and the caller should treat the block as damaged.
    Detected,
}

/// Parity bit positions for Hamming(7,4): p1 covers d0,d1,d3; p2 covers
/// d0,d2,d3; p3 covers d1,d2,d3 (classic G matrix).
fn hamming74_parities(d: u8) -> (u8, u8, u8) {
    let d0 = d & 1;
    let d1 = (d >> 1) & 1;
    let d2 = (d >> 2) & 1;
    let d3 = (d >> 3) & 1;
    (d0 ^ d1 ^ d3, d0 ^ d2 ^ d3, d1 ^ d2 ^ d3)
}

/// Encodes a nibble (low 4 bits of `data`) to a codeword of
/// `cr.codeword_bits()` bits, returned in the low bits of a `u8`.
///
/// ```
/// use softlora_phy::coding::hamming_encode;
/// use softlora_phy::CodingRate;
/// let cw = hamming_encode(0b1010, CodingRate::Cr4_8);
/// assert_eq!(cw & 0x0F, 0b1010); // systematic: data in low nibble
/// ```
pub fn hamming_encode(data: u8, cr: CodingRate) -> u8 {
    let d = data & 0x0F;
    match cr {
        CodingRate::Cr4_5 => {
            let p = (d.count_ones() & 1) as u8;
            d | (p << 4)
        }
        CodingRate::Cr4_6 => {
            let (p1, p2, _) = hamming74_parities(d);
            d | (p1 << 4) | (p2 << 5)
        }
        CodingRate::Cr4_7 => {
            let (p1, p2, p3) = hamming74_parities(d);
            d | (p1 << 4) | (p2 << 5) | (p3 << 6)
        }
        CodingRate::Cr4_8 => {
            let (p1, p2, p3) = hamming74_parities(d);
            let partial = d | (p1 << 4) | (p2 << 5) | (p3 << 6);
            let overall = (partial.count_ones() & 1) as u8;
            partial | (overall << 7)
        }
    }
}

/// Decodes a codeword, returning the recovered nibble and the outcome.
pub fn hamming_decode(codeword: u8, cr: CodingRate) -> (u8, DecodeOutcome) {
    let d = codeword & 0x0F;
    match cr {
        CodingRate::Cr4_5 => {
            let p = (codeword >> 4) & 1;
            if (d.count_ones() & 1) as u8 == p {
                (d, DecodeOutcome::Clean)
            } else {
                (d, DecodeOutcome::Detected)
            }
        }
        CodingRate::Cr4_6 => {
            let (p1, p2, _) = hamming74_parities(d);
            let r1 = (codeword >> 4) & 1;
            let r2 = (codeword >> 5) & 1;
            if p1 == r1 && p2 == r2 {
                (d, DecodeOutcome::Clean)
            } else {
                (d, DecodeOutcome::Detected)
            }
        }
        CodingRate::Cr4_7 => decode_hamming74(codeword),
        CodingRate::Cr4_8 => {
            let overall_received = (codeword >> 7) & 1;
            let low7 = codeword & 0x7F;
            let overall_computed = (low7.count_ones() & 1) as u8;
            let (nibble, outcome) = decode_hamming74(low7);
            match (outcome, overall_received == overall_computed) {
                // Syndrome clean + parity clean: no error.
                (DecodeOutcome::Clean, true) => (nibble, DecodeOutcome::Clean),
                // Syndrome clean + parity bad: the error is in the overall
                // parity bit itself; data intact.
                (DecodeOutcome::Clean, false) => (nibble, DecodeOutcome::Corrected),
                // Syndrome set + parity bad: single error, corrected.
                (DecodeOutcome::Corrected, false) => (nibble, DecodeOutcome::Corrected),
                // Syndrome set + parity clean: double error, uncorrectable.
                (DecodeOutcome::Corrected, true) => (nibble, DecodeOutcome::Detected),
                (DecodeOutcome::Detected, _) => (nibble, DecodeOutcome::Detected),
            }
        }
    }
}

/// Hamming(7,4) syndrome decode with single-error correction.
fn decode_hamming74(codeword: u8) -> (u8, DecodeOutcome) {
    let d = codeword & 0x0F;
    let (p1, p2, p3) = hamming74_parities(d);
    let r1 = (codeword >> 4) & 1;
    let r2 = (codeword >> 5) & 1;
    let r3 = (codeword >> 6) & 1;
    let s1 = p1 ^ r1;
    let s2 = p2 ^ r2;
    let s3 = p3 ^ r3;
    let syndrome = s1 | (s2 << 1) | (s3 << 2);
    if syndrome == 0 {
        return (d, DecodeOutcome::Clean);
    }
    // Map syndrome to flipped bit. Data bits: d0 in {p1,p2} -> s=011;
    // d1 in {p1,p3} -> s=101; d2 in {p2,p3} -> s=110; d3 in all -> s=111.
    // Single parity-bit errors give syndromes 001/010/100.
    let corrected = match syndrome {
        0b011 => d ^ 0b0001,
        0b101 => d ^ 0b0010,
        0b110 => d ^ 0b0100,
        0b111 => d ^ 0b1000,
        _ => d, // parity bit itself was hit; data is fine
    };
    (corrected, DecodeOutcome::Corrected)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_CR: [CodingRate; 4] =
        [CodingRate::Cr4_5, CodingRate::Cr4_6, CodingRate::Cr4_7, CodingRate::Cr4_8];

    #[test]
    fn round_trip_clean_all_nibbles_all_rates() {
        for cr in ALL_CR {
            for nibble in 0u8..16 {
                let cw = hamming_encode(nibble, cr);
                let (out, outcome) = hamming_decode(cw, cr);
                assert_eq!(out, nibble, "{cr} nibble {nibble}");
                assert_eq!(outcome, DecodeOutcome::Clean);
                // Codeword fits in its bit budget.
                assert_eq!((cw as u16) >> cr.codeword_bits(), 0);
            }
        }
    }

    #[test]
    fn cr47_corrects_every_single_bit_error() {
        for nibble in 0u8..16 {
            let cw = hamming_encode(nibble, CodingRate::Cr4_7);
            for bit in 0..7 {
                let corrupted = cw ^ (1 << bit);
                let (out, outcome) = hamming_decode(corrupted, CodingRate::Cr4_7);
                assert_eq!(out, nibble, "nibble {nibble} bit {bit}");
                assert_eq!(outcome, DecodeOutcome::Corrected);
            }
        }
    }

    #[test]
    fn cr48_corrects_singles_detects_doubles() {
        for nibble in 0u8..16 {
            let cw = hamming_encode(nibble, CodingRate::Cr4_8);
            for bit in 0..8 {
                let corrupted = cw ^ (1 << bit);
                let (out, outcome) = hamming_decode(corrupted, CodingRate::Cr4_8);
                assert_eq!(out, nibble, "single error nibble {nibble} bit {bit}");
                assert_eq!(outcome, DecodeOutcome::Corrected);
            }
            for b1 in 0..8 {
                for b2 in (b1 + 1)..8 {
                    let corrupted = cw ^ (1 << b1) ^ (1 << b2);
                    let (_, outcome) = hamming_decode(corrupted, CodingRate::Cr4_8);
                    assert_eq!(
                        outcome,
                        DecodeOutcome::Detected,
                        "double error nibble {nibble} bits {b1},{b2}"
                    );
                }
            }
        }
    }

    #[test]
    fn cr45_detects_single_errors() {
        for nibble in 0u8..16 {
            let cw = hamming_encode(nibble, CodingRate::Cr4_5);
            for bit in 0..5 {
                let (_, outcome) = hamming_decode(cw ^ (1 << bit), CodingRate::Cr4_5);
                assert_eq!(outcome, DecodeOutcome::Detected);
            }
        }
    }

    #[test]
    fn cr46_detects_single_errors_in_covered_bits() {
        for nibble in 0u8..16 {
            let cw = hamming_encode(nibble, CodingRate::Cr4_6);
            // Parity bits and the data bits each parity covers.
            let mut detected = 0;
            for bit in 0..6 {
                let (_, outcome) = hamming_decode(cw ^ (1 << bit), CodingRate::Cr4_6);
                if outcome == DecodeOutcome::Detected {
                    detected += 1;
                }
            }
            // d1^d2 swap is invisible to (p1,p2)? p1 covers d0,d1,d3; p2
            // covers d0,d2,d3; a flip of any single bit flips at least one
            // parity, so all 6 must be detected.
            assert_eq!(detected, 6, "nibble {nibble}");
        }
    }

    #[test]
    fn codewords_are_systematic() {
        for cr in ALL_CR {
            for nibble in 0u8..16 {
                assert_eq!(hamming_encode(nibble, cr) & 0x0F, nibble);
            }
        }
    }

    #[test]
    fn distinct_nibbles_distinct_codewords() {
        for cr in ALL_CR {
            let mut seen = std::collections::HashSet::new();
            for nibble in 0u8..16 {
                assert!(seen.insert(hamming_encode(nibble, cr)));
            }
        }
    }

    #[test]
    fn hamming74_min_distance_is_three() {
        let words: Vec<u8> = (0u8..16).map(|n| hamming_encode(n, CodingRate::Cr4_7)).collect();
        for i in 0..16 {
            for j in (i + 1)..16 {
                let dist = (words[i] ^ words[j]).count_ones();
                assert!(dist >= 3, "{i} vs {j}: distance {dist}");
            }
        }
    }

    #[test]
    fn hamming84_min_distance_is_four() {
        let words: Vec<u8> = (0u8..16).map(|n| hamming_encode(n, CodingRate::Cr4_8)).collect();
        for i in 0..16 {
            for j in (i + 1)..16 {
                let dist = (words[i] ^ words[j]).count_ones();
                assert!(dist >= 4, "{i} vs {j}: distance {dist}");
            }
        }
    }
}
