//! Noise generators for channel and SDR-capture simulation.
//!
//! Paper Fig. 14 evaluates FB estimation under two noise types: synthetic
//! zero-mean Gaussian noise and "real noise traces captured using an SDR
//! receiver in a multistory building". The real traces are not published, so
//! [`RealNoiseEmulator`] synthesises their qualitative character: coloured
//! (low-frequency-weighted) background plus sporadic wideband impulse bursts
//! from other ISM-band users, with a small DC offset ripple typical of
//! RTL-SDR front-ends.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use softlora_dsp::Complex;

/// Source of complex baseband noise samples.
pub trait NoiseSource {
    /// Generates `n` noise samples with the configured statistics.
    fn generate(&mut self, n: usize) -> Vec<Complex>;

    /// Mean power `E[|z|²]` this source produces (used to calibrate SNR).
    fn mean_power(&self) -> f64;

    /// Adds `z.len()` samples from this source to `z` in place, drawing
    /// exactly the sequence `generate(z.len())` would. Sources override
    /// this to skip the intermediate allocation (the per-frame capture
    /// path relies on that).
    fn add_to(&mut self, z: &mut [Complex]) {
        let noise = self.generate(z.len());
        for (s, n) in z.iter_mut().zip(noise) {
            *s += n;
        }
    }
}

/// Circularly symmetric complex white Gaussian noise.
#[derive(Debug)]
pub struct GaussianNoise {
    /// Per-component standard deviation.
    sigma: f64,
    rng: StdRng,
}

impl GaussianNoise {
    /// Creates a generator whose samples have mean power
    /// `2·sigma²` (`sigma` per I/Q component).
    pub fn new(sigma: f64, seed: u64) -> Self {
        GaussianNoise { sigma, rng: StdRng::seed_from_u64(seed) }
    }

    /// Creates a generator with the given total mean power `E[|z|²]`.
    pub fn with_power(power: f64, seed: u64) -> Self {
        Self::new((power / 2.0).max(0.0).sqrt(), seed)
    }

    fn gaussian(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl NoiseSource for GaussianNoise {
    fn generate(&mut self, n: usize) -> Vec<Complex> {
        (0..n)
            .map(|_| {
                Complex::new(
                    self.sigma * Self::gaussian(&mut self.rng),
                    self.sigma * Self::gaussian(&mut self.rng),
                )
            })
            .collect()
    }

    fn add_to(&mut self, z: &mut [Complex]) {
        // Same draw order as `generate`, added in place.
        for s in z.iter_mut() {
            *s += Complex::new(
                self.sigma * Self::gaussian(&mut self.rng),
                self.sigma * Self::gaussian(&mut self.rng),
            );
        }
    }

    fn mean_power(&self) -> f64 {
        2.0 * self.sigma * self.sigma
    }
}

/// Emulation of the paper's "real noise" captures: AR(1)-coloured Gaussian
/// background, Bernoulli impulse bursts, and slow DC ripple.
#[derive(Debug)]
pub struct RealNoiseEmulator {
    sigma: f64,
    /// AR(1) colouring coefficient in `[0, 1)`; higher = more low-frequency
    /// energy.
    rho: f64,
    /// Probability that a given sample starts an impulse burst.
    burst_prob: f64,
    /// Burst length in samples.
    burst_len: usize,
    /// Burst amplitude multiplier over sigma.
    burst_gain: f64,
    /// DC ripple amplitude relative to sigma.
    dc_ripple: f64,
    state_i: f64,
    state_q: f64,
    rng: StdRng,
    phase: f64,
}

impl RealNoiseEmulator {
    /// Creates an emulator with building-like defaults.
    pub fn new(sigma: f64, seed: u64) -> Self {
        RealNoiseEmulator {
            sigma,
            // Moderate colouring: AR(1) density at DC is (1+rho)/(1-rho) x
            // the band average; the FB search band sits near DC after
            // dechirping, so strong colouring would silently worsen the
            // effective in-band SNR well beyond the nominal figure.
            rho: 0.35,
            burst_prob: 1e-4,
            burst_len: 48,
            burst_gain: 5.0,
            dc_ripple: 0.15,
            state_i: 0.0,
            state_q: 0.0,
            rng: StdRng::seed_from_u64(seed),
            phase: 0.0,
        }
    }

    /// Creates an emulator with the given total mean power.
    pub fn with_power(power: f64, seed: u64) -> Self {
        // Bursts and colouring raise the power slightly above 2·sigma²;
        // the correction factor is the analytic mean-power ratio measured
        // in `mean_power`.
        let base = Self::new(1.0, seed);
        let scale = (power / base.mean_power()).sqrt();
        Self::new(scale, seed)
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl NoiseSource for RealNoiseEmulator {
    fn generate(&mut self, n: usize) -> Vec<Complex> {
        let innovation = self.sigma * (1.0 - self.rho * self.rho).sqrt();
        let mut out = Vec::with_capacity(n);
        let mut burst_remaining = 0usize;
        for _ in 0..n {
            // Coloured background.
            let gi = self.gaussian();
            let gq = self.gaussian();
            self.state_i = self.rho * self.state_i + innovation * gi;
            self.state_q = self.rho * self.state_q + innovation * gq;
            let mut z = Complex::new(self.state_i, self.state_q);
            // Impulse bursts.
            if burst_remaining == 0 && self.rng.random::<f64>() < self.burst_prob {
                burst_remaining = self.burst_len;
            }
            if burst_remaining > 0 {
                burst_remaining -= 1;
                z += Complex::new(
                    self.burst_gain * self.sigma * self.gaussian(),
                    self.burst_gain * self.sigma * self.gaussian(),
                );
            }
            // Slow DC ripple.
            self.phase += 1e-4;
            z += Complex::new(self.dc_ripple * self.sigma * self.phase.sin(), 0.0);
            out.push(z);
        }
        out
    }

    fn mean_power(&self) -> f64 {
        // Background: 2·sigma² (AR(1) with matched stationary variance).
        // Bursts: duty = burst_prob·burst_len adds 2·(gain·sigma)²·duty.
        // Ripple: dc_ripple²·sigma²/2.
        let duty = self.burst_prob * self.burst_len as f64;
        2.0 * self.sigma * self.sigma * (1.0 + duty * self.burst_gain * self.burst_gain)
            + self.dc_ripple * self.dc_ripple * self.sigma * self.sigma / 2.0
    }
}

/// Adds noise from `source` to `signal` in place, scaled so the resulting
/// SNR (signal mean power over noise mean power) equals `snr_db`.
///
/// Returns the actual noise power used.
pub fn add_noise_at_snr<S: NoiseSource>(
    signal: &mut [Complex],
    source: &mut S,
    snr_db: f64,
) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    let sig_power = signal.iter().map(|z| z.norm_sqr()).sum::<f64>() / signal.len() as f64;
    let target_noise_power = sig_power / 10f64.powf(snr_db / 10.0);
    let noise = source.generate(signal.len());
    let actual = noise.iter().map(|z| z.norm_sqr()).sum::<f64>() / noise.len() as f64;
    let scale = if actual > 0.0 { (target_noise_power / actual).sqrt() } else { 0.0 };
    for (s, nz) in signal.iter_mut().zip(noise.iter()) {
        *s += nz.scale(scale);
    }
    target_noise_power
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_power_calibrated() {
        let mut g = GaussianNoise::with_power(0.5, 1);
        let samples = g.generate(200_000);
        let p = samples.iter().map(|z| z.norm_sqr()).sum::<f64>() / samples.len() as f64;
        assert!((p - 0.5).abs() < 0.02, "power {p}");
        assert!((g.mean_power() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gaussian_components_uncorrelated() {
        let mut g = GaussianNoise::new(1.0, 2);
        let samples = g.generate(100_000);
        let corr: f64 = samples.iter().map(|z| z.re * z.im).sum::<f64>() / samples.len() as f64;
        assert!(corr.abs() < 0.02, "I/Q correlation {corr}");
    }

    #[test]
    fn real_noise_power_close_to_model() {
        let mut r = RealNoiseEmulator::new(1.0, 3);
        let predicted = r.mean_power();
        let samples = r.generate(400_000);
        let p = samples.iter().map(|z| z.norm_sqr()).sum::<f64>() / samples.len() as f64;
        assert!((p - predicted).abs() / predicted < 0.25, "measured {p} predicted {predicted}");
    }

    #[test]
    fn real_noise_is_coloured() {
        // Lag-1 autocorrelation should be near rho, unlike white noise.
        let mut r = RealNoiseEmulator::new(1.0, 4);
        let samples = r.generate(100_000);
        let re: Vec<f64> = samples.iter().map(|z| z.re).collect();
        let mean = re.iter().sum::<f64>() / re.len() as f64;
        let var: f64 = re.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / re.len() as f64;
        let lag1: f64 = re.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum::<f64>()
            / (re.len() - 1) as f64;
        let rho_hat = lag1 / var;
        assert!(rho_hat > 0.15, "autocorrelation {rho_hat} looks white");
    }

    #[test]
    fn real_noise_has_heavier_tail_than_gaussian() {
        let mut g = GaussianNoise::new(1.0, 5);
        let mut r = RealNoiseEmulator::new(1.0, 5);
        let gs = g.generate(200_000);
        let rs = r.generate(200_000);
        let kurt = |v: &[Complex]| -> f64 {
            let xs: Vec<f64> = v.iter().map(|z| z.re).collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
            let m4 = xs.iter().map(|x| (x - m).powi(4)).sum::<f64>() / xs.len() as f64;
            m4 / (var * var)
        };
        assert!(kurt(&rs) > kurt(&gs) + 0.3, "real {} gauss {}", kurt(&rs), kurt(&gs));
    }

    #[test]
    fn add_noise_reaches_target_snr() {
        for snr in [-20.0, -10.0, 0.0, 10.0] {
            let mut signal: Vec<Complex> =
                (0..50_000).map(|i| Complex::cis(0.01 * i as f64)).collect();
            let clean = signal.clone();
            let mut src = GaussianNoise::new(1.0, 6);
            add_noise_at_snr(&mut signal, &mut src, snr);
            let noise_p: f64 =
                signal.iter().zip(clean.iter()).map(|(a, b)| (*a - *b).norm_sqr()).sum::<f64>()
                    / signal.len() as f64;
            let got = 10.0 * (1.0 / noise_p).log10();
            assert!((got - snr).abs() < 0.5, "target {snr} got {got}");
        }
    }

    #[test]
    fn add_noise_empty_signal_noop() {
        let mut empty: Vec<Complex> = Vec::new();
        let mut src = GaussianNoise::new(1.0, 7);
        assert_eq!(add_noise_at_snr(&mut empty, &mut src, 0.0), 0.0);
    }

    #[test]
    fn deterministic_with_seed() {
        let a = GaussianNoise::new(1.0, 8).generate(16);
        let b = GaussianNoise::new(1.0, 8).generate(16);
        assert_eq!(a, b);
    }
}
