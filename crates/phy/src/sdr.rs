//! SDR receiver front-end model (paper Fig. 5, §5.2).
//!
//! The RTL-SDR mixes the RF input with two locally generated orthogonal
//! carriers at `fc + δRx` with phase `θRx`, low-pass filters the products,
//! and samples I and Q at 2.4 Msps with 8-bit ADCs. In complex baseband the
//! whole analog chain reduces to multiplying the transmitted baseband (which
//! already carries the transmitter's bias `δTx` and phase `θTx`) by
//! `exp(−j(2π·δRx·t + θRx))`, so the captured trace has net bias
//! `δ = δTx − δRx` and net phase `θ = θTx − θRx` — exactly the paper's
//! Eq. (5).

use crate::chirp::{ChirpDirection, ChirpGenerator};
use crate::oscillator::Oscillator;
use crate::params::PhyConfig;
use crate::PhyError;
use softlora_dsp::Complex;

/// The RTL-SDR's nominal sample rate (paper §5.1: "it can operate at
/// 2.4 Msps reliably for extended time periods").
pub const RTL_SDR_SAMPLE_RATE: f64 = 2.4e6;

/// An I/Q capture produced by the SDR receiver.
#[derive(Debug, Clone)]
pub struct IqCapture {
    /// In-phase samples.
    pub i: Vec<f64>,
    /// Quadrature samples.
    pub q: Vec<f64>,
    /// Sample rate in Hz.
    pub sample_rate: f64,
    /// Ground-truth sample index of the signal onset (for evaluating
    /// timestamping error; a real capture does not know this).
    pub true_onset: usize,
}

impl IqCapture {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.i.len()
    }

    /// Whether the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.i.is_empty()
    }

    /// Sampling interval in seconds (0.42 µs at 2.4 Msps).
    pub fn dt(&self) -> f64 {
        1.0 / self.sample_rate
    }

    /// View as complex samples `I + jQ`.
    pub fn to_complex(&self) -> Vec<Complex> {
        self.i.iter().zip(self.q.iter()).map(|(&i, &q)| Complex::new(i, q)).collect()
    }

    /// [`IqCapture::to_complex`] into a caller-owned buffer (`out` is
    /// cleared and refilled; capacity reused across captures).
    pub fn to_complex_into(&self, out: &mut Vec<Complex>) {
        out.clear();
        out.extend(self.i.iter().zip(self.q.iter()).map(|(&i, &q)| Complex::new(i, q)));
    }

    /// Builds a capture from complex samples.
    pub fn from_complex(z: &[Complex], sample_rate: f64, true_onset: usize) -> Self {
        IqCapture {
            i: z.iter().map(|c| c.re).collect(),
            q: z.iter().map(|c| c.im).collect(),
            sample_rate,
            true_onset,
        }
    }
}

/// Model of the RTL-SDR receive chain.
#[derive(Debug, Clone)]
pub struct SdrReceiver {
    oscillator: Oscillator,
    sample_rate: f64,
    /// ADC resolution in bits; `None` disables quantisation.
    adc_bits: Option<u32>,
    /// Full-scale amplitude the ADC clips at.
    adc_full_scale: f64,
    /// Fixed receiver mixing phase drawn per capture; see
    /// [`SdrReceiver::capture_chirps`].
    next_phase: Option<f64>,
}

impl SdrReceiver {
    /// Creates a receiver with the given local oscillator, sampling at
    /// 2.4 Msps with 8-bit quantisation (RTL2832U defaults).
    pub fn new(oscillator: Oscillator) -> Self {
        SdrReceiver {
            oscillator,
            sample_rate: RTL_SDR_SAMPLE_RATE,
            adc_bits: Some(8),
            adc_full_scale: 2.0,
            next_phase: None,
        }
    }

    /// Overrides the sample rate.
    pub fn with_sample_rate(mut self, sample_rate: f64) -> Self {
        self.sample_rate = sample_rate;
        self
    }

    /// Disables ADC quantisation (ideal front-end, useful for isolating
    /// algorithmic error in tests).
    pub fn without_quantisation(mut self) -> Self {
        self.adc_bits = None;
        self
    }

    /// Sets ADC resolution.
    pub fn with_adc_bits(mut self, bits: u32) -> Self {
        self.adc_bits = Some(bits);
        self
    }

    /// Pins the next capture's receiver phase `θRx` (tests).
    pub fn with_fixed_phase(mut self, theta_rx: f64) -> Self {
        self.next_phase = Some(theta_rx);
        self
    }

    /// The receiver's local-oscillator frequency bias `δRx` in Hz.
    pub fn receiver_bias_hz(&self) -> f64 {
        self.oscillator.frequency_bias_hz()
    }

    /// Sample rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Down-converts an RF-equivalent baseband stream through this
    /// receiver: applies the local-oscillator bias/phase rotation and ADC
    /// quantisation. `t0` is the stream's absolute start time in seconds
    /// (the mixer phase advances continuously).
    pub fn downconvert(&mut self, samples: &[Complex], t0: f64) -> Vec<Complex> {
        let delta_rx = self.oscillator.frequency_bias_hz();
        let theta_rx = self.next_phase.take().unwrap_or_else(|| self.oscillator.random_phase());
        let dt = 1.0 / self.sample_rate;
        samples
            .iter()
            .enumerate()
            .map(|(n, &z)| {
                let t = t0 + n as f64 * dt;
                let mixed =
                    z * Complex::cis(-(2.0 * std::f64::consts::PI * delta_rx * t + theta_rx));
                self.quantise(mixed)
            })
            .collect()
    }

    /// Captures the first `n_chirps` up-chirps of an uplink frame, the way
    /// SoftLoRa does (paper §5.1: only the first two chirps are analysed).
    ///
    /// The transmitted chirps carry bias `delta_tx` and phase `theta_tx`;
    /// the capture begins `lead` samples of silence before the signal onset
    /// and the waveform arrives with amplitude `amp`. Noise is added by the
    /// caller (see [`crate::noise`]), keeping this function deterministic.
    ///
    /// # Errors
    ///
    /// Propagates [`PhyError::InvalidConfig`] from chirp generation.
    pub fn capture_chirps(
        &mut self,
        cfg: &PhyConfig,
        n_chirps: usize,
        delta_tx: f64,
        theta_tx: f64,
        amp: f64,
        lead: usize,
    ) -> Result<IqCapture, PhyError> {
        let theta_rx = self.next_phase.take().unwrap_or_else(|| self.oscillator.random_phase());
        self.capture_chirps_with_phase(cfg, n_chirps, delta_tx, theta_tx, amp, lead, theta_rx)
    }

    /// Like [`SdrReceiver::capture_chirps`], but with the receiver mixing
    /// phase `θRx` supplied by the caller instead of drawn from the
    /// oscillator.
    ///
    /// This variant takes `&self` and draws no randomness, so independent
    /// captures can be synthesised concurrently with per-capture phases
    /// derived from an external seed (the staged gateway pipeline's batch
    /// mode relies on this).
    ///
    /// # Errors
    ///
    /// Propagates [`PhyError::InvalidConfig`] from chirp generation.
    #[allow(clippy::too_many_arguments)]
    pub fn capture_chirps_with_phase(
        &self,
        cfg: &PhyConfig,
        n_chirps: usize,
        delta_tx: f64,
        theta_tx: f64,
        amp: f64,
        lead: usize,
        theta_rx: f64,
    ) -> Result<IqCapture, PhyError> {
        let mut z = Vec::new();
        self.capture_chirps_with_phase_into(
            cfg, n_chirps, delta_tx, theta_tx, amp, lead, theta_rx, &mut z,
        )?;
        Ok(IqCapture::from_complex(&z, self.sample_rate, lead))
    }

    /// [`SdrReceiver::capture_chirps_with_phase`] writing the quantised
    /// complex waveform into a caller-owned buffer — the batch pipeline's
    /// per-worker scratch path, which synthesises one capture per
    /// delivery without allocating once the buffer is warm. The capture
    /// onset sits at sample `lead`.
    ///
    /// # Errors
    ///
    /// Propagates [`PhyError::InvalidConfig`] from chirp generation.
    #[allow(clippy::too_many_arguments)]
    pub fn capture_chirps_with_phase_into(
        &self,
        cfg: &PhyConfig,
        n_chirps: usize,
        delta_tx: f64,
        theta_tx: f64,
        amp: f64,
        lead: usize,
        theta_rx: f64,
        z: &mut Vec<Complex>,
    ) -> Result<(), PhyError> {
        let generator = ChirpGenerator::new(cfg.sf, cfg.channel.bandwidth.hz(), self.sample_rate)?;
        let delta_rx = self.oscillator.frequency_bias_hz();
        // Net bias and phase, per the paper's Eq. (5).
        let delta = delta_tx - delta_rx;
        let theta = theta_tx - theta_rx;

        z.clear();
        z.resize(lead, Complex::ZERO);
        for k in 0..n_chirps {
            // Keep the bias phase continuous across chirps: the k-th chirp
            // starts at t = k·T, contributing 2π·δ·kT of accumulated phase.
            let t_start = k as f64 * generator.chirp_time();
            let phase_offset = 2.0 * std::f64::consts::PI * delta * t_start + theta;
            generator.chirp_into(ChirpDirection::Up, 0, delta, phase_offset, amp, z);
        }
        for s in z.iter_mut() {
            *s = self.quantise(*s);
        }
        Ok(())
    }

    fn quantise(&self, z: Complex) -> Complex {
        match self.adc_bits {
            None => z,
            Some(bits) => {
                let levels = (1u64 << bits) as f64;
                let step = 2.0 * self.adc_full_scale / levels;
                let q = |x: f64| -> f64 {
                    let clipped = x.clamp(-self.adc_full_scale, self.adc_full_scale - step);
                    (clipped / step).round() * step
                };
                Complex::new(q(z.re), q(z.im))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{PhyConfig, SpreadingFactor};
    use softlora_dsp::unwrap::unwrap_iq;

    fn receiver(bias_ppm: f64) -> SdrReceiver {
        SdrReceiver::new(Oscillator::with_bias_ppm(bias_ppm, 869.75e6, 1).with_jitter_hz(0.0))
    }

    #[test]
    fn capture_dimensions_and_onset() {
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
        let mut rx = receiver(0.0);
        let cap = rx.capture_chirps(&cfg, 2, 0.0, 0.0, 1.0, 500).unwrap();
        // 2 chirps of 1.024 ms at 2.4 Msps = 2·2457 samples + 500 lead.
        assert_eq!(cap.len(), 500 + 2 * 2457);
        assert_eq!(cap.true_onset, 500);
        assert!((cap.dt() - 1.0 / 2.4e6).abs() < 1e-18);
        assert!(!cap.is_empty());
    }

    #[test]
    fn net_bias_is_tx_minus_rx() {
        // δTx = −22 kHz, δRx = +3 kHz (≈ +3.45 ppm) -> net δ = −25 kHz.
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
        let delta_rx_ppm = 3000.0 / 869.75; // 3 kHz in ppm
        let mut rx = receiver(delta_rx_ppm).without_quantisation().with_fixed_phase(0.0);
        let cap = rx.capture_chirps(&cfg, 1, -22_000.0, 0.0, 1.0, 0).unwrap();
        // Recover the slope of the de-quadratic'd phase (the FB estimator's
        // core) and check it equals δTx − δRx.
        let un = unwrap_iq(&cap.i, &cap.q);
        let dt = cap.dt();
        let w = 125e3;
        let sf = 7u32;
        let a = std::f64::consts::PI * w * w / (1u64 << sf) as f64;
        let linear: Vec<f64> = un
            .iter()
            .enumerate()
            .map(|(n, &p)| {
                let t = n as f64 * dt;
                p - a * t * t + std::f64::consts::PI * w * t
            })
            .collect();
        let xs: Vec<f64> = (0..linear.len()).map(|n| n as f64 * dt).collect();
        let fit = softlora_dsp::regression::linear_fit(&xs, &linear).unwrap();
        let delta_est = fit.slope / (2.0 * std::f64::consts::PI);
        assert!((delta_est + 25_000.0).abs() < 50.0, "estimated net bias {delta_est}, want −25000");
    }

    #[test]
    fn quantisation_bounds_error() {
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
        let mut ideal = receiver(0.0).without_quantisation().with_fixed_phase(0.3);
        let mut real = receiver(0.0).with_adc_bits(8).with_fixed_phase(0.3);
        let a = ideal.capture_chirps(&cfg, 1, -20e3, 0.5, 1.0, 0).unwrap();
        let b = real.capture_chirps(&cfg, 1, -20e3, 0.5, 1.0, 0).unwrap();
        let step = 2.0 * 2.0 / 256.0;
        for (x, y) in a.i.iter().zip(b.i.iter()) {
            assert!((x - y).abs() <= step / 2.0 + 1e-12);
        }
    }

    #[test]
    fn quantisation_clips_at_full_scale() {
        let rx = receiver(0.0);
        let big = rx.quantise(Complex::new(100.0, -100.0));
        assert!(big.re <= 2.0 && big.im >= -2.0);
    }

    #[test]
    fn downconvert_rotates_by_receiver_bias() {
        // A DC input through a biased receiver becomes a tone at −δRx.
        let delta_rx_hz = 5000.0;
        let ppm = delta_rx_hz / 869.75; // Hz -> ppm at fc
        let mut rx = receiver(ppm).without_quantisation().with_fixed_phase(0.0);
        let input = vec![Complex::ONE; 4800];
        let out = rx.downconvert(&input, 0.0);
        // Phase advance per sample = −2π·δRx/fs.
        let want = -2.0 * std::f64::consts::PI * delta_rx_hz / 2.4e6;
        let d = (out[100] * out[99].conj()).arg();
        assert!((d - want).abs() < 1e-9, "{d} vs {want}");
    }

    #[test]
    fn phase_continuity_across_captured_chirps() {
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
        let mut rx = receiver(0.0).without_quantisation().with_fixed_phase(0.0);
        let cap = rx.capture_chirps(&cfg, 2, -20e3, 0.0, 1.0, 0).unwrap();
        let z = cap.to_complex();
        let n = 2457;
        // Max per-sample phase step: band edge (62.5 kHz) + |δ| (20 kHz).
        let max_step = 2.0 * std::f64::consts::PI * (62.5e3 + 20e3) / 2.4e6 + 1e-6;
        let d = (z[n] * z[n - 1].conj()).arg().abs();
        assert!(d <= max_step, "discontinuity {d} at chirp boundary");
    }

    #[test]
    fn iq_capture_complex_round_trip() {
        let z = vec![Complex::new(1.0, 2.0), Complex::new(-0.5, 0.25)];
        let cap = IqCapture::from_complex(&z, 2.4e6, 0);
        assert_eq!(cap.to_complex(), z);
    }
}
