//! Property tests for the gateway wire protocol, mirroring the store's
//! `wal_properties` discipline:
//!
//! * every frame type round-trips bit-exactly through encode → decode,
//!   across arbitrary payload shapes and sizes;
//! * the decoder never panics: truncations, single-bit flips and pure
//!   garbage all come back as structured [`NetError`]s, never a crash.

use proptest::prelude::*;
use softlora_net::protocol::{
    decode_frame, decode_registry_snapshot, encode_frame, encode_registry_snapshot, Frame,
    NetCounters, PushData, WireBlockStats, WireDelivery, WireRuntime, WireStats, WireUplink,
    VERSION,
};
use softlora_net::NetError;
use softlora_store::codec::{Decoder, Encoder};
use softlora_telemetry::{
    bucket_index, HistogramSnapshot, RegistrySnapshot, SeriesSnapshot, SeriesValue,
};

/// Deterministically expands a compact sample tuple into one uplink copy.
#[allow(clippy::too_many_arguments)]
fn build_uplink(
    uplink: u64,
    dev_addr: u32,
    t0: f64,
    total: u16,
    index: u16,
    with_delivery: bool,
    bytes: Vec<u8>,
    snr_db: f64,
    jamming: Option<(f64, f64)>,
    is_replay: bool,
    sf: u8,
) -> WireUplink {
    WireUplink {
        uplink,
        dev_addr,
        tx_start_global_s: t0,
        airtime_s: 0.0616,
        copies_total: total,
        copy_index: index,
        delivery: with_delivery.then_some(WireDelivery {
            bytes,
            dev_addr,
            arrival_global_s: t0 + 0.001,
            snr_db,
            carrier_bias_hz: snr_db * 37.5,
            carrier_phase: 1.25,
            sf,
            jamming,
            is_replay,
        }),
    }
}

/// Deterministically expands seed words into a registry snapshot that
/// covers all three series kinds, label arity 0..=2 and unicode label
/// values, with histogram buckets built by recording arbitrary samples
/// (so bucket/count/sum stay coherent).
fn build_snapshot(seeds: &[u64], samples: &[u64]) -> RegistrySnapshot {
    let series = seeds
        .iter()
        .enumerate()
        .map(|(k, &seed)| {
            let name = format!("series_{k}_{:x}", seed >> 48);
            let labels = match seed % 3 {
                0 => vec![],
                1 => vec![("shard".to_string(), format!("{}", seed % 16))],
                _ => vec![
                    ("stage".to_string(), "detect µs".to_string()),
                    ("listener".to_string(), format!("{}", seed % 7)),
                ],
            };
            let value = match (seed >> 2) % 3 {
                0 => SeriesValue::Counter(seed),
                1 => SeriesValue::Gauge(seed as i64 as f64 * 0.125),
                _ => {
                    let mut h = HistogramSnapshot::empty();
                    for &v in samples.iter().skip(k % 3) {
                        h.buckets[bucket_index(v)] += 1;
                        h.count += 1;
                        h.sum = h.sum.wrapping_add(v);
                    }
                    SeriesValue::Histogram(h)
                }
            };
            SeriesSnapshot { name, labels, value }
        })
        .collect();
    RegistrySnapshot { series }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `PUSH_DATA` batches of arbitrary shape round-trip bit-exactly —
    /// including empty batches, empty frame bytes, markers without a
    /// delivery, and NaN-free f64 payloads compared by bit pattern.
    #[test]
    fn push_data_round_trips(
        gateway in any::<u32>(),
        seq in any::<u64>(),
        watermark in any::<u64>(),
        uplink_ids in prop::collection::vec(any::<u64>(), 0..20),
        dev in any::<u32>(),
        t0 in any::<f64>(),
        totals in prop::collection::vec(0u16..8, 0..20),
        bytes in prop::collection::vec(any::<u8>(), 0..64),
        snr in any::<f64>(),
        jam_onset in any::<f64>(),
        jam_power in any::<f64>(),
        flags in any::<u64>(),
    ) {
        let uplinks: Vec<WireUplink> = uplink_ids
            .iter()
            .enumerate()
            .map(|(k, &id)| {
                let total = totals.get(k).copied().unwrap_or(1);
                let with_delivery = total > 0 && (flags >> (k % 60)) & 1 == 0;
                let jamming = ((flags >> ((k + 7) % 60)) & 1 == 1)
                    .then_some((jam_onset, jam_power));
                build_uplink(
                    id,
                    dev.wrapping_add(k as u32),
                    t0,
                    total,
                    total.saturating_sub(1),
                    with_delivery,
                    bytes.clone(),
                    snr,
                    jamming,
                    (flags >> ((k + 13) % 60)) & 1 == 1,
                    6 + (k % 7) as u8,
                )
            })
            .collect();
        let frame = Frame::PushData(PushData { gateway, seq, watermark, uplinks });
        let decoded = decode_frame(&encode_frame(&frame)).expect("round trip");
        prop_assert_eq!(decoded, frame);
    }

    /// Every non-batch frame type round-trips bit-exactly.
    #[test]
    fn control_frames_round_trip(
        gateway in any::<u32>(),
        seq in any::<u64>(),
        watermark in any::<u64>(),
        token in any::<u64>(),
        counter_seed in any::<u64>(),
        snapshot_seeds in prop::collection::vec(any::<u64>(), 0..8),
        snapshot_samples in prop::collection::vec(any::<u64>(), 0..16),
    ) {
        let snapshot = build_snapshot(&snapshot_seeds, &snapshot_samples);
        let stats = WireStats {
            counters: NetCounters {
                datagrams: counter_seed,
                push_data: counter_seed.wrapping_mul(3),
                rejected_crc: counter_seed >> 5,
                duplicate_datagrams: counter_seed >> 9,
                groups_committed: counter_seed >> 2,
                ..Default::default()
            },
            runtime: WireRuntime {
                worker_parks: counter_seed >> 7,
                work_calls: counter_seed >> 3,
                blocks: vec![WireBlockStats {
                    name: format!("block_{:x}", counter_seed & 0xFF),
                    work_calls: counter_seed >> 3,
                    items_in: counter_seed >> 1,
                    items_out: counter_seed >> 1,
                    busy_ns: counter_seed >> 4,
                }],
            },
            ..Default::default()
        };
        let frames = [
            Frame::PushAck { gateway, seq, committed: watermark },
            Frame::PullData { gateway, seq, watermark },
            Frame::PullAck { gateway, seq, committed: seq },
            Frame::StatsReq { token },
            Frame::StatsResp { token, stats },
            Frame::Shutdown { token },
            Frame::MetricsReq { token },
            Frame::MetricsResp { token, snapshot },
        ];
        for frame in &frames {
            let decoded = decode_frame(&encode_frame(frame)).expect("round trip");
            prop_assert_eq!(&decoded, frame);
        }
    }

    /// A registry snapshot of arbitrary shape survives the store codec
    /// losslessly — names, unicode labels, counters, gauge bit patterns
    /// and sparse histogram buckets all come back bit-exact.
    #[test]
    fn registry_snapshot_codec_round_trips(
        snapshot_seeds in prop::collection::vec(any::<u64>(), 0..10),
        snapshot_samples in prop::collection::vec(any::<u64>(), 0..24),
    ) {
        let snapshot = build_snapshot(&snapshot_seeds, &snapshot_samples);
        let mut e = Encoder::new();
        encode_registry_snapshot(&mut e, &snapshot);
        let mut d = Decoder::new(e.as_bytes());
        let back = decode_registry_snapshot(&mut d).expect("round trip");
        prop_assert!(d.is_exhausted());
        prop_assert_eq!(back, snapshot);
    }

    /// Truncating a valid datagram anywhere yields a structured error —
    /// never a panic, never a silently misdecoded frame.
    #[test]
    fn truncation_is_rejected(
        seq in any::<u64>(),
        uplink in any::<u64>(),
        bytes in prop::collection::vec(any::<u8>(), 0..40),
        cut_seed in any::<u64>(),
    ) {
        let frame = Frame::PushData(PushData {
            gateway: 3,
            seq,
            watermark: uplink,
            uplinks: vec![build_uplink(
                uplink, 0x2601_5000, 1234.5, 2, 0, true, bytes, 7.5, Some((-0.002, 6.0)),
                false, 7,
            )],
        });
        let encoded = encode_frame(&frame);
        let cut = (cut_seed % encoded.len() as u64) as usize;
        prop_assert!(decode_frame(&encoded[..cut]).is_err());
    }

    /// A single flipped bit anywhere in the datagram is always caught
    /// (CRC-32 detects all single-bit errors).
    #[test]
    fn bit_flip_is_rejected(
        seq in any::<u64>(),
        watermark in any::<u64>(),
        flip_seed in any::<u64>(),
    ) {
        let frame = Frame::PullData { gateway: 9, seq, watermark };
        let mut encoded = encode_frame(&frame);
        let bit = (flip_seed % (encoded.len() as u64 * 8)) as usize;
        encoded[bit / 8] ^= 1 << (bit % 8);
        let err = decode_frame(&encoded);
        prop_assert!(err.is_err());
        prop_assert!(matches!(
            err,
            Err(NetError::BadCrc { .. })
                | Err(NetError::BadMagic { .. })
                | Err(NetError::BadVersion { .. })
        ));
    }

    /// Pure garbage never panics the decoder; it errors or (vanishingly
    /// unlikely) decodes to a frame, but control flow always returns.
    #[test]
    fn garbage_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = decode_frame(&bytes);
    }

    /// Garbage wearing a valid header + CRC still decodes without
    /// panicking: the payload reader sees attacker-controlled bytes and
    /// must return a structured result.
    #[test]
    fn framed_garbage_never_panics(
        payload in prop::collection::vec(any::<u8>(), 0..256),
        frame_type in 0u8..12,
    ) {
        // Hand-build a datagram with correct magic/version/CRC around an
        // arbitrary payload, the worst case for the payload decoders.
        let mut body = vec![0x53, 0x4E, VERSION, frame_type];
        body.extend_from_slice(&payload);
        let crc = softlora_store::crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        let _ = decode_frame(&body);
    }
}
