//! Fleet-scale load harness: simulate a gateway fleet (optionally under
//! the frame-delay attack), start an in-process [`NetServer`] listener,
//! replay the traffic from N concurrent gateway sockets over loopback,
//! and report sustained throughput + ingest latency as JSON.
//!
//! ```text
//! loadgen [--gateways N] [--devices N] [--sim-duration-s S] [--attack-at S]
//!         [--loud-gateways K] [--shards N] [--copies-per-datagram N]
//!         [--persist DIR] [--out FILE] [--quiet]
//! ```
//!
//! All but `--loud-gateways` gateway sites get a +60 dB noise floor, so
//! their copies fail the radio front end cheaply — the fleet exercises
//! the wire path and the reassembly barrier at full width while DSP cost
//! stays proportional to the loud sites. `--persist DIR` turns on the
//! WAL + snapshot store so CI can fsck the result with `repro_fsck`.

use softlora::NetworkServer;
use softlora_attack::FrameDelayAttack;
use softlora_net::listener::{NetServer, NetServerConfig};
use softlora_net::loadgen::{
    replay_fleet, replay_fleet_open_loop, LoadgenConfig, SweepPoint, SweepReport,
};
use softlora_net::protocol::{decode_frame, encode_frame, Frame};
use softlora_net::NetError;
use softlora_phy::{PhyConfig, SpreadingFactor};
use softlora_sim::{FleetDeployment, Position, Scenario, UplinkDeliveries};
use std::net::UdpSocket;
use std::time::Duration;

struct Args {
    gateways: usize,
    devices: usize,
    sim_duration_s: f64,
    attack_at_s: Option<f64>,
    loud_gateways: usize,
    shards: usize,
    copies_per_datagram: usize,
    persist: Option<String>,
    out: Option<String>,
    quiet: bool,
    /// Offered rates (uplink groups/s) for the open-loop Poisson sweep;
    /// empty = closed-loop replay only.
    sweep_rates: Vec<f64>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            gateways: 8,
            devices: 6,
            sim_duration_s: 2600.0,
            attack_at_s: Some(1500.0),
            loud_gateways: 3,
            shards: 0,
            copies_per_datagram: 8,
            persist: None,
            out: None,
            quiet: false,
            sweep_rates: Vec::new(),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--gateways N] [--devices N] [--sim-duration-s S] \
         [--attack-at S | --no-attack] [--loud-gateways K] [--shards N] \
         [--copies-per-datagram N] [--persist DIR] [--out FILE] [--quiet] \
         [--sweep R1,R2,...]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--gateways" => args.gateways = value().parse().unwrap_or_else(|_| usage()),
            "--devices" => args.devices = value().parse().unwrap_or_else(|_| usage()),
            "--sim-duration-s" => {
                args.sim_duration_s = value().parse().unwrap_or_else(|_| usage());
            }
            "--attack-at" => {
                args.attack_at_s = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            "--no-attack" => args.attack_at_s = None,
            "--loud-gateways" => args.loud_gateways = value().parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = value().parse().unwrap_or_else(|_| usage()),
            "--copies-per-datagram" => {
                args.copies_per_datagram = value().parse().unwrap_or_else(|_| usage());
            }
            "--persist" => args.persist = Some(value()),
            "--out" => args.out = Some(value()),
            "--quiet" => args.quiet = true,
            "--sweep" => {
                args.sweep_rates = value()
                    .split(',')
                    .map(|r| r.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn phy() -> PhyConfig {
    PhyConfig::uplink(SpreadingFactor::Sf7)
}

/// Builds the deterministic fleet scenario: `gateways` sites on the
/// default ring, all but the first `loud` of them deafened by a +60 dB
/// noise floor, `devices` meters at a 300 s reporting period, and the
/// frame-delay attack (τ = 40 s) against meter 0 from `attack_at_s` on.
fn build_scenario(args: &Args) -> Scenario {
    let default_floor_dbm = -117.0;
    let floors: Vec<f64> = (0..args.gateways)
        .map(|g| if g < args.loud_gateways { default_floor_dbm } else { default_floor_dbm + 60.0 })
        .collect();
    let fleet = FleetDeployment::with_gateways(args.gateways).with_site_noise_floors_dbm(floors);
    let gateways = fleet.gateway_positions();
    let mut scenario = Scenario::new_fleet_sites(
        phy(),
        fleet.medium(),
        fleet.gateway_sites(),
        Box::new(softlora_sim::HonestChannel),
    );
    let positions = fleet.device_positions(args.devices, 21);
    for (k, pos) in positions.iter().enumerate() {
        scenario.add_device(0x2601_5000 + k as u32, *pos, 300.0, k as u64);
    }
    if let Some(at_s) = args.attack_at_s {
        let target = positions[0];
        let attack = FrameDelayAttack::near_gateway(
            Position::new(target.x + 2.0, target.y + 1.0, target.z),
            &gateways,
            0,
            2.0,
            40.0,
            phy(),
            7,
        )
        .with_targets(vec![0x2601_5000]);
        scenario.schedule_interceptor(at_s, Box::new(attack));
    }
    scenario
}

fn build_server(scenario: &Scenario, args: &Args, persist: bool) -> NetworkServer {
    let mut builder = NetworkServer::builder(phy()).adc_quantisation(false).warmup_frames(2);
    for g in 0..args.gateways {
        builder = builder.gateway(g as u64 + 1);
    }
    if args.shards > 0 {
        builder = builder.shards(args.shards);
    }
    for k in 0..scenario.devices() {
        let cfg = scenario.device_config(k).clone();
        builder = builder.provision(cfg.dev_addr, cfg.keys);
    }
    if persist {
        if let Some(dir) = &args.persist {
            builder = builder.with_persistence(dir);
        }
    }
    match builder.try_build() {
        Ok(server) => server,
        Err(e) => {
            eprintln!("loadgen: failed to build server: {e}");
            std::process::exit(1);
        }
    }
}

/// One open-loop point: fresh listener, Poisson replay at `rate`,
/// orderly shutdown, achieved throughput from the listener's own commit
/// counter over the replay wall clock.
fn sweep_point(
    scenario: &Scenario,
    groups: &[UplinkDeliveries],
    args: &Args,
    config: &LoadgenConfig,
    rate: f64,
    seed: u64,
) -> Result<SweepPoint, NetError> {
    // Sweep points run without persistence: the store dir belongs to the
    // closed-loop run CI fscks afterwards.
    let server = build_server(scenario, args, false);
    let net = NetServer::bind(server, NetServerConfig::default())?;
    let data_addr = net.data_addr()?;
    let ctrl_addr = net.ctrl_addr()?;
    let listener = std::thread::spawn(move || net.run());
    let report = replay_fleet_open_loop(groups, args.gateways, data_addr, config, rate, seed)?;
    let ctrl = UdpSocket::bind("127.0.0.1:0")?;
    ctrl.connect(ctrl_addr)?;
    ctrl.set_read_timeout(Some(Duration::from_secs(5)))?;
    ctrl.send(&encode_frame(&Frame::Shutdown { token: 9 }))?;
    let mut buf = [0u8; 256];
    let _ = ctrl.recv(&mut buf)?;
    let run_report = listener.join().expect("listener thread panicked")?;
    let achieved = run_report.counters.groups_committed as f64 / report.elapsed_s.max(1e-9);
    Ok(SweepPoint { offered_per_s: rate, achieved_per_s: achieved, report })
}

fn main() {
    let args = parse_args();
    if let Err(e) = run(&args) {
        eprintln!("loadgen: {e}");
        std::process::exit(1);
    }
}

fn run(args: &Args) -> Result<(), NetError> {
    // 1. Simulate the fleet once: the canonical group stream.
    let mut scenario = build_scenario(args);
    let mut groups: Vec<UplinkDeliveries> = Vec::new();
    scenario.run(args.sim_duration_s, |u| groups.push(u.clone()));
    if !args.quiet {
        let copies: usize = groups.iter().map(|g| g.copies.len()).sum();
        eprintln!(
            "loadgen: simulated {} uplink groups / {} copies across {} gateways",
            groups.len(),
            copies,
            args.gateways
        );
    }

    // 2. Open-loop Poisson rate sweep (when requested): offered vs
    //    achieved throughput per rate, and the saturation knee.
    let sweep = if args.sweep_rates.is_empty() {
        None
    } else {
        let config = LoadgenConfig {
            copies_per_datagram: args.copies_per_datagram,
            ..LoadgenConfig::default()
        };
        let mut points = Vec::new();
        for (k, &rate) in args.sweep_rates.iter().enumerate() {
            let point = sweep_point(&scenario, &groups, args, &config, rate, 0x5EED + k as u64)?;
            if !args.quiet {
                eprintln!(
                    "loadgen: sweep {} groups/s offered -> {:.0} achieved, ack p99 {} µs, commit p99 {} µs",
                    rate,
                    point.achieved_per_s,
                    point.report.ack_latency.p99_us,
                    point.report.commit_latency.p99_us
                );
            }
            points.push(point);
        }
        let sweep = SweepReport::from_points(points);
        if !args.quiet {
            match sweep.knee_per_s {
                Some(knee) => eprintln!("loadgen: saturation knee ~{knee} groups/s offered"),
                None => eprintln!("loadgen: saturated at every swept rate"),
            }
        }
        Some(sweep)
    };

    // 3. Stand the listener up on loopback.
    let server = build_server(&scenario, args, true);
    let net = NetServer::bind(server, NetServerConfig::default())?;
    let data_addr = net.data_addr()?;
    let ctrl_addr = net.ctrl_addr()?;
    let listener = std::thread::spawn(move || net.run());

    // 4. Replay the fleet from N concurrent gateway sockets.
    let config =
        LoadgenConfig { copies_per_datagram: args.copies_per_datagram, ..LoadgenConfig::default() };
    let report = replay_fleet(&groups, args.gateways, data_addr, &config)?;

    // 5. Pull live stats over the ctrl endpoint, then shut down.
    let ctrl = UdpSocket::bind("127.0.0.1:0")?;
    ctrl.connect(ctrl_addr)?;
    ctrl.set_read_timeout(Some(Duration::from_secs(5)))?;
    ctrl.send(&encode_frame(&Frame::StatsReq { token: 1 }))?;
    // A registry snapshot can run to tens of KiB; size the ctrl recv
    // buffer for a full UDP datagram.
    let mut buf = vec![0u8; 65_535];
    let len = ctrl.recv(&mut buf)?;
    let Frame::StatsResp { stats, .. } = decode_frame(&buf[..len])? else {
        return Err(NetError::BadFrameType { found: 0xFF });
    };
    if !args.quiet {
        eprintln!(
            "loadgen: live stats mid-run: {} datagrams, {} groups committed",
            stats.counters.datagrams, stats.counters.groups_committed
        );
    }
    // Pull the server-side telemetry registry too: stage latencies, WAL
    // counters and the wire series all ride back in one snapshot.
    ctrl.send(&encode_frame(&Frame::MetricsReq { token: 2 }))?;
    let len = ctrl.recv(&mut buf)?;
    let Frame::MetricsResp { snapshot, .. } = decode_frame(&buf[..len])? else {
        return Err(NetError::BadFrameType { found: 0xFF });
    };
    ctrl.send(&encode_frame(&Frame::Shutdown { token: 3 }))?;
    let _ = ctrl.recv(&mut buf)?;
    let run_report = listener.join().expect("listener thread panicked")?;

    // 6. Flush persistence so a follow-up fsck sees a clean store.
    if args.persist.is_some() {
        run_report.server.sync_persistence().map_err(NetError::Server)?;
    }

    let counters = run_report.counters;
    let server_stats = run_report.server.stats();
    let mut json = format!(
        concat!(
            "{{\"loadgen\":{},\"listener\":{{\"datagrams\":{},\"push_data\":{},",
            "\"keepalives\":{},\"duplicate_datagrams\":{},\"out_of_order_datagrams\":{},",
            "\"copies_received\":{},\"stale_copies\":{},\"duplicate_copies\":{},",
            "\"incomplete_groups\":{},\"groups_committed\":{},\"batches\":{}}},",
            "\"server\":{{\"uplinks\":{},\"accepted\":{},\"fb_replays_flagged\":{},",
            "\"cross_gateway_replays_flagged\":{},\"not_received\":{}}},",
            "\"server_registry\":{}}}"
        ),
        report.to_json(),
        counters.datagrams,
        counters.push_data,
        counters.keepalives,
        counters.duplicate_datagrams,
        counters.out_of_order_datagrams,
        counters.copies_received,
        counters.stale_copies,
        counters.duplicate_copies,
        counters.incomplete_groups,
        counters.groups_committed,
        counters.batches,
        server_stats.uplinks,
        server_stats.accepted,
        server_stats.fb_replays_flagged,
        server_stats.cross_gateway_replays_flagged,
        server_stats.not_received,
        snapshot.to_json(),
    );
    if let Some(sweep) = &sweep {
        json.pop();
        json.push_str(&format!(",\"sweep\":{}}}", sweep.to_json()));
    }
    if let Some(path) = &args.out {
        std::fs::write(path, &json)?;
    }
    if !args.quiet {
        eprintln!(
            "loadgen: {} gateways | {:.0} uplinks/s, {:.0} copies/s | ack p50 {} µs, p99 {} µs | commit p50 {} µs, p99 {} µs | {} committed, {} retries",
            report.gateways,
            report.uplinks_per_s,
            report.copies_per_s,
            report.ack_latency.p50_us,
            report.ack_latency.p99_us,
            report.commit_latency.p50_us,
            report.commit_latency.p99_us,
            counters.groups_committed,
            report.retries,
        );
    }
    println!("{json}");
    Ok(())
}
