//! End-to-end telemetry dashboard harness: run the attacked-fleet
//! loadgen scenario against an in-process [`NetServer`], scrape the full
//! registry over `METRICS_REQ` mid-run and again at shutdown, and emit
//! `BENCH_telemetry.json` — per-stage latency quantiles, server commit
//! latency, WAL counters and detection accuracy side by side.
//!
//! ```text
//! telemetry_report [--gateways N] [--devices N] [--sim-duration-s S]
//!                  [--no-attack] [--persist DIR] [--out FILE] [--quiet]
//! ```
//!
//! Besides producing the artifact, the harness is its own smoke test: it
//! exits nonzero when the rendered text exposition is empty, when an
//! expected series family is missing from the final snapshot, or when
//! any counter moved backwards between the two scrapes.

use softlora::NetworkServer;
use softlora_attack::FrameDelayAttack;
use softlora_net::listener::{NetServer, NetServerConfig};
use softlora_net::loadgen::{replay_fleet, LoadgenConfig};
use softlora_net::protocol::{decode_frame, encode_frame, Frame};
use softlora_net::NetError;
use softlora_phy::{PhyConfig, SpreadingFactor};
use softlora_sim::{FleetDeployment, Position, Scenario, UplinkDeliveries};
use softlora_telemetry::RegistrySnapshot;
use std::net::UdpSocket;
use std::time::Duration;

struct Args {
    gateways: usize,
    devices: usize,
    sim_duration_s: f64,
    attack_at_s: Option<f64>,
    loud_gateways: usize,
    persist: Option<String>,
    out: Option<String>,
    quiet: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            gateways: 8,
            devices: 4,
            sim_duration_s: 1800.0,
            attack_at_s: Some(900.0),
            loud_gateways: 3,
            persist: None,
            out: None,
            quiet: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: telemetry_report [--gateways N] [--devices N] [--sim-duration-s S] \
         [--attack-at S | --no-attack] [--loud-gateways K] [--persist DIR] \
         [--out FILE] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--gateways" => args.gateways = value().parse().unwrap_or_else(|_| usage()),
            "--devices" => args.devices = value().parse().unwrap_or_else(|_| usage()),
            "--sim-duration-s" => {
                args.sim_duration_s = value().parse().unwrap_or_else(|_| usage());
            }
            "--attack-at" => {
                args.attack_at_s = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            "--no-attack" => args.attack_at_s = None,
            "--loud-gateways" => args.loud_gateways = value().parse().unwrap_or_else(|_| usage()),
            "--persist" => args.persist = Some(value()),
            "--out" => args.out = Some(value()),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn phy() -> PhyConfig {
    PhyConfig::uplink(SpreadingFactor::Sf7)
}

/// The same deterministic attacked-fleet scenario the loadgen harness
/// runs: a gateway ring with a few loud sites, metered devices, and the
/// frame-delay attack against meter 0 from `attack_at_s` on.
fn build_scenario(args: &Args) -> Scenario {
    let default_floor_dbm = -117.0;
    let floors: Vec<f64> = (0..args.gateways)
        .map(|g| if g < args.loud_gateways { default_floor_dbm } else { default_floor_dbm + 60.0 })
        .collect();
    let fleet = FleetDeployment::with_gateways(args.gateways).with_site_noise_floors_dbm(floors);
    let gateways = fleet.gateway_positions();
    let mut scenario = Scenario::new_fleet_sites(
        phy(),
        fleet.medium(),
        fleet.gateway_sites(),
        Box::new(softlora_sim::HonestChannel),
    );
    let positions = fleet.device_positions(args.devices, 21);
    for (k, pos) in positions.iter().enumerate() {
        scenario.add_device(0x2601_5000 + k as u32, *pos, 300.0, k as u64);
    }
    if let Some(at_s) = args.attack_at_s {
        let target = positions[0];
        let attack = FrameDelayAttack::near_gateway(
            Position::new(target.x + 2.0, target.y + 1.0, target.z),
            &gateways,
            0,
            2.0,
            40.0,
            phy(),
            7,
        )
        .with_targets(vec![0x2601_5000]);
        scenario.schedule_interceptor(at_s, Box::new(attack));
    }
    scenario
}

fn build_server(scenario: &Scenario, args: &Args) -> NetworkServer {
    let mut builder = NetworkServer::builder(phy()).adc_quantisation(false).warmup_frames(2);
    for g in 0..args.gateways {
        builder = builder.gateway(g as u64 + 1);
    }
    for k in 0..scenario.devices() {
        let cfg = scenario.device_config(k).clone();
        builder = builder.provision(cfg.dev_addr, cfg.keys);
    }
    if let Some(dir) = &args.persist {
        builder = builder.with_persistence(dir);
    }
    match builder.try_build() {
        Ok(server) => server,
        Err(e) => {
            eprintln!("telemetry_report: failed to build server: {e}");
            std::process::exit(1);
        }
    }
}

/// One `METRICS_REQ` round trip over the ctrl socket.
fn scrape(ctrl: &UdpSocket, buf: &mut [u8], token: u64) -> Result<RegistrySnapshot, NetError> {
    ctrl.send(&encode_frame(&Frame::MetricsReq { token }))?;
    let len = ctrl.recv(buf)?;
    match decode_frame(&buf[..len])? {
        Frame::MetricsResp { snapshot, .. } => Ok(snapshot),
        _ => Err(NetError::BadFrameType { found: 0xFF }),
    }
}

/// Every counter in `mid` must still exist in `fin` with a value at
/// least as large — counters only ever go up. Returns the violations.
fn monotonicity_violations(mid: &RegistrySnapshot, fin: &RegistrySnapshot) -> Vec<String> {
    let mut bad = Vec::new();
    for s in &mid.series {
        let Some(before) = s.value.as_counter() else { continue };
        let labels: Vec<(&str, &str)> =
            s.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        match fin.find_with(&s.name, &labels).and_then(|f| f.value.as_counter()) {
            Some(after) if after >= before => {}
            Some(after) => bad.push(format!("{} went {before} -> {after}", s.key())),
            None => bad.push(format!("{} vanished from the final scrape", s.key())),
        }
    }
    bad
}

/// Pulls one histogram's quantile summary as a JSON object.
fn histogram_json(snapshot: &RegistrySnapshot, name: &str, labels: &[(&str, &str)]) -> String {
    match snapshot.find_with(name, labels).and_then(|s| s.value.as_histogram()) {
        Some(h) => format!(
            "{{\"count\":{},\"mean\":{:.1},\"p50\":{:.1},\"p90\":{:.1},\"p99\":{:.1},\"p999\":{:.1}}}",
            h.count,
            h.mean(),
            h.p50(),
            h.p90(),
            h.p99(),
            h.p999()
        ),
        None => "null".to_string(),
    }
}

fn main() {
    let args = parse_args();
    if let Err(e) = run(&args) {
        eprintln!("telemetry_report: {e}");
        std::process::exit(1);
    }
}

fn run(args: &Args) -> Result<(), NetError> {
    // 1. Simulate the attacked fleet once.
    let mut scenario = build_scenario(args);
    let mut groups: Vec<UplinkDeliveries> = Vec::new();
    scenario.run(args.sim_duration_s, |u| groups.push(u.clone()));
    if !args.quiet {
        eprintln!(
            "telemetry_report: simulated {} uplink groups across {} gateways",
            groups.len(),
            args.gateways
        );
    }

    // 2. Listener on loopback; replay the fleet on a worker thread while
    //    the main thread scrapes the registry mid-flight.
    let server = build_server(&scenario, args);
    let net = NetServer::bind(server, NetServerConfig::default())?;
    let data_addr = net.data_addr()?;
    let ctrl_addr = net.ctrl_addr()?;
    let listener = std::thread::spawn(move || net.run());

    let ctrl = UdpSocket::bind("127.0.0.1:0")?;
    ctrl.connect(ctrl_addr)?;
    ctrl.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut buf = vec![0u8; 65_535];

    let config = LoadgenConfig::default();
    let (mid_snapshot, load_report) = std::thread::scope(|scope| {
        let replay = scope.spawn(|| replay_fleet(&groups, args.gateways, data_addr, &config));
        // Let traffic start flowing before the mid-run scrape.
        std::thread::sleep(Duration::from_millis(50));
        let mid = scrape(&ctrl, &mut buf, 1);
        (mid, replay.join().expect("replay thread panicked"))
    });
    let mid_snapshot = mid_snapshot?;
    let load_report = load_report?;

    // 3. Final scrape + stats, then shut the listener down.
    let fin_snapshot = scrape(&ctrl, &mut buf, 2)?;
    ctrl.send(&encode_frame(&Frame::StatsReq { token: 3 }))?;
    let len = ctrl.recv(&mut buf)?;
    let Frame::StatsResp { stats, .. } = decode_frame(&buf[..len])? else {
        return Err(NetError::BadFrameType { found: 0xFF });
    };
    ctrl.send(&encode_frame(&Frame::Shutdown { token: 4 }))?;
    let _ = ctrl.recv(&mut buf)?;
    let run_report = listener.join().expect("listener thread panicked")?;
    if args.persist.is_some() {
        run_report.server.sync_persistence().map_err(NetError::Server)?;
    }

    // 4. Self-checks: the artifact is only worth uploading if the
    //    exposition renders and the counters behaved.
    let mut failures = Vec::new();
    let text = fin_snapshot.render_text();
    if text.trim().is_empty() {
        failures.push("rendered text exposition is empty".to_string());
    }
    for family in ["gateway_stage_ns", "server_commit_ns", "net_datagrams_total"] {
        if fin_snapshot.find(family).is_none() {
            failures.push(format!("series family {family} missing from the final scrape"));
        }
    }
    if args.persist.is_some() && fin_snapshot.find("store_wal_append_ns").is_none() {
        failures.push("store_wal_append_ns missing despite persistence".to_string());
    }
    failures.extend(monotonicity_violations(&mid_snapshot, &fin_snapshot));

    // 5. The dashboard artifact: latency quantiles per pipeline stage,
    //    commit latency, WAL counters and detection accuracy, plus both
    //    raw scrapes for offline drill-down.
    let stages = ["radio", "capture", "onset", "fb", "detect", "mac"];
    let stage_json: Vec<String> = stages
        .iter()
        .map(|stage| {
            format!(
                "\"{stage}\":{}",
                histogram_json(&fin_snapshot, "gateway_stage_ns", &[("stage", stage)])
            )
        })
        .collect();
    let d = &stats.detection;
    let accuracy_denom =
        d.true_positives + d.false_positives + d.false_negatives + d.true_negatives;
    let accuracy = if accuracy_denom > 0 {
        (d.true_positives + d.true_negatives) as f64 / accuracy_denom as f64
    } else {
        0.0
    };
    let json = format!(
        concat!(
            "{{\"scenario\":{{\"gateways\":{},\"devices\":{},\"sim_duration_s\":{},",
            "\"attacked\":{}}},",
            "\"ingest\":{{\"uplinks_per_s\":{:.1},\"p50_us\":{},\"p99_us\":{}}},",
            "\"stage_latency_ns\":{{{}}},",
            "\"commit_latency_ns\":{},",
            "\"verdicts\":{{\"accept\":{},\"replay\":{},\"reject\":{}}},",
            "\"detection\":{{\"true_positives\":{},\"false_positives\":{},",
            "\"false_negatives\":{},\"true_negatives\":{},\"accuracy\":{:.4}}},",
            "\"store\":{{\"wal_appends\":{},\"fsyncs\":{},\"segment_rotations\":{}}},",
            "\"net\":{{\"datagrams\":{},\"groups_committed\":{}}},",
            "\"checks\":{{\"failures\":[{}]}},",
            "\"scrapes\":{{\"mid\":{},\"final\":{}}}}}"
        ),
        args.gateways,
        args.devices,
        args.sim_duration_s,
        args.attack_at_s.is_some(),
        load_report.uplinks_per_s,
        load_report.ack_latency.p50_us,
        load_report.ack_latency.p99_us,
        stage_json.join(","),
        histogram_json(&fin_snapshot, "server_commit_ns", &[("shard", "0")]),
        fin_snapshot
            .find_with("server_verdicts_total", &[("verdict", "accept")])
            .and_then(|s| s.value.as_counter())
            .unwrap_or(0),
        fin_snapshot
            .find_with("server_verdicts_total", &[("verdict", "replay")])
            .and_then(|s| s.value.as_counter())
            .unwrap_or(0),
        fin_snapshot
            .find_with("server_verdicts_total", &[("verdict", "reject")])
            .and_then(|s| s.value.as_counter())
            .unwrap_or(0),
        d.true_positives,
        d.false_positives,
        d.false_negatives,
        d.true_negatives,
        accuracy,
        fin_snapshot
            .find("store_wal_append_ns")
            .and_then(|s| s.value.as_histogram())
            .map_or(0, |h| h.count),
        fin_snapshot.counter_sum("store_fsyncs_total"),
        fin_snapshot.counter_sum("store_segment_rotations_total"),
        fin_snapshot.counter_sum("net_datagrams_total"),
        fin_snapshot.counter_sum("net_groups_committed_total"),
        failures.iter().map(|f| format!("\"{f}\"")).collect::<Vec<_>>().join(","),
        mid_snapshot.to_json(),
        fin_snapshot.to_json(),
    );
    if let Some(path) = &args.out {
        std::fs::write(path, &json)?;
    }
    if !args.quiet {
        eprintln!(
            "telemetry_report: {} series in final scrape, {} exposition lines, {} check failures",
            fin_snapshot.series.len(),
            text.lines().count(),
            failures.len()
        );
    }
    println!("{json}");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("telemetry_report: CHECK FAILED: {f}");
        }
        std::process::exit(1);
    }
    Ok(())
}
