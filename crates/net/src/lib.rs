//! The network server's wire-protocol front door.
//!
//! Everything upstream of this crate feeds uplinks to
//! [`softlora::NetworkServer`] through in-process calls. This crate puts
//! the verdict pipeline behind an actual socket:
//!
//! * [`protocol`] — a Semtech-UDP-style binary gateway protocol:
//!   versioned, CRC-framed datagrams (`PUSH_DATA` uplink batches,
//!   `PUSH_ACK`, `PULL_DATA` keepalives, a `STATS` query) built on
//!   `softlora-store`'s [`Encoder`]/[`Decoder`] discipline;
//! * [`listener`] — [`listener::NetServer`], a UDP/loopback listener that
//!   accepts frames from many simulated gateways, reassembles per-uplink
//!   copy groups in watermark order, and hands them to an off-thread
//!   commit worker — **bit-for-bit** identical to handing the same
//!   groups to `NetworkServer::process_batch` directly, with acks
//!   decoupled from commit latency;
//! * [`ingest`] — the pipelined-ingest machinery behind the listener: a
//!   pooled reassembly window ([`ingest::Reassembler`]) and the bounded
//!   SPSC commit handoff ([`ingest::CommitPipe`]);
//! * [`export`] — turns a simulated fleet's [`UplinkDeliveries`] stream
//!   into per-gateway wire streams (what each gateway would have sent);
//! * [`loadgen`] — a thread-per-gateway load generator replaying those
//!   streams against a live listener, measuring sustained throughput and
//!   p50/p99/p999 ingest latency, with a JSON artifact for CI.
//!
//! The `loadgen` **binary** wires all of it together: simulate a fleet
//! (optionally under the frame-delay attack), start an in-process
//! listener, replay the traffic from N concurrent gateway sockets, and
//! report.
//!
//! [`Encoder`]: softlora_store::Encoder
//! [`Decoder`]: softlora_store::Decoder
//! [`UplinkDeliveries`]: softlora_sim::UplinkDeliveries

#![warn(missing_docs)]

pub mod export;
pub mod ingest;
pub mod listener;
pub mod loadgen;
pub mod protocol;

pub use export::gateway_streams;
pub use ingest::{CommitPipe, CommitSink, CommitTelemetry, CopyHeader, Reassembler};
pub use listener::{NetRunReport, NetServer, NetServerConfig};
pub use loadgen::{
    LatencySummary, LoadgenConfig, LoadgenReport, SweepPoint, SweepReport, SWEEP_P99_BUDGET_US,
};
pub use protocol::{
    decode_frame, encode_frame, Frame, NetCounters, PushData, ServerRole, WireBlockStats,
    WireDelivery, WireRuntime, WireStats, WireUplink,
};

use softlora_store::CodecError;

/// Everything that can go wrong on the wire path.
#[derive(Debug)]
pub enum NetError {
    /// A primitive failed to decode (truncated buffer, bad presence byte).
    Codec(CodecError),
    /// The datagram was too short to hold even the fixed header + CRC.
    TooShort {
        /// Bytes in the datagram.
        len: usize,
    },
    /// The magic bytes did not identify a softlora-net datagram.
    BadMagic {
        /// The first two bytes, little-endian.
        found: u16,
    },
    /// The protocol version byte is unknown.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// The frame-type byte is unknown.
    BadFrameType {
        /// The type byte found.
        found: u8,
    },
    /// The trailing CRC-32 did not match the frame bytes.
    BadCrc {
        /// CRC computed over the frame bytes.
        expected: u32,
        /// CRC carried by the datagram.
        found: u32,
    },
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes {
        /// Undecoded byte count.
        remaining: usize,
    },
    /// A delivery carried a spreading factor outside 6..=12.
    BadSpreadingFactor {
        /// The value found.
        found: u8,
    },
    /// A metrics snapshot carried a histogram bucket index outside the
    /// fixed log2 bucket range.
    BadBucketIndex {
        /// The bucket index found.
        found: u8,
    },
    /// A socket operation failed.
    Io(std::io::Error),
    /// The server tail failed while committing a batch.
    Server(softlora::SoftLoraError),
    /// The peer never acknowledged a datagram within the retry budget.
    AckTimeout {
        /// Gateway that gave up.
        gateway: u32,
        /// Sequence number of the unacknowledged datagram.
        seq: u64,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Codec(e) => write!(f, "codec error: {e}"),
            NetError::TooShort { len } => write!(f, "datagram too short: {len} bytes"),
            NetError::BadMagic { found } => write!(f, "bad magic {found:#06x}"),
            NetError::BadVersion { found } => write!(f, "unknown protocol version {found}"),
            NetError::BadFrameType { found } => write!(f, "unknown frame type {found:#04x}"),
            NetError::BadCrc { expected, found } => {
                write!(f, "CRC mismatch: computed {expected:#010x}, datagram carried {found:#010x}")
            }
            NetError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after payload")
            }
            NetError::BadSpreadingFactor { found } => {
                write!(f, "spreading factor {found} outside 6..=12")
            }
            NetError::BadBucketIndex { found } => {
                write!(f, "histogram bucket index {found} outside the log2 bucket range")
            }
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Server(e) => write!(f, "server error: {e}"),
            NetError::AckTimeout { gateway, seq } => {
                write!(f, "gateway {gateway}: datagram seq {seq} never acknowledged")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Codec(e) => Some(e),
            NetError::Io(e) => Some(e),
            NetError::Server(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<softlora::SoftLoraError> for NetError {
    fn from(e: softlora::SoftLoraError) -> Self {
        NetError::Server(e)
    }
}
