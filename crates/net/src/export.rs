//! Scenario → wire export: what each gateway of a simulated fleet would
//! have put on the wire.
//!
//! The simulator hands scenarios a stream of [`UplinkDeliveries`] groups
//! — all copies of one transmission across the fleet, in arrival order.
//! [`gateway_streams`] splits that stream into per-gateway sequences of
//! [`WireUplink`]s, preserving each copy's position inside its group
//! (`copy_index`) so a listener reassembling the groups reproduces the
//! original copy order bit-for-bit.
//!
//! Groups no gateway heard still matter to the server (they count as
//! `not_received` on the owning shard), so gateway 0 doubles as the
//! fleet's designated reporter: it forwards an empty-group marker for
//! every such uplink.

use crate::protocol::{WireDelivery, WireUplink};
use softlora_sim::UplinkDeliveries;

/// Splits a fleet group stream into one wire stream per gateway.
///
/// Each returned stream is ordered by uplink id (the input order). A
/// group's copies keep their original index via
/// [`WireUplink::copy_index`]; empty groups become a marker on gateway
/// 0's stream.
///
/// # Panics
///
/// Panics if a copy references a gateway ≥ `gateway_count`.
pub fn gateway_streams(groups: &[UplinkDeliveries], gateway_count: usize) -> Vec<Vec<WireUplink>> {
    assert!(gateway_count > 0, "a fleet needs at least one gateway");
    let mut streams: Vec<Vec<WireUplink>> = vec![Vec::new(); gateway_count];
    for group in groups {
        if group.copies.is_empty() {
            streams[0].push(WireUplink {
                uplink: group.uplink,
                dev_addr: group.dev_addr,
                tx_start_global_s: group.tx_start_global_s,
                airtime_s: group.airtime_s,
                copies_total: 0,
                copy_index: 0,
                delivery: None,
            });
            continue;
        }
        let copies_total =
            u16::try_from(group.copies.len()).expect("more than 65535 copies of one uplink");
        for (index, copy) in group.copies.iter().enumerate() {
            assert!(
                copy.gateway < gateway_count,
                "copy for gateway {} but the fleet has {gateway_count}",
                copy.gateway
            );
            streams[copy.gateway].push(WireUplink {
                uplink: group.uplink,
                dev_addr: group.dev_addr,
                tx_start_global_s: group.tx_start_global_s,
                airtime_s: group.airtime_s,
                copies_total,
                copy_index: index as u16,
                delivery: Some(WireDelivery::from_delivery(&copy.delivery)),
            });
        }
    }
    streams
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_phy::params::SpreadingFactor;
    use softlora_sim::{Delivery, FleetDelivery};

    fn delivery(arrival: f64) -> Delivery {
        Delivery {
            bytes: vec![1, 2, 3],
            dev_addr: 0x10,
            arrival_global_s: arrival,
            snr_db: 5.0,
            carrier_bias_hz: 100.0,
            carrier_phase: 0.25,
            sf: SpreadingFactor::Sf7,
            jamming: None,
            is_replay: false,
        }
    }

    #[test]
    fn copies_split_by_gateway_with_indices() {
        let groups = vec![
            UplinkDeliveries {
                uplink: 0,
                dev_addr: 0x10,
                tx_start_global_s: 1.0,
                airtime_s: 0.06,
                copies: vec![
                    FleetDelivery { gateway: 1, delivery: delivery(1.1) },
                    FleetDelivery { gateway: 0, delivery: delivery(1.2) },
                ],
            },
            UplinkDeliveries {
                uplink: 1,
                dev_addr: 0x11,
                tx_start_global_s: 2.0,
                airtime_s: 0.06,
                copies: vec![],
            },
        ];
        let streams = gateway_streams(&groups, 2);
        assert_eq!(streams[1].len(), 1);
        assert_eq!(streams[1][0].copy_index, 0);
        assert_eq!(streams[1][0].copies_total, 2);
        // Gateway 0 carries its own copy plus the empty-group marker.
        assert_eq!(streams[0].len(), 2);
        assert_eq!(streams[0][0].copy_index, 1);
        assert_eq!(streams[0][1].copies_total, 0);
        assert!(streams[0][1].delivery.is_none());
    }
}
