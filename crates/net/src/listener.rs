//! The socket front door: a UDP listener feeding the sharded server tail.
//!
//! [`NetServer`] owns a [`NetworkServer`] and two sockets:
//!
//! * the **data** socket receives gateway traffic (`PUSH_DATA` batches,
//!   `PULL_DATA` keepalives) and acks every accepted datagram;
//! * the **ctrl** socket answers `STATS_REQ` with live counters,
//!   `METRICS_REQ` with a full process-wide telemetry snapshot, and
//!   accepts `SHUTDOWN` — the FutureSDR `ctrl_port` idea in datagram
//!   form.
//!
//! # Pipelined ingest
//!
//! The poll thread only does cheap work: receive, decode, dedup, ack,
//! reassemble ([`crate::ingest::Reassembler`]). Watermark-released
//! groups are handed over a bounded SPSC ring to a dedicated **commit
//! worker** ([`crate::ingest::CommitPipe`]) that drives
//! [`NetworkServer::process_batch`] off-thread, so ack latency no
//! longer includes the sharded commit. Acks carry the worker's
//! published commit watermark (`committed`, protocol version 3), which
//! is how a gateway — or the load generator measuring end-to-end commit
//! latency — observes the pipeline catching up. Backpressure is
//! explicit: a full handoff ring stalls the poll thread in bounded,
//! counted ticks (`net_commit_stalls_total`) rather than growing
//! memory, and shutdown drains both the reassembly window and the
//! handoff queue before the report is assembled.
//!
//! Wire counters live in the process-wide [`softlora_telemetry`]
//! registry as `net_*` series (labeled with a per-listener instance id),
//! so a `METRICS_REQ` scrape sees them next to the server tail's commit
//! latencies and the store's WAL counters — including the new pipeline
//! series `net_commit_queue_depth` and `net_commit_batch_size`. The
//! [`NetCounters`] struct remains the stable report/ctrl-protocol view,
//! rebuilt from the registry handles on demand.
//!
//! # Bit-for-bit ingestion
//!
//! The server's batch path is order-sensitive: per-gateway frame indices
//! (which seed all front-half randomness) are assigned in group-copy
//! arrival order. The listener therefore reassembles network arrivals
//! back into the canonical order before committing anything:
//!
//! 1. every copy carries its group's uplink id and its position inside
//!    the group (`copy_index`), so groups reassemble with their original
//!    internal copy order regardless of datagram arrival order;
//! 2. every gateway datagram carries a **watermark** — a promise that
//!    the gateway will never again send a copy with uplink id < w. The
//!    listener only releases groups strictly below the *fleet minimum*
//!    watermark, in ascending uplink order, so no late copy can arrive
//!    for a released group;
//! 3. released groups flow through the SPSC handoff into
//!    [`NetworkServer::process_batch`] in worker-sized batches. The ring
//!    preserves the release order and batch boundaries don't affect
//!    results (the server's sub-batch ≡ big-batch invariant), so the
//!    wire path's verdicts, statistics and persisted state are
//!    bit-for-bit those of handing the whole stream to `process_batch`
//!    directly — commit merely happens on another thread.
//!
//! Duplicated datagrams are re-acked but not re-processed (per-gateway
//! sequence tracking); malformed datagrams are counted and dropped —
//! the listener never panics on wire input.

use crate::ingest::{CommitPipe, CommitTelemetry, CopyHeader, Reassembler, ServerSink, Stash};
use crate::protocol::{
    decode_frame, encode_frame_into, Frame, NetCounters, PushData, ServerRole, WireRuntime,
    WireStats, WireUplink,
};
use crate::NetError;
use softlora::{NetworkServer, ServerVerdict};
use softlora_sim::{FleetDelivery, UplinkDeliveries};
use softlora_telemetry::{Counter, Gauge, Histogram};
use std::collections::HashSet;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Address to bind the data socket on (port 0 = ephemeral).
    pub data_bind: SocketAddr,
    /// Address to bind the ctrl socket on (port 0 = ephemeral).
    pub ctrl_bind: SocketAddr,
    /// Handoff cadence: ready groups are released to the commit worker at
    /// least this often (the recv timeout, so also the ctrl poll period).
    pub poll_interval: Duration,
    /// Bound on one commit batch: the worker pops at most this many
    /// groups per `process_batch` call, and the poll thread releases
    /// early once this many are ready.
    pub max_batch_groups: usize,
    /// Bound on the reassembly buffer: when a new uplink id needs a
    /// window position past this many pending groups, the oldest are
    /// force-released even if incomplete. Ids more than twice this bound
    /// ahead of the window are rejected as forged/corrupt.
    pub max_pending_groups: usize,
    /// A pending group older than this is committed with the copies that
    /// arrived (counted in [`NetCounters::incomplete_groups`]).
    pub straggler_timeout: Duration,
    /// Keep every committed verdict in the run report. Costs memory
    /// proportional to the run; turn off for unbounded soak runs.
    pub record_verdicts: bool,
    /// Stop serving after this long without any data datagram. A safety
    /// net for CI smoke runs; `None` serves until `SHUTDOWN`.
    pub idle_shutdown: Option<Duration>,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            data_bind: "127.0.0.1:0".parse().expect("loopback literal"),
            ctrl_bind: "127.0.0.1:0".parse().expect("loopback literal"),
            poll_interval: Duration::from_millis(5),
            max_batch_groups: 512,
            max_pending_groups: 1 << 16,
            straggler_timeout: Duration::from_secs(2),
            record_verdicts: true,
            idle_shutdown: None,
        }
    }
}

/// What a finished listener run hands back.
pub struct NetRunReport {
    /// Final wire counters.
    pub counters: NetCounters,
    /// Every committed `(uplink id, verdict)`, in commit order (empty
    /// when [`NetServerConfig::record_verdicts`] is off).
    pub verdicts: Vec<(u64, ServerVerdict)>,
    /// The server tail, for post-run inspection (stats, FB database,
    /// persistence flush).
    pub server: NetworkServer,
}

/// Per-gateway wire state.
struct GatewayTrack {
    /// Highest watermark promised so far (`None` until first contact —
    /// nothing fleet-wide can commit before every gateway has spoken).
    watermark: Option<u64>,
    highest_seq: Option<u64>,
    /// Recently processed datagram seqs, for duplicate suppression.
    seen: HashSet<u64>,
}

/// How many datagram seqs per gateway the duplicate filter remembers.
const SEQ_WINDOW: u64 = 4096;

/// A seq further than this ahead of the gateway's highest seen (or of 0
/// at first contact — gateways count from 0) is forged or corrupt:
/// accepting it would pin `highest_seq` near `u64::MAX` and evict every
/// real seq from the duplicate filter.
const SEQ_FUTURE_BOUND: u64 = 1 << 20;

/// Outcome of filing one datagram seq with [`GatewayTrack::register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeqCheck {
    /// Already processed: re-ack, don't re-process.
    Duplicate,
    /// Implausibly far ahead of anything seen — reject the datagram.
    FarFuture,
    /// New; `out_of_order` if below the highest seq seen.
    Fresh { out_of_order: bool },
}

impl GatewayTrack {
    fn new() -> Self {
        GatewayTrack { watermark: None, highest_seq: None, seen: HashSet::new() }
    }

    /// Registers a datagram seq.
    fn register(&mut self, seq: u64) -> SeqCheck {
        if self.seen.contains(&seq) {
            return SeqCheck::Duplicate;
        }
        if seq > self.highest_seq.unwrap_or(0).saturating_add(SEQ_FUTURE_BOUND) {
            return SeqCheck::FarFuture;
        }
        let out_of_order = self.highest_seq.is_some_and(|h| seq < h);
        self.seen.insert(seq);
        let highest = self.highest_seq.map_or(seq, |h| h.max(seq));
        self.highest_seq = Some(highest);
        if self.seen.len() as u64 > 2 * SEQ_WINDOW {
            self.seen.retain(|&s| s >= highest.saturating_sub(SEQ_WINDOW));
        }
        SeqCheck::Fresh { out_of_order }
    }

    fn advance_watermark(&mut self, watermark: u64) {
        self.watermark = Some(self.watermark.map_or(watermark, |w| w.max(watermark)));
    }
}

/// Registry-backed listener counters: one `net_*` series per
/// [`NetCounters`] field plus the commit-pipeline series, each labeled
/// with this listener's instance id so several listeners in one process
/// keep exact per-instance counts while the process-wide registry stays
/// the single source of truth.
struct NetMetrics {
    datagrams: Counter,
    push_data: Counter,
    keepalives: Counter,
    acks_sent: Counter,
    rejected_magic: Counter,
    rejected_version: Counter,
    rejected_type: Counter,
    rejected_crc: Counter,
    rejected_truncated: Counter,
    rejected_other: Counter,
    duplicate_datagrams: Counter,
    out_of_order_datagrams: Counter,
    copies_received: Counter,
    stale_copies: Counter,
    duplicate_copies: Counter,
    incomplete_groups: Counter,
    groups_committed: Counter,
    batches: Counter,
    /// Handoff-ring occupancy, updated by both ends of the pipe.
    commit_queue_depth: Gauge,
    /// Groups per off-thread commit batch.
    commit_batch_size: Histogram,
    /// Bounded poll-thread stalls against a full handoff ring.
    commit_stalls: Counter,
}

impl NetMetrics {
    fn new() -> Self {
        static INSTANCE: AtomicU64 = AtomicU64::new(0);
        let id = INSTANCE.fetch_add(1, Ordering::Relaxed).to_string();
        let registry = softlora_telemetry::global();
        let counter = |name: &str| registry.counter_with(name, &[("listener", id.as_str())]);
        let rejected = |reason: &str| {
            registry.counter_with(
                "net_rejected_total",
                &[("listener", id.as_str()), ("reason", reason)],
            )
        };
        NetMetrics {
            datagrams: counter("net_datagrams_total"),
            push_data: counter("net_push_data_total"),
            keepalives: counter("net_keepalives_total"),
            acks_sent: counter("net_acks_sent_total"),
            rejected_magic: rejected("magic"),
            rejected_version: rejected("version"),
            rejected_type: rejected("type"),
            rejected_crc: rejected("crc"),
            rejected_truncated: rejected("truncated"),
            rejected_other: rejected("other"),
            duplicate_datagrams: counter("net_duplicate_datagrams_total"),
            out_of_order_datagrams: counter("net_out_of_order_datagrams_total"),
            copies_received: counter("net_copies_received_total"),
            stale_copies: counter("net_stale_copies_total"),
            duplicate_copies: counter("net_duplicate_copies_total"),
            incomplete_groups: counter("net_incomplete_groups_total"),
            groups_committed: counter("net_groups_committed_total"),
            batches: counter("net_batches_total"),
            commit_queue_depth: registry
                .gauge_with("net_commit_queue_depth", &[("listener", id.as_str())]),
            commit_batch_size: registry
                .histogram_with("net_commit_batch_size", &[("listener", id.as_str())]),
            commit_stalls: counter("net_commit_stalls_total"),
        }
    }

    /// The handle bundle the commit worker updates (all handles are
    /// cheap clones onto the same registry series).
    fn commit_telemetry(&self) -> CommitTelemetry {
        CommitTelemetry {
            batches: self.batches.clone(),
            groups_committed: self.groups_committed.clone(),
            queue_depth: self.commit_queue_depth.clone(),
            batch_size: self.commit_batch_size.clone(),
            stalls: self.commit_stalls.clone(),
        }
    }

    /// The stable protocol/report view, read back out of the handles.
    fn counters(&self) -> NetCounters {
        NetCounters {
            datagrams: self.datagrams.get(),
            push_data: self.push_data.get(),
            keepalives: self.keepalives.get(),
            acks_sent: self.acks_sent.get(),
            rejected_magic: self.rejected_magic.get(),
            rejected_version: self.rejected_version.get(),
            rejected_type: self.rejected_type.get(),
            rejected_crc: self.rejected_crc.get(),
            rejected_truncated: self.rejected_truncated.get(),
            rejected_other: self.rejected_other.get(),
            duplicate_datagrams: self.duplicate_datagrams.get(),
            out_of_order_datagrams: self.out_of_order_datagrams.get(),
            copies_received: self.copies_received.get(),
            stale_copies: self.stale_copies.get(),
            duplicate_copies: self.duplicate_copies.get(),
            incomplete_groups: self.incomplete_groups.get(),
            groups_committed: self.groups_committed.get(),
            batches: self.batches.get(),
        }
    }
}

/// The listening front door around a [`NetworkServer`].
pub struct NetServer {
    /// The server tail, shared with the commit worker. The poll thread
    /// locks it only for cold ctrl queries (stats/role); every commit
    /// happens on the worker.
    server: Arc<Mutex<NetworkServer>>,
    pipe: CommitPipe,
    config: NetServerConfig,
    data: UdpSocket,
    ctrl: UdpSocket,
    gateways: Vec<GatewayTrack>,
    reassembler: Reassembler,
    /// Highest uplink id handed to the commit worker so far.
    last_offered: Option<u64>,
    metrics: NetMetrics,
    scratch: softlora_store::Encoder,
    batch: Vec<UplinkDeliveries>,
}

impl NetServer {
    /// Binds the data + ctrl sockets around a built server and spawns
    /// the commit worker.
    ///
    /// # Errors
    ///
    /// Socket bind/configuration failures.
    pub fn bind(server: NetworkServer, config: NetServerConfig) -> Result<Self, NetError> {
        let data = UdpSocket::bind(config.data_bind)?;
        data.set_read_timeout(Some(config.poll_interval))?;
        let ctrl = UdpSocket::bind(config.ctrl_bind)?;
        ctrl.set_nonblocking(true)?;
        let gateways = (0..server.gateway_count()).map(|_| GatewayTrack::new()).collect();
        let metrics = NetMetrics::new();
        let server = Arc::new(Mutex::new(server));
        let pipe = CommitPipe::spawn(
            ServerSink(Arc::clone(&server)),
            config.max_batch_groups,
            config.record_verdicts,
            metrics.commit_telemetry(),
        );
        let reassembler = Reassembler::new(config.straggler_timeout, config.max_pending_groups);
        Ok(NetServer {
            server,
            pipe,
            config,
            data,
            ctrl,
            gateways,
            reassembler,
            last_offered: None,
            metrics,
            scratch: softlora_store::Encoder::new(),
            batch: Vec::new(),
        })
    }

    /// The bound data-socket address gateways should send to.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn data_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.data.local_addr()?)
    }

    /// The bound ctrl-socket address for stats/shutdown.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn ctrl_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.ctrl.local_addr()?)
    }

    /// Serves until `SHUTDOWN` (or the idle timeout), then drains the
    /// commit pipeline and returns the final counters, verdicts and the
    /// server tail.
    ///
    /// # Errors
    ///
    /// Socket failures and server-tail commit failures (the latter
    /// surface when the pipeline is drained). Malformed wire input is
    /// **not** an error — it is counted and dropped.
    pub fn run(mut self) -> Result<NetRunReport, NetError> {
        let mut buf = vec![0u8; 65_535];
        let mut last_flush = Instant::now();
        let mut last_datagram = Instant::now();
        loop {
            // Reclaim group shells the commit worker is done with, so
            // the warm path stays allocation-free.
            while let Some(group) = self.pipe.pop_recycled() {
                self.reassembler.recycle(group);
            }
            match self.data.recv_from(&mut buf) {
                Ok((len, from)) => {
                    last_datagram = Instant::now();
                    self.handle_data(&buf[..len], from)?;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => return Err(NetError::Io(e)),
            }

            if let Some(shutdown_ack) = self.poll_ctrl()? {
                self.flush(true);
                // Wait for the commit worker to drain what the final
                // flush handed it, so the ack's watermark covers every
                // group the fleet will ever see committed.
                self.sync_commits(None);
                let (token, from) = shutdown_ack;
                let committed = self.pipe.committed();
                self.send_ctrl(&Frame::PullAck { gateway: 0, seq: token, committed }, from)?;
                break;
            }
            if let Some(idle) = self.config.idle_shutdown {
                if last_datagram.elapsed() >= idle {
                    self.flush(true);
                    break;
                }
            }

            let ready = self.reassembler.ready_count(self.barrier());
            if ready >= self.config.max_batch_groups
                || (last_flush.elapsed() >= self.config.poll_interval && ready > 0)
                || self.reassembler.spilled_len() > 0
            {
                self.flush(false);
                last_flush = Instant::now();
            }
        }
        // Drain the worker: a commit failure it hit surfaces here.
        let log = self.pipe.finish()?;
        let server = Arc::try_unwrap(self.server)
            .unwrap_or_else(|_| panic!("commit worker still holds the server"))
            .into_inner()
            .expect("network server poisoned");
        Ok(NetRunReport { counters: self.metrics.counters(), verdicts: log.verdicts, server })
    }

    /// The fleet-wide commit barrier: the minimum watermark across all
    /// gateways, or `None` until every gateway has reported one.
    fn barrier(&self) -> Option<u64> {
        self.gateways.iter().map(|g| g.watermark).min().flatten()
    }

    fn handle_data(&mut self, bytes: &[u8], from: SocketAddr) -> Result<(), NetError> {
        self.metrics.datagrams.inc();
        let frame = match decode_frame(bytes) {
            Ok(frame) => frame,
            Err(e) => {
                self.count_rejection(&e);
                return Ok(());
            }
        };
        match frame {
            Frame::PushData(push) => {
                let PushData { gateway, seq, watermark, uplinks } = push;
                let Some(track) = self.gateways.get_mut(gateway as usize) else {
                    self.metrics.rejected_other.inc();
                    return Ok(());
                };
                match track.register(seq) {
                    SeqCheck::FarFuture => {
                        // Forged/corrupt seq: drop the whole datagram
                        // before it can poison the dedup state or the
                        // watermark.
                        self.metrics.rejected_other.inc();
                        return Ok(());
                    }
                    SeqCheck::Duplicate => {
                        track.advance_watermark(watermark);
                        self.metrics.duplicate_datagrams.inc();
                    }
                    SeqCheck::Fresh { out_of_order } => {
                        track.advance_watermark(watermark);
                        if out_of_order {
                            self.metrics.out_of_order_datagrams.inc();
                        }
                        self.metrics.push_data.inc();
                        for uplink in uplinks {
                            self.stash(gateway as usize, uplink);
                        }
                    }
                }
                let committed = self.pipe.committed();
                self.send_data(&Frame::PushAck { gateway, seq, committed }, from)?;
            }
            Frame::PullData { gateway, seq, watermark } => {
                let Some(track) = self.gateways.get_mut(gateway as usize) else {
                    self.metrics.rejected_other.inc();
                    return Ok(());
                };
                match track.register(seq) {
                    SeqCheck::FarFuture => {
                        self.metrics.rejected_other.inc();
                        return Ok(());
                    }
                    SeqCheck::Duplicate => {
                        track.advance_watermark(watermark);
                        self.metrics.duplicate_datagrams.inc();
                    }
                    SeqCheck::Fresh { .. } => {
                        track.advance_watermark(watermark);
                        self.metrics.keepalives.inc();
                    }
                }
                let committed = self.pipe.committed();
                self.send_data(&Frame::PullAck { gateway, seq, committed }, from)?;
            }
            // Anything else is not gateway traffic; count it as noise.
            _ => self.metrics.rejected_other.inc(),
        }
        Ok(())
    }

    /// Files one wire uplink copy into the reassembly window.
    fn stash(&mut self, gateway: usize, uplink: WireUplink) {
        self.metrics.copies_received.inc();
        let header = CopyHeader {
            uplink: uplink.uplink,
            dev_addr: uplink.dev_addr,
            tx_start_global_s: uplink.tx_start_global_s,
            airtime_s: uplink.airtime_s,
            copies_total: uplink.copies_total,
            copy_index: uplink.copy_index,
        };
        let copy = match uplink.delivery {
            // Empty-group marker: the window entry itself is the
            // information.
            None => None,
            Some(wire) => match wire.to_delivery() {
                Ok(delivery) => Some(FleetDelivery { gateway, delivery }),
                Err(_) => {
                    // Undecodable payload: count it, but still register
                    // the group so its metadata is not lost.
                    self.metrics.rejected_other.inc();
                    None
                }
            },
        };
        match self.reassembler.stash(&header, copy) {
            Stash::Filed => {}
            Stash::Stale => self.metrics.stale_copies.inc(),
            Stash::DuplicateCopy => self.metrics.duplicate_copies.inc(),
            Stash::BadCopyIndex | Stash::FarFuture => self.metrics.rejected_other.inc(),
        }
    }

    /// Releases every group that is safe to commit, in ascending uplink
    /// order, to the commit worker. `drain` (shutdown) releases the
    /// whole reassembly window regardless of watermarks.
    fn flush(&mut self, drain: bool) {
        self.batch.clear();
        let tally = self.reassembler.drain_ready(self.barrier(), drain, &mut self.batch);
        self.metrics.incomplete_groups.add(tally.incomplete as u64);
        if self.batch.is_empty() {
            return;
        }
        self.last_offered = self.batch.last().map(|g| g.uplink);
        for group in self.batch.drain(..) {
            self.pipe.offer(group);
        }
        self.pipe.kick();
    }

    /// Waits for the commit worker to catch up with everything released
    /// so far, so ctrl stats read deterministically — exactly what the
    /// old synchronous flush guaranteed. `cap` bounds the wait for live
    /// ctrl queries; `None` (shutdown) waits for the full drain — the
    /// ring is bounded, so the wait is bounded by the remaining work —
    /// unless the worker already died on a commit failure (the watermark
    /// can then never advance; the error surfaces at `finish`).
    fn sync_commits(&self, cap: Option<Duration>) {
        let Some(last) = self.last_offered else { return };
        let deadline = cap.map(|c| Instant::now() + c);
        while self.pipe.committed() <= last && !self.pipe.worker_finished() {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                break;
            }
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    /// Drains the ctrl socket; returns the shutdown token + requester
    /// when a `SHUTDOWN` arrived.
    fn poll_ctrl(&mut self) -> Result<Option<(u64, SocketAddr)>, NetError> {
        let mut buf = [0u8; 2048];
        loop {
            match self.ctrl.recv_from(&mut buf) {
                Ok((len, from)) => match decode_frame(&buf[..len]) {
                    Ok(Frame::StatsReq { token }) => {
                        self.sync_commits(Some(Duration::from_secs(2)));
                        let stats = {
                            let server = self.server.lock().expect("network server poisoned");
                            WireStats {
                                counters: self.metrics.counters(),
                                server: server.stats(),
                                detection: server.detection_stats(),
                                runtime: WireRuntime::from_registry(
                                    &softlora_telemetry::global().snapshot(),
                                ),
                            }
                        };
                        self.send_ctrl(&Frame::StatsResp { token, stats }, from)?;
                    }
                    Ok(Frame::MetricsReq { token }) => {
                        self.sync_commits(Some(Duration::from_secs(2)));
                        let snapshot = softlora_telemetry::global().snapshot();
                        self.send_ctrl(&Frame::MetricsResp { token, snapshot }, from)?;
                    }
                    Ok(Frame::Shutdown { token }) => return Ok(Some((token, from))),
                    Ok(Frame::RoleReq { token }) => {
                        let epoch = {
                            let server = self.server.lock().expect("network server poisoned");
                            server.epoch().map_err(NetError::Server)?
                        };
                        let resp = Frame::RoleResp { token, role: ServerRole::Primary, epoch };
                        self.send_ctrl(&resp, from)?;
                    }
                    Ok(Frame::Promote { token, epoch }) => {
                        // A listener always fronts a committing (primary)
                        // tail; `PROMOTE` here just advances the fencing
                        // epoch so a deposed predecessor's shipped frames
                        // are refused from now on. An epoch regression is
                        // reported as the current role/epoch unchanged.
                        let epoch = {
                            let server = self.server.lock().expect("network server poisoned");
                            let _ = server.set_epoch(epoch);
                            server.epoch().map_err(NetError::Server)?
                        };
                        let resp = Frame::RoleResp { token, role: ServerRole::Primary, epoch };
                        self.send_ctrl(&resp, from)?;
                    }
                    Ok(_) => self.metrics.rejected_other.inc(),
                    Err(e) => self.count_rejection(&e),
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    fn count_rejection(&mut self, e: &NetError) {
        match e {
            NetError::BadMagic { .. } => self.metrics.rejected_magic.inc(),
            NetError::BadVersion { .. } => self.metrics.rejected_version.inc(),
            NetError::BadFrameType { .. } => self.metrics.rejected_type.inc(),
            NetError::BadCrc { .. } => self.metrics.rejected_crc.inc(),
            NetError::TooShort { .. } | NetError::TrailingBytes { .. } | NetError::Codec(_) => {
                self.metrics.rejected_truncated.inc();
            }
            _ => self.metrics.rejected_other.inc(),
        }
    }

    fn send_data(&mut self, frame: &Frame, to: SocketAddr) -> Result<(), NetError> {
        self.scratch.clear();
        encode_frame_into(frame, &mut self.scratch);
        self.data.send_to(self.scratch.as_bytes(), to)?;
        self.metrics.acks_sent.inc();
        Ok(())
    }

    fn send_ctrl(&mut self, frame: &Frame, to: SocketAddr) -> Result<(), NetError> {
        self.scratch.clear();
        encode_frame_into(frame, &mut self.scratch);
        self.ctrl.send_to(self.scratch.as_bytes(), to)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_tracking_survives_forged_far_future_seqs() {
        let mut track = GatewayTrack::new();
        assert_eq!(track.register(0), SeqCheck::Fresh { out_of_order: false });
        // A forged seq near u64::MAX must neither overflow the prune
        // arithmetic nor pin `highest_seq`, which would evict every real
        // seq from the duplicate filter.
        assert_eq!(track.register(u64::MAX), SeqCheck::FarFuture);
        assert_eq!(track.register(u64::MAX - SEQ_WINDOW), SeqCheck::FarFuture);
        assert_eq!(track.highest_seq, Some(0));
        // Real traffic keeps deduplicating.
        assert_eq!(track.register(1), SeqCheck::Fresh { out_of_order: false });
        assert_eq!(track.register(1), SeqCheck::Duplicate);
        assert_eq!(track.register(0), SeqCheck::Duplicate);
    }

    #[test]
    fn first_contact_far_future_seq_rejected() {
        let mut track = GatewayTrack::new();
        // Gateways count seqs from 0; a first-contact seq beyond the
        // plausible bound is forged.
        assert_eq!(track.register(u64::MAX), SeqCheck::FarFuture);
        assert_eq!(track.highest_seq, None);
        assert_eq!(track.register(0), SeqCheck::Fresh { out_of_order: false });
    }

    #[test]
    fn seq_prune_keeps_the_recent_window() {
        let mut track = GatewayTrack::new();
        for seq in 0..=(2 * SEQ_WINDOW + 1) {
            assert_eq!(track.register(seq), SeqCheck::Fresh { out_of_order: false });
        }
        // The prune ran; recent seqs are still remembered, ancient ones
        // are forgotten (and would re-register as fresh-but-out-of-order
        // rather than poisoning anything).
        let highest = 2 * SEQ_WINDOW + 1;
        assert_eq!(track.register(highest), SeqCheck::Duplicate);
        assert_eq!(track.register(highest - SEQ_WINDOW + 1), SeqCheck::Duplicate);
        assert_eq!(track.register(0), SeqCheck::Fresh { out_of_order: true });
    }
}
