//! The gateway wire protocol: versioned, CRC-framed binary datagrams.
//!
//! Layout of every datagram (all integers little-endian, the codec rules
//! of [`softlora_store::codec`]):
//!
//! ```text
//! +--------+---------+------+-----------------+-------+
//! | magic  | version | type |     payload     | crc32 |
//! |  u16   |   u8    |  u8  |   type-defined  |  u32  |
//! +--------+---------+------+-----------------+-------+
//! ```
//!
//! The CRC-32 (IEEE, the store's [`crc32`]) covers everything before it.
//! Frame types mirror the Semtech UDP packet forwarder's vocabulary:
//!
//! | type | frame | direction | payload |
//! |---|---|---|---|
//! | `0x00` | `PUSH_DATA` | gateway → server | gateway id, seq, watermark, uplink-copy batch |
//! | `0x01` | `PUSH_ACK` | server → gateway | gateway id, seq, committed watermark |
//! | `0x02` | `PULL_DATA` | gateway → server | keepalive carrying the gateway's watermark |
//! | `0x03` | `PULL_ACK` | server → gateway | gateway id, seq, committed watermark |
//! | `0x04` | `STATS_REQ` | ctrl → server | opaque token |
//! | `0x05` | `STATS_RESP` | server → ctrl | token, live wire + server + detection + runtime counters |
//! | `0x06` | `SHUTDOWN` | ctrl → server | opaque token |
//! | `0x07` | `METRICS_REQ` | ctrl → server | opaque token |
//! | `0x08` | `METRICS_RESP` | server → ctrl | token, full telemetry registry snapshot |
//! | `0x09` | `ROLE_REQ` | ctrl → server | opaque token |
//! | `0x0A` | `ROLE_RESP` | server → ctrl | token, role byte, replication epoch |
//! | `0x0B` | `PROMOTE` | ctrl → server | token, epoch to fence the deposed primary at |
//!
//! Version 2 extends `STATS_RESP` with the runtime block section and adds
//! the `METRICS_REQ`/`METRICS_RESP` pair, which serializes the whole
//! process-wide [`softlora_telemetry`] registry — every counter, gauge
//! and log2-bucketed latency histogram — over the store codec.
//!
//! The `ROLE_REQ`/`ROLE_RESP`/`PROMOTE` trio is the ctrl plane of
//! `softlora-ha`'s failover: an operator (or orchestrator) asks a
//! listener which role its tail currently plays and at which replication
//! epoch, and tells a follower's listener to promote. These frames add
//! no payload encodings beyond existing primitives, so the version byte
//! stays 2 — old peers reject them cleanly as unknown types.
//!
//! Decoding never panics: every malformed input maps to a structured
//! [`NetError`] so the listener can count rejections instead of dying.

use crate::NetError;
use softlora::network_server::ServerStats;
use softlora::replay_detect::DetectionStats;
use softlora_phy::params::SpreadingFactor;
use softlora_phy::rn2483::JammingAttempt;
use softlora_sim::Delivery;
use softlora_store::codec::{crc32, CodecError, Decoder, Encoder};
use softlora_telemetry::{HistogramSnapshot, RegistrySnapshot, SeriesSnapshot, SeriesValue};

/// First two bytes of every datagram: `"SN"` on the wire.
pub const MAGIC: u16 = 0x4E53;

/// Protocol version this crate speaks. Version 2 added the runtime
/// section to `STATS_RESP` and the `METRICS_REQ`/`METRICS_RESP` pair;
/// version 3 added the `committed` watermark to `PUSH_ACK`/`PULL_ACK`
/// so gateways learn how far the off-thread commit pipeline has durably
/// advanced, independent of ack latency.
pub const VERSION: u8 = 3;

/// Bytes of fixed overhead around the payload: magic + version + type
/// up front, CRC-32 behind.
pub const HEADER_LEN: usize = 4;
/// Trailing CRC length.
pub const TRAILER_LEN: usize = 4;

const TYPE_PUSH_DATA: u8 = 0x00;
const TYPE_PUSH_ACK: u8 = 0x01;
const TYPE_PULL_DATA: u8 = 0x02;
const TYPE_PULL_ACK: u8 = 0x03;
const TYPE_STATS_REQ: u8 = 0x04;
const TYPE_STATS_RESP: u8 = 0x05;
const TYPE_SHUTDOWN: u8 = 0x06;
const TYPE_METRICS_REQ: u8 = 0x07;
const TYPE_METRICS_RESP: u8 = 0x08;
const TYPE_ROLE_REQ: u8 = 0x09;
const TYPE_ROLE_RESP: u8 = 0x0A;
const TYPE_PROMOTE: u8 = 0x0B;

/// The replication role a listener's server tail currently plays, as
/// carried in `ROLE_RESP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerRole {
    /// This tail commits uplinks itself (and may ship its WAL).
    Primary = 0,
    /// This tail applies a primary's shipped WAL.
    Follower = 1,
}

impl ServerRole {
    fn from_byte(b: u8) -> Result<Self, NetError> {
        match b {
            0 => Ok(ServerRole::Primary),
            1 => Ok(ServerRole::Follower),
            found => Err(NetError::BadFrameType { found }),
        }
    }
}

const KIND_COUNTER: u8 = 0;
const KIND_GAUGE: u8 = 1;
const KIND_HISTOGRAM: u8 = 2;

/// One uplink copy (or empty-group marker) as a gateway reports it.
///
/// The group metadata (`uplink` … `copies_total`) is repeated on every
/// copy so the listener can reassemble cross-gateway groups from any
/// arrival order; `copy_index` is the copy's position in the original
/// group, which pins the group-internal copy order (and therefore the
/// per-gateway frame-index assignment) bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct WireUplink {
    /// Scenario-wide monotonic uplink id.
    pub uplink: u64,
    /// Transmitting device address.
    pub dev_addr: u32,
    /// Global time the transmission started, seconds.
    pub tx_start_global_s: f64,
    /// Frame air time, seconds.
    pub airtime_s: f64,
    /// Copies in the group across the whole fleet (0 for a marker).
    pub copies_total: u16,
    /// This copy's position within the group (0 for a marker).
    pub copy_index: u16,
    /// The copy itself; `None` marks a group no gateway received, which
    /// the designated reporter (gateway 0) forwards so the server still
    /// counts the uplink.
    pub delivery: Option<WireDelivery>,
}

/// The received-signal summary of one copy, mirroring the simulator's
/// [`Delivery`] field for field.
///
/// `is_replay` is ground truth for detector scoring — a real deployment
/// would not have it; it rides along as the evaluation channel exactly as
/// it does on the in-process path.
#[derive(Debug, Clone, PartialEq)]
pub struct WireDelivery {
    /// Frame bytes as received.
    pub bytes: Vec<u8>,
    /// Claimed source address from the frame header.
    pub dev_addr: u32,
    /// Global arrival time of the frame onset, seconds.
    pub arrival_global_s: f64,
    /// Received SNR, dB.
    pub snr_db: f64,
    /// Net oscillator bias of the arriving waveform, Hz.
    pub carrier_bias_hz: f64,
    /// Carrier phase, radians.
    pub carrier_phase: f64,
    /// Spreading factor (6..=12).
    pub sf: u8,
    /// Concurrent jamming overlapping this frame: (onset s, relative
    /// power dB).
    pub jamming: Option<(f64, f64)>,
    /// Evaluation ground truth: whether this copy is a malicious replay.
    pub is_replay: bool,
}

impl WireDelivery {
    /// Captures a simulator delivery onto the wire.
    pub fn from_delivery(d: &Delivery) -> Self {
        WireDelivery {
            bytes: d.bytes.clone(),
            dev_addr: d.dev_addr,
            arrival_global_s: d.arrival_global_s,
            snr_db: d.snr_db,
            carrier_bias_hz: d.carrier_bias_hz,
            carrier_phase: d.carrier_phase,
            sf: d.sf.value() as u8,
            jamming: d.jamming.map(|j| (j.onset_s, j.relative_power_db)),
            is_replay: d.is_replay,
        }
    }

    /// Reconstructs the simulator delivery, bit-exact.
    ///
    /// # Errors
    ///
    /// [`NetError::BadSpreadingFactor`] when `sf` is outside 6..=12.
    pub fn to_delivery(&self) -> Result<Delivery, NetError> {
        let sf = SpreadingFactor::from_value(u32::from(self.sf))
            .map_err(|_| NetError::BadSpreadingFactor { found: self.sf })?;
        Ok(Delivery {
            bytes: self.bytes.clone(),
            dev_addr: self.dev_addr,
            arrival_global_s: self.arrival_global_s,
            snr_db: self.snr_db,
            carrier_bias_hz: self.carrier_bias_hz,
            carrier_phase: self.carrier_phase,
            sf,
            jamming: self
                .jamming
                .map(|(onset_s, relative_power_db)| JammingAttempt { onset_s, relative_power_db }),
            is_replay: self.is_replay,
        })
    }
}

/// A `PUSH_DATA` uplink batch from one gateway.
#[derive(Debug, Clone, PartialEq)]
pub struct PushData {
    /// Sending gateway's fleet index.
    pub gateway: u32,
    /// Per-gateway datagram sequence number (dedup/reorder tracking).
    pub seq: u64,
    /// The gateway's promise: it will never again send a copy with
    /// uplink id **strictly below** `watermark` (so `0` promises
    /// nothing and `u64::MAX` promises everything). Drives the
    /// listener's commit barrier.
    pub watermark: u64,
    /// The uplink copies in this batch.
    pub uplinks: Vec<WireUplink>,
}

/// Live counters the listener maintains, served over the ctrl endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Datagrams received on the data socket.
    pub datagrams: u64,
    /// `PUSH_DATA` frames accepted.
    pub push_data: u64,
    /// `PULL_DATA` keepalives accepted.
    pub keepalives: u64,
    /// Acks sent (`PUSH_ACK` + `PULL_ACK`).
    pub acks_sent: u64,
    /// Datagrams rejected: bad magic.
    pub rejected_magic: u64,
    /// Datagrams rejected: unknown protocol version.
    pub rejected_version: u64,
    /// Datagrams rejected: unknown frame type.
    pub rejected_type: u64,
    /// Datagrams rejected: CRC mismatch.
    pub rejected_crc: u64,
    /// Datagrams rejected: truncated or trailing bytes.
    pub rejected_truncated: u64,
    /// Datagrams rejected: any other malformation.
    pub rejected_other: u64,
    /// Datagrams whose (gateway, seq) was already processed — re-acked,
    /// not re-processed.
    pub duplicate_datagrams: u64,
    /// Datagrams that arrived with a lower seq than one already seen from
    /// that gateway (processed anyway; the watermark keeps order safe).
    pub out_of_order_datagrams: u64,
    /// Uplink copies received inside accepted `PUSH_DATA` frames.
    pub copies_received: u64,
    /// Copies dropped because their group was already committed.
    pub stale_copies: u64,
    /// Copies dropped because the same (uplink, copy index) was already
    /// held in the pending set.
    pub duplicate_copies: u64,
    /// Groups committed before all announced copies arrived (straggler
    /// timeout or shutdown flush).
    pub incomplete_groups: u64,
    /// Uplink groups committed into the server tail.
    pub groups_committed: u64,
    /// `process_batch` calls made (poll-interval flushes).
    pub batches: u64,
}

/// Final counters for one runtime block, as carried in `STATS_RESP`.
///
/// Sourced from the `runtime_block_*` telemetry series that
/// `RuntimeStats` folds into the process-wide registry when a flowgraph
/// block finishes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireBlockStats {
    /// Block display name.
    pub name: String,
    /// Counted `work` calls.
    pub work_calls: u64,
    /// Items consumed from all input ports.
    pub items_in: u64,
    /// Items produced into all output ports.
    pub items_out: u64,
    /// Nanoseconds spent inside `work`.
    pub busy_ns: u64,
}

/// The runtime section of `STATS_RESP`: scheduler-level counters plus
/// per-block totals, read out of the process-wide telemetry registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireRuntime {
    /// Times any worker parked for lack of work.
    pub worker_parks: u64,
    /// Total counted `work` calls across all blocks and runs.
    pub work_calls: u64,
    /// Per-block totals, sorted by block name.
    pub blocks: Vec<WireBlockStats>,
}

impl WireRuntime {
    /// Extracts the runtime section from a registry snapshot by
    /// filtering the `runtime_*` series `RuntimeStats` maintains.
    pub fn from_registry(snapshot: &RegistrySnapshot) -> Self {
        let counter_with_block = |name: &str, block: &str| {
            snapshot.find_with(name, &[("block", block)]).and_then(|s| s.value.as_counter())
        };
        let blocks = snapshot
            .series
            .iter()
            .filter(|s| s.name == "runtime_block_work_calls_total")
            .filter_map(|s| s.label("block"))
            .map(|block| WireBlockStats {
                name: block.to_string(),
                work_calls: counter_with_block("runtime_block_work_calls_total", block)
                    .unwrap_or(0),
                items_in: counter_with_block("runtime_block_items_in_total", block).unwrap_or(0),
                items_out: counter_with_block("runtime_block_items_out_total", block).unwrap_or(0),
                busy_ns: counter_with_block("runtime_block_busy_ns_total", block).unwrap_or(0),
            })
            .collect();
        WireRuntime {
            worker_parks: snapshot.counter_sum("runtime_worker_parks_total"),
            work_calls: snapshot.counter_sum("runtime_work_calls_total"),
            blocks,
        }
    }
}

/// The `STATS_RESP` payload: wire counters plus the server tail's own
/// statistics, sampled live.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireStats {
    /// Listener-side wire counters.
    pub counters: NetCounters,
    /// Server tail aggregate statistics.
    pub server: ServerStats,
    /// Replay-detection confusion counters.
    pub detection: DetectionStats,
    /// Runtime scheduler and per-block counters (version 2).
    pub runtime: WireRuntime,
}

/// Every frame the protocol can carry.
///
/// Frames are transient — decoded, inspected, dropped — and the common
/// data-path variants (`PushData`, acks) dominate traffic, so the
/// larger ctrl-only variants (`StatsResp`, `MetricsResp`) stay inline
/// rather than boxed.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Uplink batch, gateway → server.
    PushData(PushData),
    /// Batch acknowledgement, server → gateway.
    PushAck {
        /// Acknowledged gateway.
        gateway: u32,
        /// Acknowledged datagram seq.
        seq: u64,
        /// Uplink ids strictly below this are committed (version 3);
        /// `0` means nothing is committed yet. Acks return as soon as
        /// the datagram is reassembled — this watermark is how a
        /// gateway observes the commit pipeline catching up.
        committed: u64,
    },
    /// Keepalive carrying the gateway's current watermark.
    PullData {
        /// Sending gateway.
        gateway: u32,
        /// Per-gateway datagram sequence number.
        seq: u64,
        /// The gateway's watermark promise (see [`PushData::watermark`]).
        watermark: u64,
    },
    /// Keepalive acknowledgement, server → gateway.
    PullAck {
        /// Acknowledged gateway.
        gateway: u32,
        /// Acknowledged datagram seq.
        seq: u64,
        /// Commit watermark, as in [`Frame::PushAck::committed`]
        /// (version 3).
        committed: u64,
    },
    /// Stats query, ctrl → server.
    StatsReq {
        /// Opaque token echoed in the response.
        token: u64,
    },
    /// Stats response, server → ctrl.
    StatsResp {
        /// The query's token.
        token: u64,
        /// Live counters.
        stats: WireStats,
    },
    /// Orderly shutdown request, ctrl → server.
    Shutdown {
        /// Opaque token echoed in the final `PULL_ACK`.
        token: u64,
    },
    /// Full telemetry snapshot query, ctrl → server.
    MetricsReq {
        /// Opaque token echoed in the response.
        token: u64,
    },
    /// Full telemetry snapshot response, server → ctrl.
    MetricsResp {
        /// The query's token.
        token: u64,
        /// The process-wide registry, sampled live.
        snapshot: RegistrySnapshot,
    },
    /// Replication-role query, ctrl → server.
    RoleReq {
        /// Opaque token echoed in the response.
        token: u64,
    },
    /// Replication-role response, server → ctrl.
    RoleResp {
        /// The query's token.
        token: u64,
        /// The tail's current role.
        role: ServerRole,
        /// The tail's durable replication epoch.
        epoch: u64,
    },
    /// Promotion order, ctrl → server: fence the deposed primary by
    /// advancing to `epoch` and start committing as primary. Answered
    /// with a `ROLE_RESP` reporting the post-promotion state.
    Promote {
        /// Opaque token echoed in the response.
        token: u64,
        /// The epoch to promote into (must exceed the deposed
        /// primary's).
        epoch: u64,
    },
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::PushData(_) => TYPE_PUSH_DATA,
            Frame::PushAck { .. } => TYPE_PUSH_ACK,
            Frame::PullData { .. } => TYPE_PULL_DATA,
            Frame::PullAck { .. } => TYPE_PULL_ACK,
            Frame::StatsReq { .. } => TYPE_STATS_REQ,
            Frame::StatsResp { .. } => TYPE_STATS_RESP,
            Frame::Shutdown { .. } => TYPE_SHUTDOWN,
            Frame::MetricsReq { .. } => TYPE_METRICS_REQ,
            Frame::MetricsResp { .. } => TYPE_METRICS_RESP,
            Frame::RoleReq { .. } => TYPE_ROLE_REQ,
            Frame::RoleResp { .. } => TYPE_ROLE_RESP,
            Frame::Promote { .. } => TYPE_PROMOTE,
        }
    }
}

fn encode_wire_uplink(e: &mut Encoder, u: &WireUplink) {
    e.u64(u.uplink)
        .u32(u.dev_addr)
        .f64(u.tx_start_global_s)
        .f64(u.airtime_s)
        .u16(u.copies_total)
        .u16(u.copy_index)
        .option(&u.delivery, encode_wire_delivery);
}

fn decode_wire_uplink(d: &mut Decoder<'_>) -> Result<WireUplink, CodecError> {
    Ok(WireUplink {
        uplink: d.u64()?,
        dev_addr: d.u32()?,
        tx_start_global_s: d.f64()?,
        airtime_s: d.f64()?,
        copies_total: d.u16()?,
        copy_index: d.u16()?,
        delivery: d.option(decode_wire_delivery)?,
    })
}

fn encode_wire_delivery(e: &mut Encoder, w: &WireDelivery) {
    e.bytes(&w.bytes)
        .u32(w.dev_addr)
        .f64(w.arrival_global_s)
        .f64(w.snr_db)
        .f64(w.carrier_bias_hz)
        .f64(w.carrier_phase)
        .u8(w.sf)
        .option(&w.jamming, |e, (onset, power)| {
            e.f64(*onset).f64(*power);
        })
        .bool(w.is_replay);
}

fn decode_wire_delivery(d: &mut Decoder<'_>) -> Result<WireDelivery, CodecError> {
    Ok(WireDelivery {
        bytes: d.bytes()?.to_vec(),
        dev_addr: d.u32()?,
        arrival_global_s: d.f64()?,
        snr_db: d.f64()?,
        carrier_bias_hz: d.f64()?,
        carrier_phase: d.f64()?,
        sf: d.u8()?,
        jamming: d.option(|d| Ok((d.f64()?, d.f64()?)))?,
        is_replay: d.bool()?,
    })
}

fn encode_net_counters(e: &mut Encoder, c: &NetCounters) {
    e.u64(c.datagrams)
        .u64(c.push_data)
        .u64(c.keepalives)
        .u64(c.acks_sent)
        .u64(c.rejected_magic)
        .u64(c.rejected_version)
        .u64(c.rejected_type)
        .u64(c.rejected_crc)
        .u64(c.rejected_truncated)
        .u64(c.rejected_other)
        .u64(c.duplicate_datagrams)
        .u64(c.out_of_order_datagrams)
        .u64(c.copies_received)
        .u64(c.stale_copies)
        .u64(c.duplicate_copies)
        .u64(c.incomplete_groups)
        .u64(c.groups_committed)
        .u64(c.batches);
}

fn decode_net_counters(d: &mut Decoder<'_>) -> Result<NetCounters, CodecError> {
    Ok(NetCounters {
        datagrams: d.u64()?,
        push_data: d.u64()?,
        keepalives: d.u64()?,
        acks_sent: d.u64()?,
        rejected_magic: d.u64()?,
        rejected_version: d.u64()?,
        rejected_type: d.u64()?,
        rejected_crc: d.u64()?,
        rejected_truncated: d.u64()?,
        rejected_other: d.u64()?,
        duplicate_datagrams: d.u64()?,
        out_of_order_datagrams: d.u64()?,
        copies_received: d.u64()?,
        stale_copies: d.u64()?,
        duplicate_copies: d.u64()?,
        incomplete_groups: d.u64()?,
        groups_committed: d.u64()?,
        batches: d.u64()?,
    })
}

fn encode_wire_runtime(e: &mut Encoder, r: &WireRuntime) {
    e.u64(r.worker_parks).u64(r.work_calls);
    e.u16(u16::try_from(r.blocks.len()).expect("more than 65535 runtime blocks"));
    for b in &r.blocks {
        e.bytes(b.name.as_bytes())
            .u64(b.work_calls)
            .u64(b.items_in)
            .u64(b.items_out)
            .u64(b.busy_ns);
    }
}

fn decode_wire_runtime(d: &mut Decoder<'_>) -> Result<WireRuntime, CodecError> {
    let worker_parks = d.u64()?;
    let work_calls = d.u64()?;
    let count = d.u16()? as usize;
    let mut blocks = Vec::with_capacity(count.min(1 << 10));
    for _ in 0..count {
        blocks.push(WireBlockStats {
            name: String::from_utf8_lossy(d.bytes()?).into_owned(),
            work_calls: d.u64()?,
            items_in: d.u64()?,
            items_out: d.u64()?,
            busy_ns: d.u64()?,
        });
    }
    Ok(WireRuntime { worker_parks, work_calls, blocks })
}

fn encode_wire_stats(e: &mut Encoder, s: &WireStats) {
    encode_net_counters(e, &s.counters);
    e.u64(s.server.uplinks)
        .u64(s.server.accepted)
        .u64(s.server.fb_replays_flagged)
        .u64(s.server.cross_gateway_replays_flagged)
        .u64(s.server.duplicates_suppressed)
        .u64(s.server.not_received)
        .u64(s.server.lorawan_rejected)
        .u64(s.detection.true_positives)
        .u64(s.detection.false_positives)
        .u64(s.detection.false_negatives)
        .u64(s.detection.true_negatives);
    encode_wire_runtime(e, &s.runtime);
}

fn decode_wire_stats(d: &mut Decoder<'_>) -> Result<WireStats, CodecError> {
    Ok(WireStats {
        counters: decode_net_counters(d)?,
        server: ServerStats {
            uplinks: d.u64()?,
            accepted: d.u64()?,
            fb_replays_flagged: d.u64()?,
            cross_gateway_replays_flagged: d.u64()?,
            duplicates_suppressed: d.u64()?,
            not_received: d.u64()?,
            lorawan_rejected: d.u64()?,
        },
        detection: DetectionStats {
            true_positives: d.u64()?,
            false_positives: d.u64()?,
            false_negatives: d.u64()?,
            true_negatives: d.u64()?,
        },
        runtime: decode_wire_runtime(d)?,
    })
}

/// Encodes a full registry snapshot over the store codec.
///
/// Per series: name, label pairs, a kind byte, then the value. Histogram
/// buckets go sparse — only occupied log2 buckets are carried as
/// `(index, count)` pairs — so a snapshot with a handful of live
/// histograms stays well inside a single UDP datagram.
pub fn encode_registry_snapshot(e: &mut Encoder, snapshot: &RegistrySnapshot) {
    e.u32(u32::try_from(snapshot.series.len()).expect("more than 4G telemetry series"));
    for s in &snapshot.series {
        e.bytes(s.name.as_bytes());
        e.u16(u16::try_from(s.labels.len()).expect("more than 65535 labels on one series"));
        for (k, v) in &s.labels {
            e.bytes(k.as_bytes()).bytes(v.as_bytes());
        }
        match &s.value {
            SeriesValue::Counter(v) => {
                e.u8(KIND_COUNTER).u64(*v);
            }
            SeriesValue::Gauge(v) => {
                e.u8(KIND_GAUGE).f64(*v);
            }
            SeriesValue::Histogram(h) => {
                e.u8(KIND_HISTOGRAM).u64(h.count).u64(h.sum);
                let occupied = h.buckets.iter().filter(|&&c| c != 0).count();
                e.u16(u16::try_from(occupied).expect("at most 65 buckets"));
                for (idx, &count) in h.buckets.iter().enumerate() {
                    if count != 0 {
                        e.u8(idx as u8).u64(count);
                    }
                }
            }
        }
    }
}

/// Decodes a registry snapshot encoded by [`encode_registry_snapshot`].
///
/// # Errors
///
/// [`NetError::Codec`] on truncation, [`NetError::BadFrameType`] on an
/// unknown series kind byte, [`NetError::BadBucketIndex`] when a
/// histogram bucket index falls outside the fixed log2 range.
pub fn decode_registry_snapshot(d: &mut Decoder<'_>) -> Result<RegistrySnapshot, NetError> {
    let series_count = d.u32()? as usize;
    let mut series = Vec::with_capacity(series_count.min(1 << 12));
    for _ in 0..series_count {
        let name = String::from_utf8_lossy(d.bytes()?).into_owned();
        let label_count = d.u16()? as usize;
        let mut labels = Vec::with_capacity(label_count.min(64));
        for _ in 0..label_count {
            let k = String::from_utf8_lossy(d.bytes()?).into_owned();
            let v = String::from_utf8_lossy(d.bytes()?).into_owned();
            labels.push((k, v));
        }
        let value = match d.u8()? {
            KIND_COUNTER => SeriesValue::Counter(d.u64()?),
            KIND_GAUGE => SeriesValue::Gauge(d.f64()?),
            KIND_HISTOGRAM => {
                let count = d.u64()?;
                let sum = d.u64()?;
                let mut h = HistogramSnapshot::empty();
                h.count = count;
                h.sum = sum;
                let occupied = d.u16()? as usize;
                for _ in 0..occupied {
                    let idx = d.u8()?;
                    let bucket_count = d.u64()?;
                    *h.buckets
                        .get_mut(idx as usize)
                        .ok_or(NetError::BadBucketIndex { found: idx })? = bucket_count;
                }
                SeriesValue::Histogram(h)
            }
            found => return Err(NetError::BadFrameType { found }),
        };
        series.push(SeriesSnapshot { name, labels, value });
    }
    Ok(RegistrySnapshot { series })
}

/// Encodes a frame into a caller-owned encoder — hot senders clear and
/// reuse one encoder per socket instead of allocating per datagram.
pub fn encode_frame_into(frame: &Frame, e: &mut Encoder) {
    e.u16(MAGIC).u8(VERSION).u8(frame.type_byte());
    match frame {
        Frame::PushData(p) => {
            e.u32(p.gateway).u64(p.seq).u64(p.watermark);
            e.u16(u16::try_from(p.uplinks.len()).expect("more than 65535 copies in a datagram"));
            for u in &p.uplinks {
                encode_wire_uplink(e, u);
            }
        }
        Frame::PushAck { gateway, seq, committed } | Frame::PullAck { gateway, seq, committed } => {
            e.u32(*gateway).u64(*seq).u64(*committed);
        }
        Frame::PullData { gateway, seq, watermark } => {
            e.u32(*gateway).u64(*seq).u64(*watermark);
        }
        Frame::StatsReq { token } | Frame::Shutdown { token } | Frame::MetricsReq { token } => {
            e.u64(*token);
        }
        Frame::StatsResp { token, stats } => {
            e.u64(*token);
            encode_wire_stats(e, stats);
        }
        Frame::MetricsResp { token, snapshot } => {
            e.u64(*token);
            encode_registry_snapshot(e, snapshot);
        }
        Frame::RoleReq { token } => {
            e.u64(*token);
        }
        Frame::RoleResp { token, role, epoch } => {
            e.u64(*token).u8(*role as u8).u64(*epoch);
        }
        Frame::Promote { token, epoch } => {
            e.u64(*token).u64(*epoch);
        }
    }
    let crc = crc32(e.as_bytes());
    e.u32(crc);
}

/// Encodes a frame into a fresh datagram buffer.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut e = Encoder::new();
    encode_frame_into(frame, &mut e);
    e.into_bytes()
}

/// Decodes one datagram.
///
/// Never panics on any input; every malformation maps to a structured
/// [`NetError`] variant (CRC is checked before anything else is trusted).
///
/// # Errors
///
/// See the [`NetError`] variants.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, NetError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(NetError::TooShort { len: bytes.len() });
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - TRAILER_LEN);
    let found = u32::from_le_bytes(crc_bytes.try_into().expect("split_at(4)"));
    let expected = crc32(body);
    if expected != found {
        return Err(NetError::BadCrc { expected, found });
    }

    let mut d = Decoder::new(body);
    let magic = d.u16()?;
    if magic != MAGIC {
        return Err(NetError::BadMagic { found: magic });
    }
    let version = d.u8()?;
    if version != VERSION {
        return Err(NetError::BadVersion { found: version });
    }
    let frame_type = d.u8()?;
    let frame = match frame_type {
        TYPE_PUSH_DATA => {
            let gateway = d.u32()?;
            let seq = d.u64()?;
            let watermark = d.u64()?;
            let count = d.u16()? as usize;
            let mut uplinks = Vec::with_capacity(count.min(1 << 12));
            for _ in 0..count {
                uplinks.push(decode_wire_uplink(&mut d)?);
            }
            Frame::PushData(PushData { gateway, seq, watermark, uplinks })
        }
        TYPE_PUSH_ACK => Frame::PushAck { gateway: d.u32()?, seq: d.u64()?, committed: d.u64()? },
        TYPE_PULL_DATA => Frame::PullData { gateway: d.u32()?, seq: d.u64()?, watermark: d.u64()? },
        TYPE_PULL_ACK => Frame::PullAck { gateway: d.u32()?, seq: d.u64()?, committed: d.u64()? },
        TYPE_STATS_REQ => Frame::StatsReq { token: d.u64()? },
        TYPE_STATS_RESP => Frame::StatsResp { token: d.u64()?, stats: decode_wire_stats(&mut d)? },
        TYPE_SHUTDOWN => Frame::Shutdown { token: d.u64()? },
        TYPE_METRICS_REQ => Frame::MetricsReq { token: d.u64()? },
        TYPE_METRICS_RESP => {
            Frame::MetricsResp { token: d.u64()?, snapshot: decode_registry_snapshot(&mut d)? }
        }
        TYPE_ROLE_REQ => Frame::RoleReq { token: d.u64()? },
        TYPE_ROLE_RESP => Frame::RoleResp {
            token: d.u64()?,
            role: ServerRole::from_byte(d.u8()?)?,
            epoch: d.u64()?,
        },
        TYPE_PROMOTE => Frame::Promote { token: d.u64()?, epoch: d.u64()? },
        found => return Err(NetError::BadFrameType { found }),
    };
    if !d.is_exhausted() {
        return Err(NetError::TrailingBytes { remaining: d.remaining() });
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_push() -> Frame {
        Frame::PushData(PushData {
            gateway: 7,
            seq: 41,
            watermark: 12,
            uplinks: vec![
                WireUplink {
                    uplink: 13,
                    dev_addr: 0x2601_5000,
                    tx_start_global_s: 1234.5,
                    airtime_s: 0.066,
                    copies_total: 2,
                    copy_index: 1,
                    delivery: Some(WireDelivery {
                        bytes: vec![0x40, 0x00, 0x50, 0x01, 0x26],
                        dev_addr: 0x2601_5000,
                        arrival_global_s: 1234.501,
                        snr_db: 8.25,
                        carrier_bias_hz: -4120.5,
                        carrier_phase: 1.5,
                        sf: 7,
                        jamming: Some((-0.002, 6.0)),
                        is_replay: true,
                    }),
                },
                WireUplink {
                    uplink: 14,
                    dev_addr: 0x2601_5001,
                    tx_start_global_s: 1300.0,
                    airtime_s: 0.066,
                    copies_total: 0,
                    copy_index: 0,
                    delivery: None,
                },
            ],
        })
    }

    #[test]
    fn frames_round_trip() {
        let frames = [
            sample_push(),
            Frame::PushAck { gateway: 7, seq: 41, committed: 12 },
            Frame::PullData { gateway: 3, seq: 9, watermark: u64::MAX },
            Frame::PullAck { gateway: 3, seq: 9, committed: 0 },
            Frame::StatsReq { token: 0xDEAD_BEEF },
            Frame::StatsResp {
                token: 0xDEAD_BEEF,
                stats: WireStats {
                    counters: NetCounters { datagrams: 11, push_data: 9, ..Default::default() },
                    runtime: WireRuntime {
                        worker_parks: 3,
                        work_calls: 90,
                        blocks: vec![WireBlockStats {
                            name: "dechirp".into(),
                            work_calls: 90,
                            items_in: 4096,
                            items_out: 4096,
                            busy_ns: 1_250_000,
                        }],
                    },
                    ..Default::default()
                },
            },
            Frame::Shutdown { token: 1 },
            Frame::MetricsReq { token: 5 },
            Frame::MetricsResp { token: 5, snapshot: sample_snapshot() },
            Frame::RoleReq { token: 6 },
            Frame::RoleResp { token: 6, role: ServerRole::Primary, epoch: 3 },
            Frame::RoleResp { token: 6, role: ServerRole::Follower, epoch: 4 },
            Frame::Promote { token: 7, epoch: 5 },
        ];
        for frame in &frames {
            let bytes = encode_frame(frame);
            let back = decode_frame(&bytes).expect("round trip");
            assert_eq!(&back, frame);
        }
    }

    fn sample_snapshot() -> RegistrySnapshot {
        let mut hist = HistogramSnapshot::empty();
        hist.count = 3;
        hist.sum = 2 + 700 + 1_000_000;
        for v in [2u64, 700, 1_000_000] {
            hist.buckets[softlora_telemetry::bucket_index(v)] += 1;
        }
        RegistrySnapshot {
            series: vec![
                SeriesSnapshot {
                    name: "gateway_stage_ns".into(),
                    labels: vec![("stage".into(), "detect".into())],
                    value: SeriesValue::Histogram(hist),
                },
                SeriesSnapshot {
                    name: "runtime_block_throughput_per_s".into(),
                    labels: vec![("block".into(), "dechirp".into())],
                    value: SeriesValue::Gauge(81_920.5),
                },
                SeriesSnapshot {
                    name: "store_fsyncs_total".into(),
                    labels: vec![],
                    value: SeriesValue::Counter(42),
                },
            ],
        }
    }

    #[test]
    fn registry_snapshot_round_trips_sparse() {
        let snapshot = sample_snapshot();
        let mut e = Encoder::new();
        encode_registry_snapshot(&mut e, &snapshot);
        // 3 series, one histogram with 3 occupied buckets: far smaller
        // than a dense 65-bucket encoding.
        assert!(e.len() < 256, "sparse encoding blew up: {} bytes", e.len());
        let mut d = Decoder::new(e.as_bytes());
        let back = decode_registry_snapshot(&mut d).expect("round trip");
        assert!(d.is_exhausted());
        assert_eq!(back, snapshot);
    }

    #[test]
    fn bad_bucket_index_is_rejected() {
        let mut e = Encoder::new();
        e.u32(1); // one series
        e.bytes(b"h");
        e.u16(0); // no labels
        e.u8(2).u64(1).u64(1); // histogram kind, count, sum
        e.u16(1).u8(200).u64(1); // bucket index 200 is out of range
        let mut d = Decoder::new(e.as_bytes());
        assert!(matches!(
            decode_registry_snapshot(&mut d),
            Err(NetError::BadBucketIndex { found: 200 })
        ));
    }

    #[test]
    fn wire_runtime_extracts_block_series() {
        let registry = softlora_telemetry::Registry::new();
        let labels: &[(&str, &str)] = &[("block", "fft")];
        registry.counter_with("runtime_block_work_calls_total", labels).add(7);
        registry.counter_with("runtime_block_items_in_total", labels).add(700);
        registry.counter_with("runtime_block_items_out_total", labels).add(700);
        registry.counter_with("runtime_block_busy_ns_total", labels).add(900);
        registry.counter("runtime_worker_parks_total").add(2);
        registry.counter("runtime_work_calls_total").add(7);
        let runtime = WireRuntime::from_registry(&registry.snapshot());
        assert_eq!(runtime.worker_parks, 2);
        assert_eq!(runtime.work_calls, 7);
        assert_eq!(
            runtime.blocks,
            vec![WireBlockStats {
                name: "fft".into(),
                work_calls: 7,
                items_in: 700,
                items_out: 700,
                busy_ns: 900,
            }]
        );
    }

    #[test]
    fn corrupt_crc_is_rejected() {
        let mut bytes = encode_frame(&sample_push());
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(decode_frame(&bytes), Err(NetError::BadCrc { .. })));
    }

    #[test]
    fn short_datagram_is_rejected() {
        assert!(matches!(decode_frame(&[0x53, 0x4E, 1]), Err(NetError::TooShort { len: 3 })));
    }

    #[test]
    fn delivery_round_trips_through_sim_type() {
        let Frame::PushData(p) = sample_push() else { unreachable!() };
        let wire = p.uplinks[0].delivery.clone().unwrap();
        let delivery = wire.to_delivery().expect("valid sf");
        let back = WireDelivery::from_delivery(&delivery);
        assert_eq!(back, wire);
    }
}
