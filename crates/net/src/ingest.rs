//! The pipelined ingest machinery: pooled group reassembly and the
//! off-thread commit handoff.
//!
//! The listener used to commit batches synchronously on its poll thread,
//! so every gateway waiting for an ack also waited for
//! `NetworkServer::process_batch` — the p99 ingest tail. This module
//! splits the path in two along a bounded SPSC ring
//! ([`softlora_runtime::ring`]):
//!
//! * the **poll side** ([`Reassembler`]) files wire copies into a
//!   sliding window of pending groups, keyed by uplink id, and drains
//!   watermark-released groups in strict ascending order;
//! * the **commit side** ([`CommitPipe`]) owns a dedicated worker thread
//!   that pops released groups off the handoff ring and drives a
//!   [`CommitSink`] (the sharded server tail in production, a stub in
//!   tests), publishing the committed watermark back through a shared
//!   atomic so acks can carry it.
//!
//! Backpressure is explicit: a full handoff ring stalls the poll thread
//! in a bounded wait (counted, never unbounded memory), and a commit
//! failure abandons the ring so the poll thread's offers degrade to
//! counted drops instead of wedging the socket loop. Committed groups
//! flow back through a second **recycle ring**, so the warm path —
//! stash, drain, hand off, commit, recycle — allocates nothing per
//! group (pinned by `crates/bench/tests/zero_alloc_ingest.rs`).
//!
//! Commit order — and therefore every verdict, statistic and persisted
//! byte — is identical to handing the same stream to `process_batch`
//! in-process: the poll side releases groups in ascending uplink order,
//! the SPSC ring preserves it, and batch boundaries don't affect results
//! (the server's sub-batch ≡ big-batch invariance).

use crate::NetError;
use softlora::ServerVerdict;
use softlora_runtime::ring::{channel, Consumer, PopRing, Producer};
use softlora_sim::{FleetDelivery, UplinkDeliveries};
use softlora_telemetry::{Counter, Gauge, Histogram};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Handoff/recycle ring capacity (groups in flight between the poll
/// thread and the commit worker).
pub const HANDOFF_CAPACITY: usize = 1024;

/// How long the commit worker sleeps when the handoff ring is empty;
/// bounds the wake race exactly like the scheduler's park timeout.
const WORKER_PARK: Duration = Duration::from_micros(200);

/// How long the poll thread sleeps per bounded-stall tick when the
/// handoff ring is full.
const STALL_TICK: Duration = Duration::from_micros(100);

/// Wire metadata of one uplink copy, already decoded out of its
/// `PUSH_DATA` frame.
#[derive(Debug, Clone, Copy)]
pub struct CopyHeader {
    /// Global uplink id of the group this copy belongs to.
    pub uplink: u64,
    /// Transmitting device address.
    pub dev_addr: u32,
    /// Global transmission start time, seconds.
    pub tx_start_global_s: f64,
    /// Frame air time, seconds.
    pub airtime_s: f64,
    /// Copies the whole fleet observed for this uplink.
    pub copies_total: u16,
    /// This copy's position inside the group.
    pub copy_index: u16,
}

/// Where a stashed copy ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stash {
    /// Filed into its group (or created the group / registered an
    /// empty-group marker).
    Filed,
    /// The group was already drained — a late copy.
    Stale,
    /// The copy's slot was already filled (duplicate across datagrams).
    DuplicateCopy,
    /// `copy_index` outside the announced `copies_total` range.
    BadCopyIndex,
    /// The uplink id is further ahead of the window base than the
    /// pending bound allows — rejected so a hostile or corrupt id can't
    /// balloon the window.
    FarFuture,
}

/// What one [`Reassembler::drain_ready`] pass released.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainTally {
    /// Groups moved into the output batch.
    pub emitted: usize,
    /// Of those, groups forced out before all copies arrived.
    pub incomplete: usize,
}

/// Reassembly state of one uplink group.
struct PendingGroup {
    dev_addr: u32,
    tx_start_global_s: f64,
    airtime_s: f64,
    copies_total: u16,
    /// Slots indexed by `copy_index`; filled as copies arrive. The
    /// vector shell is pooled across groups.
    copies: Vec<Option<FleetDelivery>>,
    received: u16,
}

impl PendingGroup {
    fn is_complete(&self) -> bool {
        self.received == self.copies_total
    }
}

/// One window position: a group under reassembly, or a hole (an id
/// between observed ids that no copy has arrived for yet). Holes carry
/// the same straggler clock as groups, so a front hole can't gate the
/// window forever.
struct Slot {
    first_seen: Instant,
    group: Option<PendingGroup>,
}

/// The poll-side reassembly window; see the module docs.
///
/// Groups are keyed by uplink id over a contiguous sliding window
/// (`VecDeque` + base id) instead of a map, so the hot path is an index
/// computation and both group shells and emitted [`UplinkDeliveries`]
/// are pooled — nothing allocates per group once warm.
pub struct Reassembler {
    window: VecDeque<Slot>,
    /// Uplink id of `window[0]` (meaningful while the window is
    /// non-empty).
    front_id: u64,
    /// Ids strictly below this are drained; late copies for them are
    /// stale.
    base: u64,
    /// Slots currently holding a group (the window may also hold holes).
    occupied: usize,
    /// Groups force-released by overload eviction (the window was full
    /// and a newer id needed room). They are strictly older than
    /// everything still in the window and leave with the next
    /// [`Reassembler::drain_ready`], ahead of it, preserving ascending
    /// commit order.
    spill: Vec<UplinkDeliveries>,
    /// How many spilled groups were incomplete when evicted.
    spill_incomplete: usize,
    /// Pooled copy-slot vectors, reused across groups.
    shell_pool: Vec<Vec<Option<FleetDelivery>>>,
    /// Pooled emitted groups, refilled via [`Reassembler::recycle`].
    group_pool: Vec<UplinkDeliveries>,
    straggler_timeout: Duration,
    max_pending: usize,
}

impl Reassembler {
    /// A window forcing out groups older than `straggler_timeout` and
    /// holding at most `max_pending` window positions. An id that needs
    /// a position past a full window force-releases the oldest slots to
    /// make room (overload); ids more than twice `max_pending` ahead of
    /// the front — or more than `max_pending` ahead of the base when the
    /// window is empty — are rejected as hostile/corrupt.
    pub fn new(straggler_timeout: Duration, max_pending: usize) -> Self {
        Reassembler {
            window: VecDeque::new(),
            front_id: 0,
            base: 0,
            occupied: 0,
            spill: Vec::new(),
            spill_incomplete: 0,
            shell_pool: Vec::new(),
            group_pool: Vec::new(),
            straggler_timeout,
            max_pending: max_pending.max(1),
        }
    }

    /// Groups currently under reassembly.
    pub fn pending_len(&self) -> usize {
        self.occupied
    }

    /// Files one wire copy. `copy` is `None` for an empty-group marker
    /// (the group entry itself is the information).
    pub fn stash(&mut self, header: &CopyHeader, copy: Option<FleetDelivery>) -> Stash {
        let id = header.uplink;
        if id < self.base {
            return Stash::Stale;
        }
        let index = if self.window.is_empty() {
            // Same bound as the non-empty offset check: a forged or
            // corrupt id arbitrarily far ahead must not seed the window,
            // or every legitimate smaller id would be rejected until the
            // straggler timeout jumps the base past them all — a
            // permanent ingest DoS from one datagram.
            if id.saturating_sub(self.base) >= self.max_pending as u64 {
                return Stash::FarFuture;
            }
            self.front_id = id;
            self.push_back_slot();
            0
        } else if id < self.front_id {
            // Extend at the front: new holes down to `id` inherit the
            // straggler clock from now, like any other window position.
            let gap = (self.front_id - id) as usize;
            if self.window.len() + gap > self.max_pending {
                return Stash::FarFuture;
            }
            let now = Instant::now();
            for _ in 0..gap {
                self.window.push_front(Slot { first_seen: now, group: None });
            }
            self.front_id = id;
            0
        } else {
            let mut offset = id - self.front_id;
            // Hard hostile-id bound: overload can push ids up to one
            // window past the front (absorbed by evicting the oldest),
            // but anything further is a forged or corrupt id — reject it
            // before it can flush the whole window.
            if offset >= (self.max_pending as u64).saturating_mul(2) {
                return Stash::FarFuture;
            }
            if offset >= self.max_pending as u64 {
                // The window is full up to this id's position: force-
                // release the oldest slots (documented overload behavior
                // — evicted groups commit with the copies that arrived)
                // rather than dropping an already-acked copy.
                let excess = offset - self.max_pending as u64 + 1;
                for _ in 0..excess.min(self.window.len() as u64) {
                    self.evict_front();
                }
                if self.window.is_empty() {
                    self.front_id = id;
                    self.push_back_slot();
                    offset = 0;
                } else {
                    offset = id - self.front_id;
                }
            }
            let offset = offset as usize;
            while self.window.len() <= offset {
                self.push_back_slot();
            }
            offset
        };
        let slot = &mut self.window[index];
        let group = match &mut slot.group {
            Some(group) => group,
            empty @ None => {
                self.occupied += 1;
                let mut copies = self.shell_pool.pop().unwrap_or_default();
                copies.clear();
                copies.extend((0..usize::from(header.copies_total)).map(|_| None));
                empty.insert(PendingGroup {
                    dev_addr: header.dev_addr,
                    tx_start_global_s: header.tx_start_global_s,
                    airtime_s: header.airtime_s,
                    copies_total: header.copies_total,
                    copies,
                    received: 0,
                })
            }
        };
        let Some(copy) = copy else {
            return Stash::Filed;
        };
        match group.copies.get_mut(usize::from(header.copy_index)) {
            Some(cell @ None) => {
                *cell = Some(copy);
                group.received += 1;
                Stash::Filed
            }
            Some(Some(_)) => Stash::DuplicateCopy,
            None => Stash::BadCopyIndex,
        }
    }

    fn push_back_slot(&mut self) {
        self.window.push_back(Slot { first_seen: Instant::now(), group: None });
    }

    /// Force-releases the oldest window position into the spill buffer
    /// (overload eviction). A hole releases silently, like in
    /// [`Reassembler::drain_ready`].
    fn evict_front(&mut self) {
        let Some(slot) = self.window.pop_front() else { return };
        let id = self.front_id;
        self.front_id = self.front_id.saturating_add(1);
        self.base = self.front_id;
        if let Some(group) = slot.group {
            self.occupied -= 1;
            if !group.is_complete() {
                self.spill_incomplete += 1;
            }
            let emitted = self.emit(id, group);
            self.spill.push(emitted);
        }
    }

    /// Groups force-released by overload eviction, waiting for the next
    /// [`Reassembler::drain_ready`] to carry them out.
    pub fn spilled_len(&self) -> usize {
        self.spill.len()
    }

    /// Groups releasable right now under the fleet `barrier` (the
    /// minimum gateway watermark): complete groups strictly below it, in
    /// ascending order, up to the first incomplete one. Holes below the
    /// barrier can never fill (the watermark promise) and don't gate.
    pub fn ready_count(&self, barrier: Option<u64>) -> usize {
        let Some(barrier) = barrier else { return 0 };
        let mut n = 0;
        for (k, slot) in self.window.iter().enumerate() {
            if self.front_id.saturating_add(k as u64) >= barrier {
                break;
            }
            match &slot.group {
                None => continue,
                Some(group) if group.is_complete() => n += 1,
                Some(_) => break,
            }
        }
        n
    }

    /// Releases every group that is safe to commit, in strict ascending
    /// uplink order, into `out`. `drain` (shutdown) releases the whole
    /// window regardless of watermarks. Groups older than the straggler
    /// timeout — and groups evicted because the window was full — are
    /// forced out with the copies that arrived.
    pub fn drain_ready(
        &mut self,
        barrier: Option<u64>,
        drain: bool,
        out: &mut Vec<UplinkDeliveries>,
    ) -> DrainTally {
        let mut tally = DrainTally::default();
        // Overload evictions first: they are strictly older than the
        // window, so ascending commit order is preserved.
        tally.emitted += self.spill.len();
        tally.incomplete += self.spill_incomplete;
        self.spill_incomplete = 0;
        out.append(&mut self.spill);
        while let Some(front) = self.window.front() {
            let id = self.front_id;
            let ready = barrier.is_some_and(|b| id < b);
            let expired = drain || front.first_seen.elapsed() >= self.straggler_timeout;
            let hole = front.group.is_none();
            let complete = front.group.as_ref().is_some_and(PendingGroup::is_complete);
            if (ready && (complete || hole)) || expired {
                let slot = self.window.pop_front().expect("front checked");
                self.front_id = self.front_id.saturating_add(1);
                self.base = self.front_id;
                if let Some(group) = slot.group {
                    self.occupied -= 1;
                    if !group.is_complete() {
                        tally.incomplete += 1;
                    }
                    out.push(self.emit(id, group));
                    tally.emitted += 1;
                }
                // A hole releases silently: no copy ever arrived for the
                // id, so there is nothing to commit (matching the old
                // map-keyed reassembly, where the id simply never
                // existed).
            } else {
                // Strict ascending commit order: the oldest pending group
                // gates everything behind it.
                break;
            }
        }
        tally
    }

    /// Turns a finished group into a (pooled) `UplinkDeliveries`,
    /// returning its copy-slot shell to the pool.
    fn emit(&mut self, uplink: u64, mut group: PendingGroup) -> UplinkDeliveries {
        let mut out = self.group_pool.pop().unwrap_or_else(|| UplinkDeliveries {
            uplink: 0,
            dev_addr: 0,
            tx_start_global_s: 0.0,
            airtime_s: 0.0,
            copies: Vec::new(),
        });
        out.uplink = uplink;
        out.dev_addr = group.dev_addr;
        out.tx_start_global_s = group.tx_start_global_s;
        out.airtime_s = group.airtime_s;
        out.copies.clear();
        out.copies.extend(group.copies.drain(..).flatten());
        self.shell_pool.push(group.copies);
        out
    }

    /// Returns an emitted group to the pool once the commit side is done
    /// with it (delivered back through the recycle ring).
    pub fn recycle(&mut self, mut group: UplinkDeliveries) {
        group.copies.clear();
        self.group_pool.push(group);
    }
}

/// Commits batches of released groups — the seam between the handoff
/// machinery and the server tail.
pub trait CommitSink: Send {
    /// Commits `groups` (ascending uplink order), appending one verdict
    /// per group to `verdicts`.
    ///
    /// # Errors
    ///
    /// An infrastructure failure; the pipe's worker stops and surfaces
    /// it at [`CommitPipe::finish`].
    fn commit(
        &mut self,
        groups: &[UplinkDeliveries],
        verdicts: &mut Vec<ServerVerdict>,
    ) -> Result<(), NetError>;
}

/// The production sink: a shared [`softlora::NetworkServer`] driven via
/// `process_batch`. The mutex is held only inside `commit`; the poll
/// thread takes it only for rare stats/role queries.
pub struct ServerSink(
    /// The shared server tail.
    pub Arc<std::sync::Mutex<softlora::NetworkServer>>,
);

impl CommitSink for ServerSink {
    fn commit(
        &mut self,
        groups: &[UplinkDeliveries],
        verdicts: &mut Vec<ServerVerdict>,
    ) -> Result<(), NetError> {
        let mut server = self.0.lock().expect("network server poisoned");
        verdicts.extend(server.process_batch(groups)?);
        Ok(())
    }
}

/// Telemetry handles the pipe updates; resolve them once (registration
/// may allocate) and hand them in.
pub struct CommitTelemetry {
    /// `net_batches_total`-style counter: commit batches driven.
    pub batches: Counter,
    /// Groups committed.
    pub groups_committed: Counter,
    /// `net_commit_queue_depth`: handoff-ring occupancy.
    pub queue_depth: Gauge,
    /// `net_commit_batch_size`: groups per commit batch.
    pub batch_size: Histogram,
    /// `net_commit_stalls_total`: bounded poll-thread stalls on a full
    /// handoff ring.
    pub stalls: Counter,
}

/// What the commit worker accumulated over its lifetime.
#[derive(Debug, Default)]
pub struct CommitLog {
    /// Every committed `(uplink id, verdict)`, in commit order (empty
    /// unless verdict recording was requested).
    pub verdicts: Vec<(u64, ServerVerdict)>,
}

/// Poll-side handle to the commit worker; see the module docs.
pub struct CommitPipe {
    tx: Producer<UplinkDeliveries, HANDOFF_CAPACITY>,
    recycled: Consumer<UplinkDeliveries, HANDOFF_CAPACITY>,
    worker: thread::JoinHandle<Result<CommitLog, NetError>>,
    worker_thread: thread::Thread,
    /// One past the highest committed uplink id; 0 = nothing committed.
    committed: Arc<AtomicU64>,
    queue_depth: Gauge,
    stalls: Counter,
}

impl CommitPipe {
    /// Spawns the commit worker around `sink`.
    ///
    /// `max_batch_groups` bounds one commit batch; `record_verdicts`
    /// keeps `(uplink, verdict)` pairs in the final [`CommitLog`].
    pub fn spawn<S: CommitSink + 'static>(
        sink: S,
        max_batch_groups: usize,
        record_verdicts: bool,
        telemetry: CommitTelemetry,
    ) -> Self {
        let (tx, rx) = channel::<UplinkDeliveries, HANDOFF_CAPACITY>();
        let (recycle_tx, recycled) = channel::<UplinkDeliveries, HANDOFF_CAPACITY>();
        let committed = Arc::new(AtomicU64::new(0));
        let queue_depth = telemetry.queue_depth.clone();
        let stalls = telemetry.stalls.clone();
        let worker_committed = Arc::clone(&committed);
        let worker = thread::Builder::new()
            .name("softlora-commit".into())
            .spawn(move || {
                commit_worker(
                    rx,
                    recycle_tx,
                    sink,
                    worker_committed,
                    max_batch_groups.max(1),
                    record_verdicts,
                    telemetry,
                )
            })
            .expect("spawn commit worker");
        let worker_thread = worker.thread().clone();
        CommitPipe { tx, recycled, worker, worker_thread, committed, queue_depth, stalls }
    }

    /// One past the highest committed uplink id (0 = nothing yet) — what
    /// acks carry back to gateways.
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Acquire)
    }

    /// Hands one released group to the commit worker. A full ring stalls
    /// in bounded ticks (counted in `net_commit_stalls_total`); if the
    /// worker died on a commit error the ring is abandoned and the group
    /// is dropped — the error itself surfaces at
    /// [`CommitPipe::finish`].
    pub fn offer(&mut self, group: UplinkDeliveries) {
        let mut item = group;
        let mut stalled = false;
        loop {
            match self.tx.push(item) {
                Ok(()) => break,
                Err(back) => {
                    item = back;
                    if !stalled {
                        self.stalls.inc();
                        stalled = true;
                    }
                    self.worker_thread.unpark();
                    thread::sleep(STALL_TICK);
                }
            }
        }
        self.queue_depth.set(self.tx.len() as f64);
    }

    /// Wakes the worker after a run of offers.
    pub fn kick(&self) {
        self.worker_thread.unpark();
    }

    /// Whether the commit worker has exited (only before
    /// [`CommitPipe::finish`] on a commit failure) — the watermark will
    /// never advance again, so waits on it must stop.
    pub fn worker_finished(&self) -> bool {
        self.worker.is_finished()
    }

    /// A group the worker finished with, ready for
    /// [`Reassembler::recycle`].
    pub fn pop_recycled(&mut self) -> Option<UplinkDeliveries> {
        self.recycled.try_pop()
    }

    /// Closes the handoff ring, drains the worker and returns its log.
    ///
    /// # Errors
    ///
    /// The commit failure that stopped the worker, if any.
    pub fn finish(mut self) -> Result<CommitLog, NetError> {
        self.tx.close();
        self.worker_thread.unpark();
        self.worker.join().expect("commit worker panicked")
    }
}

impl std::fmt::Debug for CommitPipe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitPipe").field("committed", &self.committed()).finish()
    }
}

/// The dedicated commit thread: pop a batch, drive the sink, publish the
/// watermark, recycle the shells.
fn commit_worker<S: CommitSink>(
    mut rx: Consumer<UplinkDeliveries, HANDOFF_CAPACITY>,
    mut recycle_tx: Producer<UplinkDeliveries, HANDOFF_CAPACITY>,
    mut sink: S,
    committed: Arc<AtomicU64>,
    max_batch: usize,
    record_verdicts: bool,
    telemetry: CommitTelemetry,
) -> Result<CommitLog, NetError> {
    let mut batch: Vec<UplinkDeliveries> = Vec::with_capacity(max_batch);
    let mut verdicts: Vec<ServerVerdict> = Vec::new();
    let mut log = CommitLog::default();
    loop {
        batch.clear();
        if rx.pop_batch(&mut batch, max_batch) == 0 {
            if rx.is_finished() {
                break;
            }
            thread::park_timeout(WORKER_PARK);
            continue;
        }
        telemetry.queue_depth.set(rx.len() as f64);
        verdicts.clear();
        if let Err(e) = sink.commit(&batch, &mut verdicts) {
            // Release the poll thread forever: its offers become counted
            // drops instead of stalls against a dead worker. The error
            // itself surfaces when the pipe is finished.
            rx.abandon();
            return Err(e);
        }
        telemetry.batches.inc();
        telemetry.groups_committed.add(batch.len() as u64);
        telemetry.batch_size.record(batch.len() as u64);
        if let Some(last) = batch.last() {
            committed.store(last.uplink.saturating_add(1), Ordering::Release);
        }
        if record_verdicts {
            for (group, verdict) in batch.iter().zip(verdicts.drain(..)) {
                log.verdicts.push((group.uplink, verdict));
            }
        }
        // Best-effort recycling: a full recycle ring just means the poll
        // side is not reclaiming — drop the overflow normally.
        for group in batch.drain(..) {
            if recycle_tx.push(group).is_err() {
                break;
            }
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_phy::SpreadingFactor;
    use softlora_sim::Delivery;

    fn header(uplink: u64, copies_total: u16, copy_index: u16) -> CopyHeader {
        CopyHeader {
            uplink,
            dev_addr: 7,
            tx_start_global_s: uplink as f64,
            airtime_s: 0.05,
            copies_total,
            copy_index,
        }
    }

    fn copy(gateway: usize) -> FleetDelivery {
        FleetDelivery {
            gateway,
            delivery: Delivery {
                bytes: vec![1, 2, 3],
                dev_addr: 7,
                arrival_global_s: 0.0,
                snr_db: -5.0,
                carrier_bias_hz: 0.0,
                carrier_phase: 0.0,
                sf: SpreadingFactor::Sf7,
                jamming: None,
                is_replay: false,
            },
        }
    }

    fn telemetry() -> CommitTelemetry {
        let registry = softlora_telemetry::global();
        CommitTelemetry {
            batches: registry.counter("test_ingest_batches"),
            groups_committed: registry.counter("test_ingest_groups"),
            queue_depth: registry.gauge_with("test_ingest_depth", &[]),
            batch_size: registry.histogram_with("test_ingest_batch_size", &[]),
            stalls: registry.counter("test_ingest_stalls"),
        }
    }

    #[test]
    fn reassembles_out_of_order_copies_in_ascending_order() {
        let mut r = Reassembler::new(Duration::from_secs(60), 1024);
        // Copies arrive scrambled across two groups.
        assert_eq!(r.stash(&header(1, 2, 1), Some(copy(3))), Stash::Filed);
        assert_eq!(r.stash(&header(0, 1, 0), Some(copy(0))), Stash::Filed);
        assert_eq!(r.stash(&header(1, 2, 0), Some(copy(2))), Stash::Filed);
        assert_eq!(r.pending_len(), 2);
        assert_eq!(r.ready_count(Some(2)), 2);
        let mut out = Vec::new();
        let tally = r.drain_ready(Some(2), false, &mut out);
        assert_eq!(tally, DrainTally { emitted: 2, incomplete: 0 });
        assert_eq!(out[0].uplink, 0);
        assert_eq!(out[1].uplink, 1);
        assert_eq!(out[1].copies.len(), 2);
        assert_eq!(out[1].copies[0].gateway, 2, "internal copy order restored");
        assert_eq!(out[1].copies[1].gateway, 3);
        // A late copy for a drained group is stale.
        assert_eq!(r.stash(&header(0, 1, 0), Some(copy(0))), Stash::Stale);
    }

    #[test]
    fn incomplete_group_gates_until_barrier_or_timeout() {
        let mut r = Reassembler::new(Duration::from_secs(60), 1024);
        r.stash(&header(0, 2, 0), Some(copy(0)));
        r.stash(&header(1, 1, 0), Some(copy(1)));
        assert_eq!(r.ready_count(Some(2)), 0, "incomplete front group gates");
        let mut out = Vec::new();
        assert_eq!(r.drain_ready(Some(2), false, &mut out), DrainTally::default());
        // Shutdown drain forces both out, counting the incomplete one.
        let tally = r.drain_ready(None, true, &mut out);
        assert_eq!(tally, DrainTally { emitted: 2, incomplete: 1 });
        assert_eq!(out[0].copies.len(), 1);
    }

    #[test]
    fn holes_below_the_barrier_release_silently() {
        let mut r = Reassembler::new(Duration::from_secs(60), 1024);
        r.stash(&header(0, 1, 0), Some(copy(0)));
        r.stash(&header(2, 1, 0), Some(copy(1)));
        // Uplink 1 never arrives; the watermark promises it never will.
        assert_eq!(r.ready_count(Some(3)), 2);
        let mut out = Vec::new();
        let tally = r.drain_ready(Some(3), false, &mut out);
        assert_eq!(tally.emitted, 2);
        assert_eq!(out.iter().map(|g| g.uplink).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(r.stash(&header(1, 1, 0), Some(copy(9))), Stash::Stale);
    }

    #[test]
    fn duplicate_and_bad_index_copies_rejected() {
        let mut r = Reassembler::new(Duration::from_secs(60), 1024);
        assert_eq!(r.stash(&header(0, 2, 0), Some(copy(0))), Stash::Filed);
        assert_eq!(r.stash(&header(0, 2, 0), Some(copy(0))), Stash::DuplicateCopy);
        assert_eq!(r.stash(&header(0, 2, 5), Some(copy(0))), Stash::BadCopyIndex);
        assert_eq!(r.stash(&header(1 << 40, 1, 0), Some(copy(0))), Stash::FarFuture);
    }

    #[test]
    fn forged_far_future_id_on_empty_window_is_rejected() {
        let mut r = Reassembler::new(Duration::from_secs(60), 8);
        // A single forged datagram with a huge uplink id must not seed
        // the window (it would FarFuture-reject every legitimate smaller
        // id, then jump the base past them forever).
        assert_eq!(r.stash(&header(1 << 60, 1, 0), Some(copy(0))), Stash::FarFuture);
        assert_eq!(r.stash(&header(u64::MAX, 1, 0), Some(copy(0))), Stash::FarFuture);
        // Legitimate ingest is untouched afterwards.
        assert_eq!(r.stash(&header(0, 1, 0), Some(copy(0))), Stash::Filed);
        let mut out = Vec::new();
        assert_eq!(r.drain_ready(Some(1), false, &mut out).emitted, 1);
        assert_eq!(out[0].uplink, 0);
        // Rejection also applies relative to the advanced base.
        assert_eq!(r.stash(&header(1 + 8, 1, 0), Some(copy(0))), Stash::FarFuture);
        assert_eq!(r.stash(&header(1, 1, 0), Some(copy(0))), Stash::Filed);
    }

    #[test]
    fn full_window_force_releases_oldest_groups() {
        let mut r = Reassembler::new(Duration::from_secs(60), 4);
        // Fill the window; group 0 stays incomplete.
        r.stash(&header(0, 2, 0), Some(copy(0)));
        for id in 1..4 {
            r.stash(&header(id, 1, 0), Some(copy(0)));
        }
        assert_eq!(r.pending_len(), 4);
        // Id 5 needs a position two past the window end: the two oldest
        // groups are force-released (documented overload behavior), not
        // the new already-acked copy dropped.
        assert_eq!(r.stash(&header(5, 1, 0), Some(copy(0))), Stash::Filed);
        assert_eq!(r.spilled_len(), 2);
        let mut out = Vec::new();
        let tally = r.drain_ready(None, false, &mut out);
        assert_eq!(tally, DrainTally { emitted: 2, incomplete: 1 });
        assert_eq!(out.iter().map(|g| g.uplink).collect::<Vec<_>>(), vec![0, 1]);
        // Evicted ids are drained: late copies for them are stale.
        assert_eq!(r.stash(&header(0, 2, 1), Some(copy(1))), Stash::Stale);
        // The rest of the window still commits in ascending order.
        let tally = r.drain_ready(Some(6), false, &mut out);
        assert_eq!(tally, DrainTally { emitted: 3, incomplete: 0 });
        assert_eq!(out.iter().map(|g| g.uplink).collect::<Vec<_>>(), vec![0, 1, 2, 3, 5]);
        // Ids past one full window beyond the front stay rejected, so a
        // forged id cannot flush the whole window at once.
        r.stash(&header(6, 1, 0), Some(copy(0)));
        assert_eq!(r.stash(&header(6 + 8, 1, 0), Some(copy(0))), Stash::FarFuture);
        assert_eq!(r.pending_len(), 1, "rejected id did not evict anything");
    }

    #[test]
    fn recycled_groups_are_reused() {
        let mut r = Reassembler::new(Duration::from_secs(60), 1024);
        r.stash(&header(0, 1, 0), Some(copy(0)));
        let mut out = Vec::new();
        r.drain_ready(Some(1), false, &mut out);
        let mut group = out.pop().unwrap();
        group.copies.clear();
        let shell_ptr = group.copies.as_ptr();
        r.recycle(group);
        r.stash(&header(1, 1, 0), Some(copy(0)));
        r.drain_ready(Some(2), false, &mut out);
        assert_eq!(out[0].uplink, 1);
        assert_eq!(out[0].copies.as_ptr(), shell_ptr, "pooled group shell reused");
    }

    /// A counting stub sink: the pipe's ordering/watermark contract
    /// without a server tail.
    struct CountingSink {
        committed: Vec<u64>,
        fail_at: Option<u64>,
    }

    impl CommitSink for CountingSink {
        fn commit(
            &mut self,
            groups: &[UplinkDeliveries],
            _verdicts: &mut Vec<ServerVerdict>,
        ) -> Result<(), NetError> {
            for g in groups {
                if self.fail_at == Some(g.uplink) {
                    return Err(NetError::TooShort { len: 0 });
                }
                self.committed.push(g.uplink);
            }
            Ok(())
        }
    }

    fn group(uplink: u64) -> UplinkDeliveries {
        UplinkDeliveries {
            uplink,
            dev_addr: 7,
            tx_start_global_s: uplink as f64,
            airtime_s: 0.05,
            copies: vec![copy(0)],
        }
    }

    #[test]
    fn pipe_commits_in_order_and_publishes_watermark() {
        let mut pipe = CommitPipe::spawn(
            CountingSink { committed: Vec::new(), fail_at: None },
            64,
            false,
            telemetry(),
        );
        assert_eq!(pipe.committed(), 0);
        for uplink in 0..200 {
            pipe.offer(group(uplink));
        }
        pipe.kick();
        // The watermark reaches one past the last committed id.
        let deadline = Instant::now() + Duration::from_secs(5);
        while pipe.committed() < 200 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pipe.committed(), 200);
        let recycled = std::iter::from_fn(|| pipe.pop_recycled()).count();
        assert!(recycled > 0, "committed groups flow back for reuse");
        pipe.finish().expect("no commit failure");
    }

    #[test]
    fn pipe_surfaces_commit_failure_without_wedging_offers() {
        let mut pipe = CommitPipe::spawn(
            CountingSink { committed: Vec::new(), fail_at: Some(5) },
            8,
            false,
            telemetry(),
        );
        // Far more groups than the ring holds: once the worker dies the
        // ring is abandoned, so every offer still returns promptly.
        for uplink in 0..(HANDOFF_CAPACITY as u64 + 500) {
            pipe.offer(group(uplink));
        }
        let err = pipe.finish().expect_err("sink failure surfaces");
        assert!(matches!(err, NetError::TooShort { .. }));
    }
}
