//! The fleet-scale load generator: N concurrent gateway sockets replaying
//! a simulated fleet's traffic against a live listener.
//!
//! Each gateway runs on its own thread with its own UDP socket and plays
//! its wire stream (from [`crate::gateway_streams`]) in lock-step: send a
//! `PUSH_DATA` datagram, wait for the `PUSH_ACK`, retransmit on timeout.
//! Lock-step bounds the fleet's in-flight datagrams at one per gateway —
//! well under default socket buffers even at hundreds of gateways — and
//! makes the send→ack round trip the natural per-datagram **ack
//! latency** sample. Retransmissions double as organic duplicate traffic
//! for the listener's dedup path.
//!
//! Since the listener commits off-thread (protocol version 3), every ack
//! also carries the server's **committed watermark**, so the generator
//! separately measures **end-to-end commit latency**: send time of a
//! datagram until an ack proves its uplinks are committed. The two
//! distributions answer different questions — ack latency is the wire
//! round trip the poll thread controls; commit latency additionally
//! includes the fleet watermark barrier and the commit worker's queue.
//! Datagrams still uncommitted when a gateway's stream ends are resolved
//! by polling keepalives until [`LoadgenConfig::commit_wait`] expires.
//!
//! The report carries sustained throughput plus p50/p90/p99/p999 blocks
//! for both latencies and serialises itself to JSON for CI artifacts.
//!
//! Besides the closed-loop (lock-step) mode there is an **open-loop**
//! mode ([`replay_fleet_open_loop`]): each gateway sends at a Poisson
//! process of a configured offered rate, never waiting for acks, so the
//! fleet keeps offering load whether or not the listener keeps up — the
//! standard way to find a server's **saturation knee**. A rate sweep
//! ([`SweepReport`]) replays the same stream at increasing offered rates
//! and reports the last rate the listener sustained — sustained meaning
//! p99 ingest latency within [`SWEEP_P99_BUDGET_US`], since in open
//! loop the offered rate is met by construction and overload surfaces
//! as queueing delay, not throughput shortfall.

use crate::export::gateway_streams;
use crate::protocol::{decode_frame, encode_frame_into, Frame, PushData, WireUplink};
use crate::NetError;
use softlora_sim::UplinkDeliveries;
use softlora_store::Encoder;
use std::collections::VecDeque;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

/// Tuning knobs for a load run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Uplink copies packed into one `PUSH_DATA` datagram.
    pub copies_per_datagram: usize,
    /// How long a gateway waits for an ack before retransmitting.
    pub ack_timeout: Duration,
    /// Retransmissions per datagram before the gateway gives up.
    pub max_retries: u32,
    /// Optional pacing: minimum spacing between one gateway's datagrams.
    /// `None` replays as fast as the ack loop allows.
    pub datagram_interval: Option<Duration>,
    /// After a gateway's stream ends, how long it keeps polling
    /// keepalives for the commit watermark to cover its last uplinks
    /// (end-to-end commit-latency samples). Datagrams still unresolved
    /// at the deadline simply contribute no commit sample.
    pub commit_wait: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            copies_per_datagram: 8,
            ack_timeout: Duration::from_millis(250),
            max_retries: 40,
            datagram_interval: None,
            commit_wait: Duration::from_secs(5),
        }
    }
}

/// Percentile summary of a per-datagram latency distribution (send→ack
/// or send→committed).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Samples (acknowledged datagrams).
    pub count: u64,
    /// Mean, microseconds.
    pub mean_us: f64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile, microseconds.
    pub p999_us: u64,
    /// Worst sample, microseconds.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarises a raw sample set (consumed: sorted in place).
    pub fn from_samples(mut samples_us: Vec<u64>) -> Self {
        if samples_us.is_empty() {
            return LatencySummary::default();
        }
        samples_us.sort_unstable();
        let n = samples_us.len();
        let pct = |p: f64| samples_us[(((n - 1) as f64) * p).round() as usize];
        let sum: u64 = samples_us.iter().sum();
        LatencySummary {
            count: n as u64,
            mean_us: sum as f64 / n as f64,
            p50_us: pct(0.50),
            p90_us: pct(0.90),
            p99_us: pct(0.99),
            p999_us: pct(0.999),
            max_us: samples_us[n - 1],
        }
    }

    /// Serialises the summary as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
            self.count, self.mean_us, self.p50_us, self.p90_us, self.p99_us, self.p999_us,
            self.max_us,
        )
    }
}

/// What a finished load run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Concurrent gateway senders.
    pub gateways: usize,
    /// Uplink groups in the replayed stream.
    pub uplinks: u64,
    /// Copies (+ empty-group markers) put on the wire.
    pub copies: u64,
    /// Datagrams sent (excluding retransmissions).
    pub datagrams: u64,
    /// Retransmissions across the fleet.
    pub retries: u64,
    /// Wall-clock duration of the replay, seconds.
    pub elapsed_s: f64,
    /// Sustained uplink groups per second.
    pub uplinks_per_s: f64,
    /// Sustained copies per second.
    pub copies_per_s: f64,
    /// Wire round-trip (send→ack) percentiles — what the poll thread
    /// alone controls.
    pub ack_latency: LatencySummary,
    /// End-to-end (send→committed) percentiles — additionally includes
    /// the fleet watermark barrier and the commit worker's queue.
    pub commit_latency: LatencySummary,
}

impl LoadgenReport {
    /// Serialises the report as a JSON object (hand-rolled — the
    /// workspace is dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"gateways\":{},\"uplinks\":{},\"copies\":{},\"datagrams\":{},",
                "\"retries\":{},\"elapsed_s\":{:.6},\"uplinks_per_s\":{:.3},",
                "\"copies_per_s\":{:.3},\"ack_latency_us\":{},\"commit_latency_us\":{}}}"
            ),
            self.gateways,
            self.uplinks,
            self.copies,
            self.datagrams,
            self.retries,
            self.elapsed_s,
            self.uplinks_per_s,
            self.copies_per_s,
            self.ack_latency.to_json(),
            self.commit_latency.to_json(),
        )
    }
}

/// What one gateway thread measured.
struct GatewayRun {
    latencies_us: Vec<u64>,
    commit_latencies_us: Vec<u64>,
    datagrams: u64,
    retries: u64,
    copies: u64,
}

/// Outstanding commit-latency samples: `(highest uplink id in the
/// datagram, send time)`, pushed in send (= ascending uplink) order and
/// popped from the front as the acked commit watermark passes them.
type CommitPending = VecDeque<(u64, Instant)>;

/// Resolves every pending entry the commit watermark now covers.
fn pop_committed(pending: &mut CommitPending, committed: u64, run: &mut GatewayRun) {
    while pending.front().is_some_and(|&(uplink, _)| uplink < committed) {
        let (_, sent) = pending.pop_front().expect("front checked");
        run.commit_latencies_us.push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
}

/// One offered rate of a sweep: what was offered, what was sustained.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Offered uplink-group rate (fleet-wide Poisson), groups/s.
    pub offered_per_s: f64,
    /// Achieved committed-group rate, groups/s.
    pub achieved_per_s: f64,
    /// The full open-loop run behind the point.
    pub report: LoadgenReport,
}

/// An open-loop rate sweep: the classic offered-vs-achieved curve plus
/// the saturation knee.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// One point per offered rate, in sweep order.
    pub points: Vec<SweepPoint>,
    /// The highest offered rate the listener sustained; `None` when
    /// even the lowest rate saturated. See [`SweepReport::from_points`]
    /// for the criterion.
    pub knee_per_s: Option<f64>,
}

/// The sustained-rate criterion: p99 **ack** latency at or under this
/// budget. In an **open-loop** sweep the offered rate is met by
/// construction (senders never wait), so saturation shows up not as a
/// throughput shortfall but as queueing — acks lag, p99 ack latency
/// explodes. 20 ms is an order of magnitude above the unloaded p99 on
/// loopback and far below the blow-up past the knee. The knee
/// deliberately stays on ack latency: commit latency includes the fleet
/// watermark barrier, which dominates at *low* rates (groups wait for
/// every gateway to advance), so a commit-latency criterion would read
/// an idle fleet as saturated.
pub const SWEEP_P99_BUDGET_US: u64 = 20_000;

impl SweepReport {
    /// Derives the knee from a finished point set: the last offered
    /// rate (in sweep order, before the first saturated one) whose p99
    /// ack latency stayed within [`SWEEP_P99_BUDGET_US`].
    #[must_use]
    pub fn from_points(points: Vec<SweepPoint>) -> Self {
        let knee_per_s = points
            .iter()
            .take_while(|p| p.report.ack_latency.p99_us <= SWEEP_P99_BUDGET_US)
            .last()
            .map(|p| p.offered_per_s);
        SweepReport { points, knee_per_s }
    }

    /// Serialises the sweep as a JSON object (hand-rolled — the
    /// workspace is dependency-free).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"offered_per_s\":{:.3},\"achieved_per_s\":{:.3},\"run\":{}}}",
                p.offered_per_s,
                p.achieved_per_s,
                p.report.to_json()
            ));
        }
        out.push_str("],\"knee_per_s\":");
        match self.knee_per_s {
            Some(knee) => out.push_str(&format!("{knee:.3}")),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

/// A tiny deterministic xorshift64* stream for Poisson interarrival
/// gaps — the load generator must not pull in an RNG dependency, and
/// reproducible sweeps beat "real" randomness here.
struct GapRng(u64);

impl GapRng {
    fn new(seed: u64) -> Self {
        GapRng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// An exponential gap with the given mean (inverse-CDF sampling).
    fn exp_gap(&mut self, mean: Duration) -> Duration {
        // Uniform in (0, 1]: never ln(0).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let u = u.max(f64::MIN_POSITIVE);
        mean.mul_f64(-u.ln())
    }
}

/// Replays a fleet group stream against a listener at `data_addr` from
/// `gateway_count` concurrent sockets and reports throughput + latency.
///
/// # Errors
///
/// Socket failures, or [`NetError::AckTimeout`] when the listener stops
/// acknowledging a gateway within the retry budget.
pub fn replay_fleet(
    groups: &[UplinkDeliveries],
    gateway_count: usize,
    data_addr: SocketAddr,
    config: &LoadgenConfig,
) -> Result<LoadgenReport, NetError> {
    let streams = gateway_streams(groups, gateway_count);
    let started = Instant::now();
    let runs: Vec<Result<GatewayRun, NetError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .into_iter()
            .enumerate()
            .map(|(gateway, stream)| {
                scope.spawn(move || run_gateway(gateway as u32, stream, data_addr, config))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("gateway thread panicked")).collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();
    aggregate_runs(runs, groups.len() as u64, gateway_count, elapsed_s)
}

/// Folds per-gateway measurements into the fleet report.
fn aggregate_runs(
    runs: Vec<Result<GatewayRun, NetError>>,
    uplinks: u64,
    gateway_count: usize,
    elapsed_s: f64,
) -> Result<LoadgenReport, NetError> {
    let mut latencies = Vec::new();
    let mut commit_latencies = Vec::new();
    let mut datagrams = 0u64;
    let mut retries = 0u64;
    let mut copies = 0u64;
    for run in runs {
        let run = run?;
        latencies.extend(run.latencies_us);
        commit_latencies.extend(run.commit_latencies_us);
        datagrams += run.datagrams;
        retries += run.retries;
        copies += run.copies;
    }
    Ok(LoadgenReport {
        gateways: gateway_count,
        uplinks,
        copies,
        datagrams,
        retries,
        elapsed_s,
        uplinks_per_s: uplinks as f64 / elapsed_s.max(1e-9),
        copies_per_s: copies as f64 / elapsed_s.max(1e-9),
        ack_latency: LatencySummary::from_samples(latencies),
        commit_latency: LatencySummary::from_samples(commit_latencies),
    })
}

/// Replays a fleet group stream **open-loop**: each gateway offers its
/// datagrams on an independent Poisson process sized so the fleet-wide
/// offered rate is `offered_per_s` uplink groups per second, never
/// waiting for acks between datagrams. Acks are drained asynchronously
/// for latency samples; only the final barrier-release keepalive is sent
/// lock-step (so the listener's commit barrier always opens). Past the
/// saturation knee the listener's queues grow, acks lag and the run
/// stretches beyond the offered schedule — which is exactly the signal
/// [`SweepReport`] detects.
///
/// Datagrams are **not** retransmitted (open loop): a drop under
/// overload surfaces as an incomplete group at the listener, not as
/// back-pressure on the generator.
///
/// # Errors
///
/// Socket failures, or [`NetError::AckTimeout`] when the final
/// barrier-release keepalive is never acknowledged.
pub fn replay_fleet_open_loop(
    groups: &[UplinkDeliveries],
    gateway_count: usize,
    data_addr: SocketAddr,
    config: &LoadgenConfig,
    offered_per_s: f64,
    seed: u64,
) -> Result<LoadgenReport, NetError> {
    let streams = gateway_streams(groups, gateway_count);
    let target_s = groups.len() as f64 / offered_per_s.max(1e-9);
    let started = Instant::now();
    let runs: Vec<Result<GatewayRun, NetError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .into_iter()
            .enumerate()
            .map(|(gateway, stream)| {
                let gw_seed = seed ^ (gateway as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                scope.spawn(move || {
                    run_gateway_open_loop(
                        gateway as u32,
                        stream,
                        data_addr,
                        config,
                        target_s,
                        gw_seed,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("gateway thread panicked")).collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();
    aggregate_runs(runs, groups.len() as u64, gateway_count, elapsed_s)
}

/// One gateway's open-loop (Poisson-paced, no ack wait) replay loop.
fn run_gateway_open_loop(
    gateway: u32,
    stream: Vec<WireUplink>,
    data_addr: SocketAddr,
    config: &LoadgenConfig,
    target_s: f64,
    seed: u64,
) -> Result<GatewayRun, NetError> {
    let socket = UdpSocket::bind("127.0.0.1:0")?;
    socket.connect(data_addr)?;
    socket.set_nonblocking(true)?;

    let mut run = GatewayRun {
        latencies_us: Vec::new(),
        commit_latencies_us: Vec::new(),
        datagrams: 0,
        retries: 0,
        copies: 0,
    };
    let mut scratch = Encoder::new();
    let mut rng = GapRng::new(seed);
    let chunk_size = config.copies_per_datagram.max(1);
    let chunks: Vec<&[WireUplink]> = stream.chunks(chunk_size).collect();
    let mean = Duration::from_secs_f64(target_s / chunks.len().max(1) as f64);
    let mut sent_at: std::collections::HashMap<u64, Instant> = std::collections::HashMap::new();
    let mut commit_pending: CommitPending = CommitPending::new();

    let mut next_send = Instant::now();
    for (k, chunk) in chunks.iter().enumerate() {
        let watermark = chunks.get(k + 1).map_or(u64::MAX, |next| next[0].uplink);
        let seq = k as u64;
        let frame = Frame::PushData(PushData { gateway, seq, watermark, uplinks: chunk.to_vec() });
        next_send += rng.exp_gap(mean);
        loop {
            drain_acks(&socket, &mut sent_at, &mut commit_pending, &mut run)?;
            let now = Instant::now();
            if now >= next_send {
                break;
            }
            std::thread::sleep((next_send - now).min(Duration::from_millis(1)));
        }
        scratch.clear();
        encode_frame_into(&frame, &mut scratch);
        let sent = Instant::now();
        sent_at.insert(seq, sent);
        if let Some(last) = chunk.last() {
            commit_pending.push_back((last.uplink, sent));
        }
        socket.send(scratch.as_bytes())?;
        run.datagrams += 1;
        run.copies += chunk.len() as u64;
    }

    // Release the fleet barrier reliably: one lock-step keepalive with
    // the full-release watermark (duplicate-safe whether or not the last
    // data datagram survived).
    socket.set_nonblocking(false)?;
    socket.set_read_timeout(Some(config.ack_timeout))?;
    let final_seq = chunks.len() as u64;
    let release = Frame::PullData { gateway, seq: final_seq, watermark: u64::MAX };
    let committed =
        send_acked(&socket, &mut scratch, &release, gateway, final_seq, config, &mut run)?;
    pop_committed(&mut commit_pending, committed, &mut run);

    // One more timeout window for straggling data acks (their latency
    // samples are the interesting ones near saturation).
    socket.set_nonblocking(true)?;
    let deadline = Instant::now() + config.ack_timeout;
    while !sent_at.is_empty() && Instant::now() < deadline {
        drain_acks(&socket, &mut sent_at, &mut commit_pending, &mut run)?;
        std::thread::sleep(Duration::from_micros(200));
    }

    // Resolve the commit tail: poll keepalives until the commit
    // watermark covers everything this gateway sent (or the budget
    // runs out — under overload the unresolved tail is the finding).
    socket.set_nonblocking(false)?;
    resolve_commits(
        &socket,
        &mut scratch,
        gateway,
        final_seq + 1,
        config,
        &mut commit_pending,
        &mut run,
    )?;
    Ok(run)
}

/// Drains every ack currently queued on a non-blocking socket, matching
/// them to outstanding send times for ack-latency samples and advancing
/// the commit-latency queue with the acked watermark.
fn drain_acks(
    socket: &UdpSocket,
    sent_at: &mut std::collections::HashMap<u64, Instant>,
    commit_pending: &mut CommitPending,
    run: &mut GatewayRun,
) -> Result<(), NetError> {
    let mut buf = [0u8; 256];
    loop {
        match socket.recv(&mut buf) {
            Ok(len) => {
                if let Ok(
                    Frame::PushAck { seq, committed, .. } | Frame::PullAck { seq, committed, .. },
                ) = decode_frame(&buf[..len])
                {
                    if let Some(sent) = sent_at.remove(&seq) {
                        run.latencies_us
                            .push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
                    }
                    pop_committed(commit_pending, committed, run);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(());
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
}

/// Polls lock-step keepalives (on a blocking socket) until the commit
/// watermark covers every pending datagram or
/// [`LoadgenConfig::commit_wait`] expires.
fn resolve_commits(
    socket: &UdpSocket,
    scratch: &mut Encoder,
    gateway: u32,
    mut seq: u64,
    config: &LoadgenConfig,
    commit_pending: &mut CommitPending,
    run: &mut GatewayRun,
) -> Result<(), NetError> {
    let deadline = Instant::now() + config.commit_wait;
    while !commit_pending.is_empty() && Instant::now() < deadline {
        let frame = Frame::PullData { gateway, seq, watermark: u64::MAX };
        let committed = send_acked(socket, scratch, &frame, gateway, seq, config, run)?;
        seq += 1;
        pop_committed(commit_pending, committed, run);
        if !commit_pending.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    Ok(())
}

/// One gateway's lock-step replay loop.
fn run_gateway(
    gateway: u32,
    stream: Vec<WireUplink>,
    data_addr: SocketAddr,
    config: &LoadgenConfig,
) -> Result<GatewayRun, NetError> {
    let socket = UdpSocket::bind("127.0.0.1:0")?;
    socket.connect(data_addr)?;
    socket.set_read_timeout(Some(config.ack_timeout))?;

    let mut run = GatewayRun {
        latencies_us: Vec::new(),
        commit_latencies_us: Vec::new(),
        datagrams: 0,
        retries: 0,
        copies: 0,
    };
    let mut scratch = Encoder::new();
    let mut seq = 0u64;
    let mut next_send = Instant::now();
    let mut commit_pending: CommitPending = CommitPending::new();

    let chunk_size = config.copies_per_datagram.max(1);
    let chunks: Vec<&[WireUplink]> = stream.chunks(chunk_size).collect();
    for (k, chunk) in chunks.iter().enumerate() {
        // Promise everything strictly below the next chunk's first id;
        // the final chunk releases the whole stream.
        let watermark = match chunks.get(k + 1) {
            Some(next) => next[0].uplink,
            None => u64::MAX,
        };
        let frame = Frame::PushData(PushData { gateway, seq, watermark, uplinks: chunk.to_vec() });
        if let Some(interval) = config.datagram_interval {
            let now = Instant::now();
            if next_send > now {
                std::thread::sleep(next_send - now);
            }
            next_send = next_send.max(now) + interval;
        }
        let sent = Instant::now();
        if let Some(last) = chunk.last() {
            commit_pending.push_back((last.uplink, sent));
        }
        let committed = send_acked(&socket, &mut scratch, &frame, gateway, seq, config, &mut run)?;
        pop_committed(&mut commit_pending, committed, &mut run);
        run.copies += chunk.len() as u64;
        seq += 1;
    }
    if chunks.is_empty() {
        // A silent gateway still has to release the fleet barrier.
        let frame = Frame::PullData { gateway, seq, watermark: u64::MAX };
        send_acked(&socket, &mut scratch, &frame, gateway, seq, config, &mut run)?;
        seq += 1;
    }
    // Resolve the commit tail before reporting (bounded by commit_wait).
    resolve_commits(&socket, &mut scratch, gateway, seq, config, &mut commit_pending, &mut run)?;
    Ok(run)
}

/// Sends one datagram and blocks until its ack, retransmitting on
/// timeout. Records the send→ack latency and returns the commit
/// watermark the matching ack carried.
fn send_acked(
    socket: &UdpSocket,
    scratch: &mut Encoder,
    frame: &Frame,
    gateway: u32,
    seq: u64,
    config: &LoadgenConfig,
    run: &mut GatewayRun,
) -> Result<u64, NetError> {
    scratch.clear();
    encode_frame_into(frame, scratch);
    let started = Instant::now();
    let mut buf = [0u8; 256];
    for attempt in 0..=config.max_retries {
        if attempt > 0 {
            run.retries += 1;
        }
        socket.send(scratch.as_bytes())?;
        let deadline = Instant::now() + config.ack_timeout;
        loop {
            match socket.recv(&mut buf) {
                Ok(len) => match decode_frame(&buf[..len]) {
                    Ok(
                        Frame::PushAck { gateway: g, seq: s, committed }
                        | Frame::PullAck { gateway: g, seq: s, committed },
                    ) if g == gateway && s == seq => {
                        run.datagrams += 1;
                        run.latencies_us
                            .push(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
                        return Ok(committed);
                    }
                    // A stale ack (earlier retransmission) or noise:
                    // keep listening until the deadline.
                    _ => {}
                },
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(e) => return Err(NetError::Io(e)),
            }
            if Instant::now() >= deadline {
                break;
            }
        }
    }
    Err(NetError::AckTimeout { gateway, seq })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        let samples: Vec<u64> = (1..=1000).collect();
        let s = LatencySummary::from_samples(samples);
        assert_eq!(s.count, 1000);
        // Index (n-1)*0.5 = 499.5 rounds half-away-from-zero to 500.
        assert_eq!(s.p50_us, 501);
        assert_eq!(s.p99_us, 990);
        assert_eq!(s.max_us, 1000);
    }

    #[test]
    fn sweep_knee_is_the_last_sustained_rate() {
        let run = LoadgenReport {
            gateways: 1,
            uplinks: 10,
            copies: 10,
            datagrams: 10,
            retries: 0,
            elapsed_s: 1.0,
            uplinks_per_s: 10.0,
            copies_per_s: 10.0,
            ack_latency: LatencySummary::default(),
            commit_latency: LatencySummary::default(),
        };
        let point = |offered: f64, p99_us: u64| SweepPoint {
            offered_per_s: offered,
            achieved_per_s: offered,
            report: LoadgenReport {
                ack_latency: LatencySummary { p99_us, ..LatencySummary::default() },
                ..run.clone()
            },
        };
        // Ack p99 stays in budget at 100 and 200, explodes at 400.
        let sweep = SweepReport::from_points(vec![
            point(100.0, 900),
            point(200.0, SWEEP_P99_BUDGET_US),
            point(400.0, 48_000),
        ]);
        assert_eq!(sweep.knee_per_s, Some(200.0));
        let json = sweep.to_json();
        assert!(json.contains("\"knee_per_s\":200.000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        // Saturated from the first point: no knee.
        let sweep = SweepReport::from_points(vec![point(100.0, SWEEP_P99_BUDGET_US + 1)]);
        assert_eq!(sweep.knee_per_s, None);
        assert!(sweep.to_json().contains("\"knee_per_s\":null"));
    }

    #[test]
    fn poisson_gaps_have_the_requested_mean() {
        let mut rng = GapRng::new(21);
        let mean = Duration::from_micros(500);
        let n = 20_000;
        let total: Duration = (0..n).map(|_| rng.exp_gap(mean)).sum();
        let observed_us = total.as_secs_f64() * 1e6 / f64::from(n);
        assert!((observed_us - 500.0).abs() < 25.0, "mean gap {observed_us:.1} µs");
    }

    #[test]
    fn report_json_is_well_formed() {
        let report = LoadgenReport {
            gateways: 4,
            uplinks: 100,
            copies: 400,
            datagrams: 50,
            retries: 1,
            elapsed_s: 0.5,
            uplinks_per_s: 200.0,
            copies_per_s: 800.0,
            ack_latency: LatencySummary::from_samples(vec![10, 20, 30]),
            commit_latency: LatencySummary::from_samples(vec![100, 200, 300]),
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ack_latency_us\":"));
        assert!(json.contains("\"commit_latency_us\":"));
        assert!(json.contains("\"p999\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
