//! The fleet-scale load generator: N concurrent gateway sockets replaying
//! a simulated fleet's traffic against a live listener.
//!
//! Each gateway runs on its own thread with its own UDP socket and plays
//! its wire stream (from [`crate::gateway_streams`]) in lock-step: send a
//! `PUSH_DATA` datagram, wait for the `PUSH_ACK`, retransmit on timeout.
//! Lock-step bounds the fleet's in-flight datagrams at one per gateway —
//! well under default socket buffers even at hundreds of gateways — and
//! makes the send→ack round trip the natural per-datagram **ingest
//! latency** sample. Retransmissions double as organic duplicate traffic
//! for the listener's dedup path.
//!
//! The report carries sustained throughput plus p50/p90/p99/p999 latency
//! and serialises itself to JSON for CI artifacts.

use crate::export::gateway_streams;
use crate::protocol::{decode_frame, encode_frame_into, Frame, PushData, WireUplink};
use crate::NetError;
use softlora_sim::UplinkDeliveries;
use softlora_store::Encoder;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

/// Tuning knobs for a load run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Uplink copies packed into one `PUSH_DATA` datagram.
    pub copies_per_datagram: usize,
    /// How long a gateway waits for an ack before retransmitting.
    pub ack_timeout: Duration,
    /// Retransmissions per datagram before the gateway gives up.
    pub max_retries: u32,
    /// Optional pacing: minimum spacing between one gateway's datagrams.
    /// `None` replays as fast as the ack loop allows.
    pub datagram_interval: Option<Duration>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            copies_per_datagram: 8,
            ack_timeout: Duration::from_millis(250),
            max_retries: 40,
            datagram_interval: None,
        }
    }
}

/// Percentile summary of per-datagram ingest (send→ack) latency.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Samples (acknowledged datagrams).
    pub count: u64,
    /// Mean, microseconds.
    pub mean_us: f64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile, microseconds.
    pub p999_us: u64,
    /// Worst sample, microseconds.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarises a raw sample set (consumed: sorted in place).
    pub fn from_samples(mut samples_us: Vec<u64>) -> Self {
        if samples_us.is_empty() {
            return LatencySummary::default();
        }
        samples_us.sort_unstable();
        let n = samples_us.len();
        let pct = |p: f64| samples_us[(((n - 1) as f64) * p).round() as usize];
        let sum: u64 = samples_us.iter().sum();
        LatencySummary {
            count: n as u64,
            mean_us: sum as f64 / n as f64,
            p50_us: pct(0.50),
            p90_us: pct(0.90),
            p99_us: pct(0.99),
            p999_us: pct(0.999),
            max_us: samples_us[n - 1],
        }
    }
}

/// What a finished load run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Concurrent gateway senders.
    pub gateways: usize,
    /// Uplink groups in the replayed stream.
    pub uplinks: u64,
    /// Copies (+ empty-group markers) put on the wire.
    pub copies: u64,
    /// Datagrams sent (excluding retransmissions).
    pub datagrams: u64,
    /// Retransmissions across the fleet.
    pub retries: u64,
    /// Wall-clock duration of the replay, seconds.
    pub elapsed_s: f64,
    /// Sustained uplink groups per second.
    pub uplinks_per_s: f64,
    /// Sustained copies per second.
    pub copies_per_s: f64,
    /// Ingest latency percentiles.
    pub latency: LatencySummary,
}

impl LoadgenReport {
    /// Serialises the report as a JSON object (hand-rolled — the
    /// workspace is dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"gateways\":{},\"uplinks\":{},\"copies\":{},\"datagrams\":{},",
                "\"retries\":{},\"elapsed_s\":{:.6},\"uplinks_per_s\":{:.3},",
                "\"copies_per_s\":{:.3},\"latency_us\":{{\"count\":{},\"mean\":{:.3},",
                "\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{}}}}}"
            ),
            self.gateways,
            self.uplinks,
            self.copies,
            self.datagrams,
            self.retries,
            self.elapsed_s,
            self.uplinks_per_s,
            self.copies_per_s,
            self.latency.count,
            self.latency.mean_us,
            self.latency.p50_us,
            self.latency.p90_us,
            self.latency.p99_us,
            self.latency.p999_us,
            self.latency.max_us,
        )
    }
}

/// What one gateway thread measured.
struct GatewayRun {
    latencies_us: Vec<u64>,
    datagrams: u64,
    retries: u64,
    copies: u64,
}

/// Replays a fleet group stream against a listener at `data_addr` from
/// `gateway_count` concurrent sockets and reports throughput + latency.
///
/// # Errors
///
/// Socket failures, or [`NetError::AckTimeout`] when the listener stops
/// acknowledging a gateway within the retry budget.
pub fn replay_fleet(
    groups: &[UplinkDeliveries],
    gateway_count: usize,
    data_addr: SocketAddr,
    config: &LoadgenConfig,
) -> Result<LoadgenReport, NetError> {
    let streams = gateway_streams(groups, gateway_count);
    let started = Instant::now();
    let runs: Vec<Result<GatewayRun, NetError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .into_iter()
            .enumerate()
            .map(|(gateway, stream)| {
                scope.spawn(move || run_gateway(gateway as u32, stream, data_addr, config))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("gateway thread panicked")).collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut latencies = Vec::new();
    let mut datagrams = 0u64;
    let mut retries = 0u64;
    let mut copies = 0u64;
    for run in runs {
        let run = run?;
        latencies.extend(run.latencies_us);
        datagrams += run.datagrams;
        retries += run.retries;
        copies += run.copies;
    }
    let uplinks = groups.len() as u64;
    Ok(LoadgenReport {
        gateways: gateway_count,
        uplinks,
        copies,
        datagrams,
        retries,
        elapsed_s,
        uplinks_per_s: uplinks as f64 / elapsed_s.max(1e-9),
        copies_per_s: copies as f64 / elapsed_s.max(1e-9),
        latency: LatencySummary::from_samples(latencies),
    })
}

/// One gateway's lock-step replay loop.
fn run_gateway(
    gateway: u32,
    stream: Vec<WireUplink>,
    data_addr: SocketAddr,
    config: &LoadgenConfig,
) -> Result<GatewayRun, NetError> {
    let socket = UdpSocket::bind("127.0.0.1:0")?;
    socket.connect(data_addr)?;
    socket.set_read_timeout(Some(config.ack_timeout))?;

    let mut run = GatewayRun { latencies_us: Vec::new(), datagrams: 0, retries: 0, copies: 0 };
    let mut scratch = Encoder::new();
    let mut seq = 0u64;
    let mut next_send = Instant::now();

    let chunk_size = config.copies_per_datagram.max(1);
    let chunks: Vec<&[WireUplink]> = stream.chunks(chunk_size).collect();
    for (k, chunk) in chunks.iter().enumerate() {
        // Promise everything strictly below the next chunk's first id;
        // the final chunk releases the whole stream.
        let watermark = match chunks.get(k + 1) {
            Some(next) => next[0].uplink,
            None => u64::MAX,
        };
        let frame = Frame::PushData(PushData { gateway, seq, watermark, uplinks: chunk.to_vec() });
        if let Some(interval) = config.datagram_interval {
            let now = Instant::now();
            if next_send > now {
                std::thread::sleep(next_send - now);
            }
            next_send = next_send.max(now) + interval;
        }
        send_acked(&socket, &mut scratch, &frame, gateway, seq, config, &mut run)?;
        run.copies += chunk.len() as u64;
        seq += 1;
    }
    if chunks.is_empty() {
        // A silent gateway still has to release the fleet barrier.
        let frame = Frame::PullData { gateway, seq, watermark: u64::MAX };
        send_acked(&socket, &mut scratch, &frame, gateway, seq, config, &mut run)?;
    }
    Ok(run)
}

/// Sends one datagram and blocks until its ack, retransmitting on
/// timeout. Records the send→ack latency.
fn send_acked(
    socket: &UdpSocket,
    scratch: &mut Encoder,
    frame: &Frame,
    gateway: u32,
    seq: u64,
    config: &LoadgenConfig,
    run: &mut GatewayRun,
) -> Result<(), NetError> {
    scratch.clear();
    encode_frame_into(frame, scratch);
    let started = Instant::now();
    let mut buf = [0u8; 256];
    for attempt in 0..=config.max_retries {
        if attempt > 0 {
            run.retries += 1;
        }
        socket.send(scratch.as_bytes())?;
        let deadline = Instant::now() + config.ack_timeout;
        loop {
            match socket.recv(&mut buf) {
                Ok(len) => match decode_frame(&buf[..len]) {
                    Ok(
                        Frame::PushAck { gateway: g, seq: s }
                        | Frame::PullAck { gateway: g, seq: s },
                    ) if g == gateway && s == seq => {
                        run.datagrams += 1;
                        run.latencies_us
                            .push(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
                        return Ok(());
                    }
                    // A stale ack (earlier retransmission) or noise:
                    // keep listening until the deadline.
                    _ => {}
                },
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(e) => return Err(NetError::Io(e)),
            }
            if Instant::now() >= deadline {
                break;
            }
        }
    }
    Err(NetError::AckTimeout { gateway, seq })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        let samples: Vec<u64> = (1..=1000).collect();
        let s = LatencySummary::from_samples(samples);
        assert_eq!(s.count, 1000);
        // Index (n-1)*0.5 = 499.5 rounds half-away-from-zero to 500.
        assert_eq!(s.p50_us, 501);
        assert_eq!(s.p99_us, 990);
        assert_eq!(s.max_us, 1000);
    }

    #[test]
    fn report_json_is_well_formed() {
        let report = LoadgenReport {
            gateways: 4,
            uplinks: 100,
            copies: 400,
            datagrams: 50,
            retries: 1,
            elapsed_s: 0.5,
            uplinks_per_s: 200.0,
            copies_per_s: 800.0,
            latency: LatencySummary::from_samples(vec![10, 20, 30]),
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"p999\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
