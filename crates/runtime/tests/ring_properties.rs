//! Property tests for the SPSC ring buffer: no item is ever lost or
//! duplicated across threads, FIFO order holds through wrap-around, and
//! the ring agrees with a reference queue under arbitrary interleavings.

use proptest::prelude::*;
use softlora_runtime::ring::channel;
use std::collections::VecDeque;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pushing a stream through a 4-slot ring from another thread delivers
    /// exactly the same sequence — nothing lost, nothing duplicated, order
    /// preserved — even though the ring wraps dozens of times.
    #[test]
    fn cross_thread_no_loss_no_duplication(items in prop::collection::vec(any::<u32>(), 0..400)) {
        let (mut tx, mut rx) = channel::<u32, 4>();
        let expected = items.clone();
        let producer = std::thread::spawn(move || {
            let mut queue: VecDeque<u32> = items.into();
            while let Some(item) = queue.pop_front() {
                let mut item = item;
                loop {
                    match tx.push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut got = Vec::with_capacity(expected.len());
        while got.len() < expected.len() {
            match rx.pop() {
                Some(v) => got.push(v),
                None => std::hint::spin_loop(),
            }
        }
        producer.join().unwrap();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(rx.pop(), None);
    }

    /// Batched cross-thread transfer moves the identical sequence.
    #[test]
    fn cross_thread_batched_transfer(items in prop::collection::vec(any::<u16>(), 0..600)) {
        let (mut tx, mut rx) = channel::<u16, 8>();
        let expected = items.clone();
        let producer = std::thread::spawn(move || {
            let mut pending = items;
            while !pending.is_empty() {
                if tx.push_batch(&mut pending) == 0 {
                    std::thread::yield_now();
                }
            }
        });
        let mut got = Vec::with_capacity(expected.len());
        while got.len() < expected.len() {
            if rx.pop_batch(&mut got, 16) == 0 {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(rx.pop(), None);
    }

    /// Under an arbitrary single-threaded push/pop interleaving a 3-slot
    /// ring behaves exactly like a bounded reference queue: pushes fail
    /// precisely at capacity, pops return the reference front, and the
    /// wrap-around never corrupts contents.
    #[test]
    fn matches_reference_queue_through_wraparound(ops in prop::collection::vec(any::<u16>(), 1..300)) {
        const CAP: usize = 3;
        let (mut tx, mut rx) = channel::<u16, CAP>();
        let mut model: VecDeque<u16> = VecDeque::new();
        for (k, op) in ops.iter().enumerate() {
            if op % 3 != 0 {
                // Push attempt.
                let item = *op;
                match tx.push(item) {
                    Ok(()) => {
                        prop_assert!(model.len() < CAP, "push succeeded past capacity at op {}", k);
                        model.push_back(item);
                    }
                    Err(back) => {
                        prop_assert_eq!(back, item);
                        prop_assert_eq!(model.len(), CAP);
                    }
                }
            } else {
                prop_assert_eq!(rx.pop(), model.pop_front());
            }
            prop_assert_eq!(rx.len(), model.len());
        }
        // Drain: the survivors come out in reference order.
        while let Some(want) = model.pop_front() {
            prop_assert_eq!(rx.pop(), Some(want));
        }
        prop_assert_eq!(rx.pop(), None);
    }
}
