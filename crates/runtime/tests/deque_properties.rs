//! Property tests for the work-stealing deque: under arbitrary owner
//! push/pop interleavings racing concurrent thieves, every id comes out
//! exactly once — nothing lost, nothing duplicated — and the owner end
//! behaves LIFO while thieves drain FIFO.

use proptest::prelude::*;
use softlora_runtime::deque::{Steal, StealDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Owner pushes `ids` (popping locally on a script of its own) while
    /// `thieves` threads steal concurrently: every id is dequeued by
    /// exactly one party.
    #[test]
    fn concurrent_steals_lose_and_duplicate_nothing(
        count in 1usize..2_000,
        thieves in 1usize..4,
        pop_bias in 0u8..4,
    ) {
        let deque = Arc::new(StealDeque::new(32));
        let seen: Arc<Vec<AtomicUsize>> =
            Arc::new((0..count).map(|_| AtomicUsize::new(0)).collect());
        let done = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..thieves {
                let deque = Arc::clone(&deque);
                let seen = Arc::clone(&seen);
                let done = Arc::clone(&done);
                scope.spawn(move || loop {
                    match deque.steal() {
                        Steal::Success(id) => {
                            seen[id].fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) == 1 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let mut next = 0usize;
            let mut step = 0u8;
            while next < count {
                step = step.wrapping_add(1);
                // A deterministic owner script: mostly push, with a
                // bias-controlled sprinkle of local pops.
                if step % 4 < pop_bias {
                    if let Some(id) = deque.pop() {
                        seen[id].fetch_add(1, Ordering::Relaxed);
                    }
                } else if deque.push(next).is_ok() {
                    next += 1;
                } else if let Some(id) = deque.pop() {
                    // Full: the owner drains one to make room.
                    seen[id].fetch_add(1, Ordering::Relaxed);
                }
            }
            while let Some(id) = deque.pop() {
                seen[id].fetch_add(1, Ordering::Relaxed);
            }
            done.store(1, Ordering::Release);
        });
        for (id, tally) in seen.iter().enumerate() {
            prop_assert!(tally.load(Ordering::Relaxed) == 1, "id {} exactly once", id);
        }
    }

    /// Single-threaded, the deque agrees with a reference double-ended
    /// queue: owner pops take the back (LIFO), steals take the front
    /// (FIFO), and capacity bounds pushes exactly.
    #[test]
    fn matches_reference_deque(ops in prop::collection::vec(any::<u8>(), 1..400)) {
        let deque = StealDeque::new(8);
        let cap = deque.capacity();
        let mut model: std::collections::VecDeque<usize> = Default::default();
        for (k, op) in ops.iter().enumerate() {
            match op % 3 {
                0 => match deque.push(k) {
                    Ok(()) => {
                        prop_assert!(model.len() < cap, "push past capacity at op {}", k);
                        model.push_back(k);
                    }
                    Err(id) => {
                        prop_assert_eq!(id, k);
                        prop_assert_eq!(model.len(), cap);
                    }
                },
                1 => prop_assert_eq!(deque.pop(), model.pop_back()),
                _ => {
                    let want = model.pop_front();
                    match deque.steal() {
                        Steal::Success(id) => prop_assert_eq!(Some(id), want),
                        Steal::Empty => prop_assert_eq!(want, None),
                        Steal::Retry => prop_assert!(false, "no contention single-threaded"),
                    }
                }
            }
            prop_assert_eq!(deque.len(), model.len());
        }
    }
}
