//! Fixed-capacity Chase-Lev work-stealing deque of block ids.
//!
//! The stealing scheduler's run queue: each worker owns one deque and
//! pushes/pops runnable block ids at the **bottom** (LIFO, cache-warm),
//! while idle workers **steal** from the **top** (FIFO, oldest first).
//! Only ids — small integers indexing the scheduler's node table — cross
//! the deque, so every slot is a plain [`AtomicUsize`] and the classic
//! Chase-Lev algorithm needs no uninitialised memory or dynamic growth:
//!
//! * `bottom` is written only by the owner; `top` only advances, by a
//!   compare-and-swap (owner and thieves race on the last element).
//! * The capacity is fixed at construction. The scheduler sizes every
//!   deque to hold **all** block ids, and maintains the invariant that
//!   each id lives in at most one deque at a time (an id is re-enqueued
//!   only by whoever dequeued it), so [`StealDeque::push`] can never
//!   observe a full deque in scheduler use — but the bound is still
//!   checked and surfaced, never silently overwritten.
//! * `top` is monotone, which rules out ABA: a thief's CAS succeeds only
//!   if no other thief (and not the owner) claimed the same slot first.

use std::sync::atomic::{fence, AtomicIsize, AtomicUsize, Ordering};

/// Outcome of a [`StealDeque::steal`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// The deque was empty.
    Empty,
    /// Another thief (or the owner) won the race for the top element;
    /// retrying immediately may succeed.
    Retry,
    /// Stole this id.
    Success(usize),
}

/// A bounded work-stealing deque of `usize` ids; see the module docs.
///
/// The owner side ([`push`](StealDeque::push) / [`pop`](StealDeque::pop))
/// must stay on a single thread at a time; [`steal`](StealDeque::steal)
/// is safe from any number of concurrent thieves.
pub struct StealDeque {
    /// Slot `p & mask` holds the id pushed at position `p`.
    slots: Box<[AtomicUsize]>,
    mask: usize,
    /// Next position to push (owner-only writes).
    bottom: AtomicIsize,
    /// Next position to steal (CAS by thieves and the racing owner).
    top: AtomicIsize,
}

impl StealDeque {
    /// A deque holding at least `capacity` ids (rounded up to a power of
    /// two, minimum 2).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` exceeds `isize::MAX / 2` slots.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        assert!(cap <= (isize::MAX / 2) as usize, "deque capacity overflow");
        StealDeque {
            slots: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
            mask: cap - 1,
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
        }
    }

    /// Slot count (power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Ids currently queued, from the owner's view (racy under theft —
    /// a lower bound by the time it returns).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Whether the deque currently holds no ids (same caveat as
    /// [`len`](StealDeque::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner: enqueues `id` at the bottom. Returns `Err(id)` when the
    /// deque is full (never happens under the scheduler's sizing
    /// invariant, but the bound is enforced).
    pub fn push(&self, id: usize) -> Result<(), usize> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if (b - t) as usize >= self.capacity() {
            return Err(id);
        }
        self.slots[(b as usize) & self.mask].store(id, Ordering::Relaxed);
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner: dequeues the most recently pushed id, racing thieves for
    /// the last element.
    pub fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // The owner's bottom decrement must be visible before it reads
        // top, and symmetrically for thieves — the heart of Chase-Lev.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty: undo the reservation.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let id = self.slots[(b as usize) & self.mask].load(Ordering::Relaxed);
        if t == b {
            // Last element: win it from the thieves by advancing top.
            let won =
                self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(id);
        }
        Some(id)
    }

    /// Thief: tries to dequeue the oldest id from the top. Safe from any
    /// thread, concurrently with the owner and other thieves.
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Read before the CAS: a successful CAS proves no one else
        // consumed position `t`, so the read saw the live value (top is
        // monotone — the slot cannot have been reused while top == t,
        // because re-pushing requires the old occupant to be consumed,
        // which advances top past t first).
        let id = self.slots[(t as usize) & self.mask].load(Ordering::Relaxed);
        match self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed) {
            Ok(_) => Steal::Success(id),
            Err(_) => Steal::Retry,
        }
    }
}

impl std::fmt::Debug for StealDeque {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StealDeque")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = StealDeque::new(8);
        for id in 0..4 {
            d.push(id).unwrap();
        }
        assert_eq!(d.len(), 4);
        assert_eq!(d.pop(), Some(3), "owner pops newest");
        assert_eq!(d.steal(), Steal::Success(0), "thief steals oldest");
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.steal(), Steal::Success(1));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn capacity_rounds_up_and_bounds_pushes() {
        let d = StealDeque::new(3);
        assert_eq!(d.capacity(), 4);
        for id in 0..4 {
            d.push(id).unwrap();
        }
        assert_eq!(d.push(99), Err(99), "full deque rejects");
        assert_eq!(d.steal(), Steal::Success(0));
        d.push(99).unwrap();
        assert_eq!(d.pop(), Some(99));
    }

    #[test]
    fn wraparound_preserves_ids() {
        let d = StealDeque::new(2);
        for round in 0..100usize {
            d.push(round).unwrap();
            assert_eq!(d.pop(), Some(round));
        }
        assert!(d.is_empty());
    }

    #[test]
    fn concurrent_thieves_never_lose_or_duplicate() {
        use std::sync::Arc;
        const IDS: usize = 20_000;
        const THIEVES: usize = 3;
        let deque = Arc::new(StealDeque::new(64));
        let seen: Arc<Vec<AtomicUsize>> = Arc::new((0..IDS).map(|_| AtomicUsize::new(0)).collect());
        let done = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..THIEVES {
                let deque = Arc::clone(&deque);
                let seen = Arc::clone(&seen);
                let done = Arc::clone(&done);
                scope.spawn(move || loop {
                    match deque.steal() {
                        Steal::Success(id) => {
                            seen[id].fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) == 1 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
            // Owner: push everything, popping some back itself.
            let mut next = 0usize;
            while next < IDS {
                if deque.push(next).is_ok() {
                    next += 1;
                } else if let Some(id) = deque.pop() {
                    seen[id].fetch_add(1, Ordering::Relaxed);
                }
            }
            while let Some(id) = deque.pop() {
                seen[id].fetch_add(1, Ordering::Relaxed);
            }
            done.store(1, Ordering::Release);
        });
        for (id, count) in seen.iter().enumerate() {
            assert_eq!(count.load(Ordering::Relaxed), 1, "id {id} seen exactly once");
        }
    }
}
