//! The multi-threaded flowgraph schedulers.
//!
//! Two implementations sit behind one seam, selected by
//! [`SchedulerKind`] (builder call or the `SOFTLORA_SCHEDULER`
//! environment variable):
//!
//! * **Round-robin** — blocks are assigned statically to `workers` std
//!   threads. Each worker loops over its blocks calling `work`; when a
//!   full pass moves nothing (every block waiting on an empty or full
//!   ring) the worker **parks**, and any worker that makes progress
//!   **unparks** the others — the push/pop that created work is always
//!   followed by a wake-up, and a short park timeout bounds the one
//!   benign race (a wake landing just before the park).
//! * **Work-stealing** — every worker owns a Chase-Lev deque
//!   ([`crate::deque::StealDeque`]) of runnable block ids; a worker out
//!   of local work **steals** from its peers before parking, so a graph
//!   whose heavy blocks landed on one worker rebalances itself instead
//!   of idling the rest of the pool. Each successful step also drives
//!   the block's occupancy-based ring retuning (soft capacities).
//!
//! Under either policy the run ends when every block has finished:
//! sources report [`WorkResult::Finished`](crate::WorkResult::Finished),
//! closure propagates down the rings, and downstream blocks drain before
//! finishing — no item is lost at shutdown.

use crate::deque::{Steal, StealDeque};
use crate::flowgraph::{Flowgraph, Node, StepState};
use crate::observer::{RuntimeObserver, RuntimeReport};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How long an idle worker sleeps before re-polling its blocks; bounds
/// the window of the park/unpark race without busy-spinning.
const PARK_TIMEOUT: Duration = Duration::from_micros(200);

/// Which scheduling policy drives the worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Static round-robin block assignment (the original scheduler).
    #[default]
    RoundRobin,
    /// Per-worker Chase-Lev deques with steal-on-empty and dynamic ring
    /// capacity tuning.
    Stealing,
}

impl SchedulerKind {
    /// Reads `SOFTLORA_SCHEDULER` (`roundrobin` | `stealing`, case
    /// insensitive); unset or unrecognised values fall back to
    /// [`SchedulerKind::RoundRobin`].
    pub fn from_env() -> Self {
        match std::env::var("SOFTLORA_SCHEDULER") {
            Ok(v) if v.eq_ignore_ascii_case("stealing") => SchedulerKind::Stealing,
            _ => SchedulerKind::RoundRobin,
        }
    }

    /// Stable lowercase name (`roundrobin` / `stealing`) for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::RoundRobin => "roundrobin",
            SchedulerKind::Stealing => "stealing",
        }
    }
}

/// Runs flowgraphs on a fixed pool of std worker threads.
#[derive(Debug, Clone)]
pub struct Scheduler {
    workers: usize,
    kind: SchedulerKind,
}

impl Scheduler {
    /// A scheduler with `workers` threads (at least one), using the
    /// policy from `SOFTLORA_SCHEDULER` (default round-robin).
    pub fn new(workers: usize) -> Self {
        Scheduler { workers: workers.max(1), kind: SchedulerKind::from_env() }
    }

    /// A scheduler with an explicit policy, ignoring the environment.
    pub fn with_kind(workers: usize, kind: SchedulerKind) -> Self {
        Scheduler { workers: workers.max(1), kind }
    }

    /// Worker threads this scheduler spawns.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The scheduling policy this scheduler uses (a flowgraph built with
    /// [`crate::FlowgraphBuilder::scheduler`] overrides it).
    pub fn kind(&self) -> SchedulerKind {
        self.kind
    }

    /// Runs `flowgraph` to completion and reports per-block counters.
    ///
    /// # Panics
    ///
    /// Re-raises any panic from a block's `work` on the calling thread.
    pub fn run(&self, flowgraph: Flowgraph) -> RuntimeReport {
        let kind = flowgraph.scheduler_kind.unwrap_or(self.kind);
        match kind {
            SchedulerKind::RoundRobin => self.run_round_robin(flowgraph),
            SchedulerKind::Stealing => self.run_stealing(flowgraph),
        }
    }

    /// The original static-assignment scheduler; see the module docs.
    fn run_round_robin(&self, flowgraph: Flowgraph) -> RuntimeReport {
        let Flowgraph { nodes, observers, scheduler_kind: _ } = flowgraph;
        let n_workers = self.workers.min(nodes.len()).max(1);
        let started = Instant::now();

        // Round-robin assignment; each worker owns its nodes outright.
        let mut buckets: Vec<Vec<(usize, Box<dyn Node>)>> =
            (0..n_workers).map(|_| Vec::new()).collect();
        for (idx, node) in nodes.into_iter().enumerate() {
            buckets[idx % n_workers].push((idx, node));
        }

        // Peer thread handles, registered at worker startup, so progress
        // on one worker can unpark the ring peers on the others.
        let peers: Arc<Mutex<Vec<thread::Thread>>> = Arc::new(Mutex::new(Vec::new()));

        let mut finished: Vec<(usize, Box<dyn Node>)> = thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .enumerate()
                .map(|(worker, mut mine)| {
                    let peers = Arc::clone(&peers);
                    let observers: Vec<Arc<dyn RuntimeObserver>> = observers.clone();
                    scope.spawn(move || {
                        peers.lock().expect("scheduler peers poisoned").push(thread::current());
                        // Registration-list snapshot: the list only grows
                        // during startup, so once every worker has
                        // registered the steady-state wake path can use a
                        // lock-free local copy instead of re-locking the
                        // shared Mutex on every productive pass.
                        let mut peer_snapshot: Option<Vec<thread::Thread>> = None;
                        let wake = |snapshot: &mut Option<Vec<thread::Thread>>| {
                            if let Some(list) = snapshot {
                                for t in list.iter() {
                                    t.unpark();
                                }
                                return;
                            }
                            let list = peers.lock().expect("scheduler peers poisoned");
                            for t in list.iter() {
                                t.unpark();
                            }
                            if list.len() == n_workers {
                                *snapshot = Some(list.clone());
                            }
                        };
                        loop {
                            let mut progress = false;
                            let mut remaining = 0usize;
                            for (_, node) in mine.iter_mut() {
                                if node.is_finished() {
                                    continue;
                                }
                                remaining += 1;
                                if node.step(&observers) == StepState::Progress {
                                    progress = true;
                                }
                            }
                            if remaining == 0 {
                                // All of this worker's blocks are done;
                                // wake the others so they notice closed
                                // rings promptly.
                                wake(&mut peer_snapshot);
                                break;
                            }
                            if progress {
                                wake(&mut peer_snapshot);
                            } else {
                                for obs in &observers {
                                    obs.on_park(worker);
                                }
                                thread::park_timeout(PARK_TIMEOUT);
                            }
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("flowgraph worker panicked")).collect()
        });

        finished.sort_by_key(|(idx, _)| *idx);
        RuntimeReport {
            elapsed_s: started.elapsed().as_secs_f64(),
            workers: n_workers,
            blocks: finished.iter().map(|(_, node)| node.report()).collect(),
        }
    }

    /// The work-stealing scheduler: per-worker Chase-Lev deques of block
    /// ids, steal-on-empty before parking, occupancy-driven ring tuning.
    fn run_stealing(&self, flowgraph: Flowgraph) -> RuntimeReport {
        let Flowgraph { nodes, observers, scheduler_kind: _ } = flowgraph;
        let n_workers = self.workers.min(nodes.len()).max(1);
        let n_nodes = nodes.len();
        let started = Instant::now();

        // The shared node table, indexed by block id. A node never
        // leaves its slot; exclusivity comes from the deque invariant —
        // each id lives in exactly one deque at a time (only whoever
        // dequeued it re-enqueues it), so every slot lock below is
        // uncontended. The Mutex shares the table across workers, it
        // does not arbitrate.
        let slots: Vec<Mutex<Option<Box<dyn Node>>>> =
            nodes.into_iter().map(|n| Mutex::new(Some(n))).collect();
        let remaining = AtomicUsize::new(n_nodes);

        // Every deque can hold every id, so push can never fail.
        let deques: Vec<StealDeque> = (0..n_workers).map(|_| StealDeque::new(n_nodes)).collect();
        for id in 0..n_nodes {
            deques[id % n_workers].push(id).expect("deque sized for all ids");
        }

        let peers: Arc<Mutex<Vec<thread::Thread>>> = Arc::new(Mutex::new(Vec::new()));
        let slots_ref = &slots;
        let deques_ref = &deques;
        let remaining_ref = &remaining;

        thread::scope(|scope| {
            let handles: Vec<_> = (0..n_workers)
                .map(|worker| {
                    let peers = Arc::clone(&peers);
                    let observers: Vec<Arc<dyn RuntimeObserver>> = observers.clone();
                    scope.spawn(move || {
                        peers.lock().expect("scheduler peers poisoned").push(thread::current());
                        // Same registration-snapshot wake idiom as the
                        // round-robin loop.
                        let mut peer_snapshot: Option<Vec<thread::Thread>> = None;
                        let wake = |snapshot: &mut Option<Vec<thread::Thread>>| {
                            if let Some(list) = snapshot {
                                for t in list.iter() {
                                    t.unpark();
                                }
                                return;
                            }
                            let list = peers.lock().expect("scheduler peers poisoned");
                            for t in list.iter() {
                                t.unpark();
                            }
                            if list.len() == n_workers {
                                *snapshot = Some(list.clone());
                            }
                        };
                        let mut consecutive_idle = 0usize;
                        loop {
                            let rem = remaining_ref.load(Ordering::Acquire);
                            if rem == 0 {
                                wake(&mut peer_snapshot);
                                break;
                            }
                            // Local LIFO first (cache-warm) — except
                            // while the local set is idling: a LIFO pop
                            // would re-run the block just re-enqueued as
                            // Idle forever and starve the rest of the
                            // local deque (the source behind a blocked
                            // sink, say), so rotate FIFO through our own
                            // top instead. Then sweep the peers' deques
                            // oldest-first.
                            let local = if consecutive_idle > 0 {
                                match deques_ref[worker].steal() {
                                    Steal::Success(id) => Some(id),
                                    _ => deques_ref[worker].pop(),
                                }
                            } else {
                                deques_ref[worker].pop()
                            };
                            let id = local.or_else(|| {
                                (1..n_workers).find_map(|k| {
                                    let victim = &deques_ref[(worker + k) % n_workers];
                                    loop {
                                        match victim.steal() {
                                            Steal::Success(id) => {
                                                for obs in &observers {
                                                    obs.on_steal(worker);
                                                }
                                                return Some(id);
                                            }
                                            Steal::Retry => std::hint::spin_loop(),
                                            Steal::Empty => return None,
                                        }
                                    }
                                })
                            });
                            let Some(id) = id else {
                                // Nothing local, nothing stealable: every
                                // runnable id is on a peer mid-step. Park
                                // until someone re-enqueues (the timeout
                                // bounds the benign wake-before-park race).
                                for obs in &observers {
                                    obs.on_park(worker);
                                }
                                thread::park_timeout(PARK_TIMEOUT);
                                continue;
                            };
                            let state = {
                                let mut slot = slots_ref[id].lock().expect("node slot poisoned");
                                let node = slot.as_mut().expect("nodes never leave their slots");
                                let state = node.step(&observers);
                                node.tune();
                                (!node.is_finished()).then_some(state)
                            };
                            match state {
                                None => {
                                    // Finished: the id is not re-enqueued;
                                    // wake the peers so they notice closed
                                    // rings (and, eventually, termination).
                                    remaining_ref.fetch_sub(1, Ordering::AcqRel);
                                    consecutive_idle = 0;
                                    wake(&mut peer_snapshot);
                                }
                                Some(StepState::Progress) => {
                                    deques_ref[worker].push(id).expect("deque sized for all ids");
                                    consecutive_idle = 0;
                                    wake(&mut peer_snapshot);
                                }
                                Some(StepState::Idle) => {
                                    deques_ref[worker].push(id).expect("deque sized for all ids");
                                    consecutive_idle += 1;
                                    // One full queue's worth of idle steps:
                                    // everything runnable is blocked on a
                                    // ring; park instead of spinning.
                                    if consecutive_idle > rem {
                                        for obs in &observers {
                                            obs.on_park(worker);
                                        }
                                        thread::park_timeout(PARK_TIMEOUT);
                                        consecutive_idle = 0;
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("flowgraph worker panicked");
            }
        });

        RuntimeReport {
            elapsed_s: started.elapsed().as_secs_f64(),
            workers: n_workers,
            blocks: slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("node slot poisoned")
                        .expect("nodes never leave their slots")
                        .report()
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{FnBlock, FnSink, FnSource};
    use crate::flowgraph::FlowgraphBuilder;
    use crate::observer::RuntimeStats;

    fn pipeline_sum(workers: usize, count: u64) -> (u64, RuntimeReport) {
        let sum = Arc::new(Mutex::new(0u64));
        let mut b = FlowgraphBuilder::new();
        let mut k = 0u64;
        let src = b.source(FnSource::new("numbers", move || {
            k += 1;
            (k <= count).then_some(k)
        }));
        let doubled = b.stage(src, FnBlock::new("double", |x: u64| 2 * x));
        let sink_sum = Arc::clone(&sum);
        b.sink(
            &[doubled],
            FnSink::new("sum", move |x: u64| {
                *sink_sum.lock().unwrap() += x;
            }),
        );
        let report = Scheduler::new(workers).run(b.build().unwrap());
        let total = *sum.lock().unwrap();
        (total, report)
    }

    #[test]
    fn drains_every_item_single_worker() {
        let (total, report) = pipeline_sum(1, 10_000);
        assert_eq!(total, 10_000 * 10_001); // 2 * n(n+1)/2
        assert_eq!(report.workers, 1);
        assert_eq!(report.block("sum").unwrap().items_in, 10_000);
    }

    #[test]
    fn drains_every_item_multi_worker() {
        // The shutdown/drain property: when the source finishes, every
        // in-flight item still reaches the sink, on any worker count.
        for workers in [2, 3, 8] {
            let (total, report) = pipeline_sum(workers, 8_000);
            assert_eq!(total, 8_000 * 8_001, "workers={workers}");
            assert_eq!(report.block("numbers").unwrap().items_out, 8_000);
            assert_eq!(report.block("double").unwrap().items_in, 8_000);
            assert_eq!(report.block("double").unwrap().items_out, 8_000);
            assert_eq!(report.block("sum").unwrap().items_in, 8_000);
        }
    }

    #[test]
    fn observer_sees_work_and_finish() {
        let stats = Arc::new(RuntimeStats::new());
        let mut b = FlowgraphBuilder::new();
        let mut k = 0u64;
        let src = b.source(FnSource::new("numbers", move || {
            k += 1;
            (k <= 500).then_some(k)
        }));
        b.observer(Arc::clone(&stats) as Arc<dyn RuntimeObserver>);
        b.sink(&[src], FnSink::new("devnull", |_x: u64| {}));
        let report = Scheduler::new(2).run(b.build().unwrap());
        assert_eq!(stats.block("numbers").items_out, 500);
        assert_eq!(stats.block("devnull").items_in, 500);
        assert_eq!(stats.finished_blocks(), 2);
        assert_eq!(report.blocks.len(), 2);
        assert!(report.elapsed_s > 0.0);
        assert!(report.block("numbers").unwrap().work_calls >= 1);
    }

    #[test]
    fn early_sink_finish_unwinds_the_graph() {
        // A sink that quits after 10 items: the source and the map block
        // must not wedge on full rings — abandonment propagates upstream
        // and the whole run terminates (the regression here was a
        // livelock: upstream blocks polling NeedsOutput forever).
        use crate::block::{Block, WorkIo, WorkResult};
        struct QuitterSink {
            seen: usize,
        }
        impl Block for QuitterSink {
            type In = u64;
            type Out = ();
            fn name(&self) -> &str {
                "quitter"
            }
            fn work(&mut self, io: &mut WorkIo<'_, u64, ()>) -> WorkResult {
                match io.input().pop() {
                    Some(_) => {
                        self.seen += 1;
                        if self.seen >= 10 {
                            WorkResult::Finished
                        } else {
                            WorkResult::Produced(1)
                        }
                    }
                    None if io.input().is_finished() => WorkResult::Finished,
                    None => WorkResult::NeedsInput,
                }
            }
        }

        let mut b = FlowgraphBuilder::new();
        let mut k = 0u64;
        // Far more items than the quitter consumes and than the rings
        // (2 × 256 slots) can buffer.
        let src = b.source(FnSource::new("numbers", move || {
            k += 1;
            (k <= 100_000).then_some(k)
        }));
        let mapped = b.stage(src, FnBlock::new("map", |x: u64| x));
        b.sink(&[mapped], QuitterSink { seen: 0 });
        let report = Scheduler::new(2).run(b.build().unwrap());
        let quitter = report.block("quitter").unwrap();
        assert_eq!(quitter.items_in, 10);
        // Every block finished; nothing was left running or parked.
        assert_eq!(report.blocks.len(), 3);
    }

    #[test]
    fn more_workers_than_blocks_is_fine() {
        let (total, report) = pipeline_sum(32, 100);
        assert_eq!(total, 100 * 101);
        assert!(report.workers <= 3, "workers clamp to block count");
    }

    fn stealing_pipeline_sum(workers: usize, count: u64) -> (u64, RuntimeReport) {
        let sum = Arc::new(Mutex::new(0u64));
        let mut b = FlowgraphBuilder::new();
        b.scheduler(SchedulerKind::Stealing);
        let mut k = 0u64;
        let src = b.source(FnSource::new("numbers", move || {
            k += 1;
            (k <= count).then_some(k)
        }));
        let doubled = b.stage(src, FnBlock::new("double", |x: u64| 2 * x));
        let sink_sum = Arc::clone(&sum);
        b.sink(
            &[doubled],
            FnSink::new("sum", move |x: u64| {
                *sink_sum.lock().unwrap() += x;
            }),
        );
        let report = Scheduler::new(workers).run(b.build().unwrap());
        let total = *sum.lock().unwrap();
        (total, report)
    }

    #[test]
    fn stealing_drains_every_item() {
        for workers in [1, 2, 3, 8] {
            let (total, report) = stealing_pipeline_sum(workers, 8_000);
            assert_eq!(total, 8_000 * 8_001, "workers={workers}");
            assert_eq!(report.block("numbers").unwrap().items_out, 8_000);
            assert_eq!(report.block("double").unwrap().items_in, 8_000);
            assert_eq!(report.block("double").unwrap().items_out, 8_000);
            assert_eq!(report.block("sum").unwrap().items_in, 8_000);
        }
    }

    #[test]
    fn stealing_report_keeps_insertion_order() {
        let (_, report) = stealing_pipeline_sum(2, 100);
        let names: Vec<&str> = report.blocks.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, vec!["numbers", "double", "sum"]);
    }

    #[test]
    fn stealing_observer_sees_work_and_finish() {
        let stats = Arc::new(RuntimeStats::new());
        let mut b = FlowgraphBuilder::new();
        b.scheduler(SchedulerKind::Stealing);
        let mut k = 0u64;
        let src = b.source(FnSource::new("numbers", move || {
            k += 1;
            (k <= 500).then_some(k)
        }));
        b.observer(Arc::clone(&stats) as Arc<dyn RuntimeObserver>);
        b.sink(&[src], FnSink::new("devnull", |_x: u64| {}));
        let report = Scheduler::new(2).run(b.build().unwrap());
        assert_eq!(stats.block("numbers").items_out, 500);
        assert_eq!(stats.block("devnull").items_in, 500);
        assert_eq!(stats.finished_blocks(), 2);
        assert_eq!(report.blocks.len(), 2);
    }

    #[test]
    fn stealing_early_sink_finish_unwinds_the_graph() {
        use crate::block::{Block, WorkIo, WorkResult};
        struct QuitterSink {
            seen: usize,
        }
        impl Block for QuitterSink {
            type In = u64;
            type Out = ();
            fn name(&self) -> &str {
                "quitter"
            }
            fn work(&mut self, io: &mut WorkIo<'_, u64, ()>) -> WorkResult {
                match io.input().pop() {
                    Some(_) => {
                        self.seen += 1;
                        if self.seen >= 10 {
                            WorkResult::Finished
                        } else {
                            WorkResult::Produced(1)
                        }
                    }
                    None if io.input().is_finished() => WorkResult::Finished,
                    None => WorkResult::NeedsInput,
                }
            }
        }
        let mut b = FlowgraphBuilder::new();
        b.scheduler(SchedulerKind::Stealing);
        let mut k = 0u64;
        let src = b.source(FnSource::new("numbers", move || {
            k += 1;
            (k <= 100_000).then_some(k)
        }));
        let mapped = b.stage(src, FnBlock::new("map", |x: u64| x));
        b.sink(&[mapped], QuitterSink { seen: 0 });
        let report = Scheduler::new(2).run(b.build().unwrap());
        assert_eq!(report.block("quitter").unwrap().items_in, 10);
        assert_eq!(report.blocks.len(), 3, "every block finished");
    }

    #[test]
    fn kind_selection_defaults_and_overrides() {
        // Without SOFTLORA_SCHEDULER in the test environment the default
        // is round-robin; a builder pin always wins over the scheduler's
        // own kind.
        assert_eq!(SchedulerKind::default(), SchedulerKind::RoundRobin);
        assert_eq!(SchedulerKind::RoundRobin.name(), "roundrobin");
        assert_eq!(SchedulerKind::Stealing.name(), "stealing");
        let s = Scheduler::with_kind(4, SchedulerKind::Stealing);
        assert_eq!(s.kind(), SchedulerKind::Stealing);
        assert_eq!(s.workers(), 4);
    }
}
