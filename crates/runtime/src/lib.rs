//! **softlora-runtime** — a streaming flowgraph runtime in the FutureSDR
//! idiom: blocks connected by lock-free SPSC ring buffers, driven by a
//! multi-threaded scheduler.
//!
//! The paper's timestamping service is continuous — a gateway listens to
//! an unbroken uplink stream and the FB estimator accumulates per-device
//! state over hours — yet a batch API models only bursts. This crate
//! provides the always-on execution substrate:
//!
//! * [`ring`] — bounded single-producer/single-consumer queues with
//!   `AtomicUsize` head/tail counters, const-generic capacity and batched
//!   push/pop; the only transport between blocks;
//! * [`Block`] — one stage of the graph: `work(io) -> WorkResult` with
//!   explicit backpressure ([`WorkResult::NeedsInput`] /
//!   [`WorkResult::NeedsOutput`]) and end-of-stream
//!   ([`WorkResult::Finished`]);
//! * [`FlowgraphBuilder`] — wires blocks into a DAG (acyclic by
//!   construction, connectivity validated at [`FlowgraphBuilder::build`]);
//! * [`Scheduler`] — runs blocks on std worker threads under one of two
//!   policies ([`SchedulerKind`], selectable per graph or via the
//!   `SOFTLORA_SCHEDULER` env var): static **round-robin** assignment,
//!   or **work-stealing** over per-worker Chase-Lev deques ([`deque`])
//!   with occupancy-driven ring-capacity tuning; both park on empty/full
//!   rings and unpark peers on progress, with per-block
//!   throughput/latency/occupancy counters surfaced through
//!   [`RuntimeObserver`] and the final [`RuntimeReport`].
//!
//! The crate is domain-agnostic (items are any `Send` type); the SoftLoRa
//! gateway and network-server blocks live in the `softlora` and
//! `softlora-sim` crates.
//!
//! # Example
//!
//! ```
//! use softlora_runtime::blocks::{FnBlock, FnSink, FnSource};
//! use softlora_runtime::FlowgraphBuilder;
//! use std::sync::{Arc, Mutex};
//!
//! let sum = Arc::new(Mutex::new(0u64));
//! let mut b = FlowgraphBuilder::new();
//! let mut k = 0u64;
//! let src = b.source(FnSource::new("numbers", move || {
//!     k += 1;
//!     (k <= 100).then_some(k)
//! }));
//! let doubled = b.stage(src, FnBlock::new("double", |x: u64| 2 * x));
//! let sink_sum = Arc::clone(&sum);
//! b.sink(&[doubled], FnSink::new("sum", move |x: u64| {
//!     *sink_sum.lock().unwrap() += x;
//! }));
//! let report = b.build()?.run(2);
//! assert_eq!(*sum.lock().unwrap(), 100 * 101);
//! assert_eq!(report.block("sum").unwrap().items_in, 100);
//! # Ok::<(), softlora_runtime::FlowgraphError>(())
//! ```

pub mod block;
pub mod blocks;
pub mod deque;
pub mod flowgraph;
pub mod observer;
pub mod ring;
pub mod scheduler;

pub use block::{Block, InputPort, OutputPort, WorkIo, WorkResult};
pub use deque::{Steal, StealDeque};
pub use flowgraph::{
    Flowgraph, FlowgraphBuilder, FlowgraphError, NodeHandle, DEFAULT_RING_CAPACITY,
};
pub use observer::{BlockReport, BlockTally, RuntimeObserver, RuntimeReport, RuntimeStats};
pub use scheduler::{Scheduler, SchedulerKind};
