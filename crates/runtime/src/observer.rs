//! Runtime observability: per-block counters and the [`RuntimeObserver`]
//! hook.
//!
//! Mirrors the gateway's `GatewayObserver` idiom one tier up: the
//! scheduler pushes typed events — a work call's consumed/produced counts
//! and latency, worker parks, block completion — and consumers implement
//! only the hooks they care about. Unlike gateway observers, runtime
//! observers are invoked **concurrently from worker threads**, so the
//! hooks take `&self` and implementations synchronise internally (see
//! [`RuntimeStats`] for a ready-made one).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Final counters for one block after a flowgraph run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockReport {
    /// Block display name.
    pub name: String,
    /// `work` calls that moved at least one item (or finished).
    pub work_calls: u64,
    /// Items consumed from all input ports.
    pub items_in: u64,
    /// Items produced into all output ports.
    pub items_out: u64,
    /// Seconds spent inside `work`.
    pub busy_s: f64,
    /// Mean output-ring occupancy sampled after each work call (0 for
    /// sinks).
    pub mean_occupancy: f64,
}

impl BlockReport {
    /// Mean seconds per counted `work` call — the block's per-batch
    /// latency.
    pub fn latency_s(&self) -> f64 {
        if self.work_calls == 0 {
            0.0
        } else {
            self.busy_s / self.work_calls as f64
        }
    }

    /// Output items per busy second — the block's standalone throughput.
    pub fn throughput_per_s(&self) -> f64 {
        if self.busy_s > 0.0 {
            self.items_out as f64 / self.busy_s
        } else {
            0.0
        }
    }
}

/// Aggregate result of one flowgraph run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeReport {
    /// Wall-clock seconds from scheduler start to the last block
    /// finishing.
    pub elapsed_s: f64,
    /// Worker threads the scheduler ran.
    pub workers: usize,
    /// Per-block counters, in flowgraph insertion order.
    pub blocks: Vec<BlockReport>,
}

impl RuntimeReport {
    /// The report for the named block, if present.
    pub fn block(&self, name: &str) -> Option<&BlockReport> {
        self.blocks.iter().find(|b| b.name == name)
    }

    /// Items the named sink-side port consumed per wall-clock second —
    /// the end-to-end streaming rate.
    pub fn end_to_end_rate(&self, sink_name: &str) -> f64 {
        match (self.block(sink_name), self.elapsed_s > 0.0) {
            (Some(b), true) => b.items_in as f64 / self.elapsed_s,
            _ => 0.0,
        }
    }
}

/// Hooks the scheduler calls while a flowgraph runs. All methods have
/// empty defaults; implement only what you consume. Called from worker
/// threads — implementations synchronise internally.
#[allow(unused_variables)]
pub trait RuntimeObserver: Send + Sync {
    /// A `work` call on `block` moved items: it consumed `consumed`,
    /// produced `produced` and took `elapsed_s` seconds.
    fn on_work(&self, block: &str, consumed: u64, produced: u64, elapsed_s: f64) {}

    /// Worker `worker` found no runnable block and parked.
    fn on_park(&self, worker: usize) {}

    /// Worker `worker` ran out of local work and stole a block from a
    /// peer's deque (stealing scheduler only).
    fn on_steal(&self, worker: usize) {}

    /// A block finished; `report` holds its final counters.
    fn on_block_finished(&self, report: &BlockReport) {}
}

/// Per-block tally accumulated by [`RuntimeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockTally {
    /// Counted `work` calls.
    pub work_calls: u64,
    /// Items consumed.
    pub items_in: u64,
    /// Items produced.
    pub items_out: u64,
    /// Seconds inside `work`.
    pub busy_s: f64,
}

/// A ready-made observer tallying per-block work and worker parks — the
/// runtime counterpart of the gateway's `GatewayStats`.
///
/// Besides its own queryable tallies, the observer registers into the
/// process-wide telemetry registry: worker parks and total work calls
/// stream in live through handles resolved at construction (relaxed
/// atomics — nothing on the hot path allocates), and each block's final
/// counters land as `runtime_block_*` series when the block finishes,
/// so ctrl-socket `METRICS_REQ` scrapes see flowgraph throughput next
/// to the server's series.
#[derive(Debug)]
pub struct RuntimeStats {
    tallies: Mutex<HashMap<String, BlockTally>>,
    parks: AtomicU64,
    finished_blocks: AtomicU64,
    steals: AtomicU64,
    parks_total: softlora_telemetry::Counter,
    work_calls_total: softlora_telemetry::Counter,
    /// Per-worker `runtime_steals_total{worker}` handles, grown lazily
    /// on the first steal each worker reports (registration allocates
    /// the label once; subsequent steals are a lock + relaxed inc).
    steal_counters: Mutex<Vec<Option<softlora_telemetry::Counter>>>,
}

impl Default for RuntimeStats {
    fn default() -> Self {
        let registry = softlora_telemetry::global();
        RuntimeStats {
            tallies: Mutex::new(HashMap::new()),
            parks: AtomicU64::new(0),
            finished_blocks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            parks_total: registry.counter("runtime_worker_parks_total"),
            work_calls_total: registry.counter("runtime_work_calls_total"),
            steal_counters: Mutex::new(Vec::new()),
        }
    }
}

impl RuntimeStats {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// The tally for one block so far.
    pub fn block(&self, name: &str) -> BlockTally {
        self.tallies.lock().expect("runtime stats poisoned").get(name).copied().unwrap_or_default()
    }

    /// Snapshot of every block tally, sorted by block name.
    pub fn snapshot(&self) -> Vec<(String, BlockTally)> {
        let mut v: Vec<(String, BlockTally)> = self
            .tallies
            .lock()
            .expect("runtime stats poisoned")
            .iter()
            .map(|(k, t)| (k.clone(), *t))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Times any worker parked for lack of work.
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// Blocks that have finished.
    pub fn finished_blocks(&self) -> u64 {
        self.finished_blocks.load(Ordering::Relaxed)
    }

    /// Blocks stolen across workers (stealing scheduler only; stays 0
    /// under round-robin).
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

impl RuntimeObserver for RuntimeStats {
    fn on_work(&self, block: &str, consumed: u64, produced: u64, elapsed_s: f64) {
        let mut tallies = self.tallies.lock().expect("runtime stats poisoned");
        // Look up by &str first: allocating the key String on every work
        // call would put a heap allocation on the streaming hot path.
        let t = match tallies.get_mut(block) {
            Some(t) => t,
            None => tallies.entry(block.to_string()).or_default(),
        };
        t.work_calls += 1;
        t.items_in += consumed;
        t.items_out += produced;
        t.busy_s += elapsed_s;
        drop(tallies);
        self.work_calls_total.inc();
    }

    fn on_park(&self, _worker: usize) {
        self.parks.fetch_add(1, Ordering::Relaxed);
        self.parks_total.inc();
    }

    fn on_steal(&self, worker: usize) {
        self.steals.fetch_add(1, Ordering::Relaxed);
        let mut counters = self.steal_counters.lock().expect("runtime stats poisoned");
        if counters.len() <= worker {
            counters.resize(worker + 1, None);
        }
        let counter = counters[worker].get_or_insert_with(|| {
            let worker = worker.to_string();
            softlora_telemetry::global()
                .counter_with("runtime_steals_total", &[("worker", worker.as_str())])
        });
        counter.inc();
    }

    fn on_block_finished(&self, report: &BlockReport) {
        self.finished_blocks.fetch_add(1, Ordering::Relaxed);
        // Cold path (once per block per run): fold the block's final
        // counters into the registry. Registration allocates the label
        // key on first sight of a block name, never per work call.
        let registry = softlora_telemetry::global();
        let labels: &[(&str, &str)] = &[("block", report.name.as_str())];
        registry.counter_with("runtime_block_work_calls_total", labels).add(report.work_calls);
        registry.counter_with("runtime_block_items_in_total", labels).add(report.items_in);
        registry.counter_with("runtime_block_items_out_total", labels).add(report.items_out);
        registry
            .counter_with("runtime_block_busy_ns_total", labels)
            .add((report.busy_s * 1e9) as u64);
        registry
            .gauge_with("runtime_block_throughput_per_s", labels)
            .set(report.throughput_per_s());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_tally_work_events() {
        let stats = RuntimeStats::new();
        stats.on_work("src", 0, 10, 1e-3);
        stats.on_work("src", 0, 5, 2e-3);
        stats.on_park(0);
        let t = stats.block("src");
        assert_eq!(t.work_calls, 2);
        assert_eq!(t.items_out, 15);
        assert!((t.busy_s - 3e-3).abs() < 1e-12);
        assert_eq!(stats.parks(), 1);
        assert_eq!(stats.block("missing"), BlockTally::default());
    }

    #[test]
    fn report_rates() {
        let r = BlockReport {
            name: "b".into(),
            work_calls: 4,
            items_in: 100,
            items_out: 100,
            busy_s: 0.5,
            mean_occupancy: 1.0,
        };
        assert!((r.latency_s() - 0.125).abs() < 1e-12);
        assert!((r.throughput_per_s() - 200.0).abs() < 1e-9);
        let report = RuntimeReport { elapsed_s: 2.0, workers: 1, blocks: vec![r] };
        assert!((report.end_to_end_rate("b") - 50.0).abs() < 1e-9);
        assert_eq!(report.end_to_end_rate("nope"), 0.0);
    }
}
