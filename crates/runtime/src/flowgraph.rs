//! Flowgraph assembly: wiring blocks into a validated DAG over rings.
//!
//! A [`FlowgraphBuilder`] is the only way to connect blocks, and its API
//! makes the graph correct by construction: every edge is created by
//! naming an existing upstream [`NodeHandle`], so edges always point
//! forward and the graph cannot contain a cycle. Item types are checked
//! at compile time (an edge exists only between an `Out = T` producer
//! and an `In = T` consumer); [`FlowgraphBuilder::build`] then validates
//! **connectivity** — every non-sink block must feed at least one
//! downstream ring — and returns a runnable [`Flowgraph`].
//!
//! Ring capacities are const-generic: [`FlowgraphBuilder::stage`] uses
//! [`DEFAULT_RING_CAPACITY`], `*_with_capacity` variants pick per-edge
//! sizes.

use crate::block::{Block, InputPort, OutputPort, WorkIo, WorkResult};
use crate::observer::{BlockReport, RuntimeObserver, RuntimeReport};
use crate::ring::{channel, PushRing};
use crate::scheduler::{Scheduler, SchedulerKind};
use std::any::Any;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Instant;

/// Ring capacity used by the non-`_with_capacity` connection methods.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// Errors detected while assembling a flowgraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowgraphError {
    /// The graph has no blocks at all.
    Empty,
    /// A non-sink block's output feeds no downstream ring.
    DanglingOutput {
        /// Name of the unconnected block.
        block: String,
    },
    /// The graph has no sink, so items would have nowhere to drain.
    NoSink,
}

impl std::fmt::Display for FlowgraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowgraphError::Empty => write!(f, "flowgraph has no blocks"),
            FlowgraphError::DanglingOutput { block } => {
                write!(f, "block '{block}' produces items but nothing consumes them")
            }
            FlowgraphError::NoSink => write!(f, "flowgraph has no sink block"),
        }
    }
}

impl std::error::Error for FlowgraphError {}

/// A typed reference to a block added to a builder; connecting an edge
/// means handing a downstream block the handle of its upstream.
pub struct NodeHandle<T> {
    id: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for NodeHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for NodeHandle<T> {}

/// How one step of a node went (scheduler-facing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepState {
    /// Items moved (or the node finished) — keep the workers hot.
    Progress,
    /// Blocked on input or output; nothing to do right now.
    Idle,
}

/// A type-erased, runnable block with its ports — what the scheduler
/// drives.
pub(crate) trait Node: Send {
    fn name(&self) -> &str;
    fn step(&mut self, observers: &[Arc<dyn RuntimeObserver>]) -> StepState;
    fn is_finished(&self) -> bool;
    fn report(&self) -> BlockReport;
    /// Occupancy-driven ring retuning hook; called by the stealing
    /// scheduler after steps (the round-robin scheduler never calls it,
    /// so its behaviour is untouched). Default: no-op.
    fn tune(&mut self) {}
}

/// The typed node implementation behind the `Node` trait object.
struct BlockNode<B: Block> {
    block: B,
    inputs: Vec<InputPort<B::In>>,
    outputs: Vec<OutputPort<B::Out>>,
    finished: bool,
    work_calls: u64,
    busy_s: f64,
    occupancy_sum: u64,
    occupancy_samples: u64,
    /// Occupancy accumulated since the last [`Node::tune`] decision
    /// (reset every window, unlike the lifetime counters above).
    tune_occ_sum: u64,
    tune_samples: u64,
}

/// Work calls between ring-capacity tuning decisions: long enough that a
/// window mean reflects steady-state pressure, short enough to adapt
/// within a burst.
const TUNE_WINDOW: u64 = 64;

/// Soft capacities never shrink below this many slots — batched blocks
/// still get a useful burst size.
const TUNE_FLOOR: usize = 16;

impl<B: Block> BlockNode<B> {
    fn counts(&self) -> (u64, u64) {
        (
            self.inputs.iter().map(InputPort::consumed).sum(),
            self.outputs.iter().map(OutputPort::produced).sum(),
        )
    }

    fn finish(&mut self, observers: &[Arc<dyn RuntimeObserver>]) {
        for out in &mut self.outputs {
            out.close();
        }
        // Release the upstream chain: a finished block will never pop
        // again, so its input rings must stop exerting backpressure
        // (otherwise an early-finishing sink would wedge its producers
        // on full rings forever).
        for input in &mut self.inputs {
            input.abandon();
        }
        self.finished = true;
        let report = self.report();
        for obs in observers {
            obs.on_block_finished(&report);
        }
    }
}

impl<B: Block> Node for BlockNode<B> {
    fn name(&self) -> &str {
        self.block.name()
    }

    fn step(&mut self, observers: &[Arc<dyn RuntimeObserver>]) -> StepState {
        // Every downstream block has finished: nothing this block can
        // produce will ever be consumed, so finish it too. This is what
        // lets an early sink finish (e.g. the streaming server sink
        // aborting on an infrastructure error) unwind the whole graph
        // instead of livelocking it.
        if !self.outputs.is_empty() && self.outputs.iter().all(OutputPort::is_abandoned) {
            self.finish(observers);
            return StepState::Progress;
        }
        let (in_before, out_before) = self.counts();
        let started = Instant::now();
        let result = {
            let mut io = WorkIo { inputs: &mut self.inputs, outputs: &mut self.outputs };
            self.block.work(&mut io)
        };
        let elapsed_s = started.elapsed().as_secs_f64();
        let (in_after, out_after) = self.counts();
        let consumed = in_after - in_before;
        let produced = out_after - out_before;
        let moved = consumed + produced > 0;
        if moved || result == WorkResult::Finished {
            self.work_calls += 1;
            self.busy_s += elapsed_s;
            let occupancy = self.outputs.iter_mut().map(|p| p.occupancy() as u64).sum::<u64>();
            self.occupancy_sum += occupancy;
            self.occupancy_samples += 1;
            self.tune_occ_sum += occupancy;
            self.tune_samples += 1;
            for obs in observers {
                obs.on_work(self.block.name(), consumed, produced, elapsed_s);
            }
        }
        match result {
            WorkResult::Finished => {
                self.finish(observers);
                StepState::Progress
            }
            WorkResult::Produced(_) => StepState::Progress,
            WorkResult::NeedsInput => {
                if moved {
                    StepState::Progress
                } else if !self.inputs.is_empty()
                    && self.inputs.iter_mut().all(InputPort::is_finished)
                {
                    // Upstream closed and drained: the block can never run
                    // again, so finish it — this is the drain guarantee.
                    self.finish(observers);
                    StepState::Progress
                } else {
                    StepState::Idle
                }
            }
            WorkResult::NeedsOutput => {
                if moved {
                    StepState::Progress
                } else {
                    StepState::Idle
                }
            }
        }
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn tune(&mut self) {
        if self.outputs.is_empty() || self.tune_samples < TUNE_WINDOW {
            return;
        }
        // Mean per-ring occupancy over the window: chronically full rings
        // get more headroom (fewer backpressure round-trips), chronically
        // near-empty rings get a tighter cap (smaller batches, warmer
        // caches downstream). Correctness never depends on the choice —
        // the soft cap only moves the backpressure threshold.
        let mean =
            self.tune_occ_sum as f64 / (self.tune_samples * self.outputs.len() as u64) as f64;
        self.tune_occ_sum = 0;
        self.tune_samples = 0;
        for out in &mut self.outputs {
            let soft = out.soft_capacity();
            if mean > soft as f64 * 0.75 && soft < out.capacity() {
                out.set_soft_capacity((soft * 2).min(out.capacity()));
            } else if mean < soft as f64 * 0.125 && soft > TUNE_FLOOR {
                out.set_soft_capacity((soft / 2).max(TUNE_FLOOR));
            }
        }
    }

    fn report(&self) -> BlockReport {
        let (items_in, items_out) = self.counts();
        BlockReport {
            name: self.block.name().to_string(),
            work_calls: self.work_calls,
            items_in,
            items_out,
            busy_s: self.busy_s,
            mean_occupancy: if self.occupancy_samples == 0 {
                0.0
            } else {
                self.occupancy_sum as f64 / self.occupancy_samples as f64
            },
        }
    }
}

/// A node still being wired; outputs arrive as downstream blocks connect.
trait PendingNode {
    /// Attaches a producer, double-boxed as `Box<dyn PushRing<Out>>`
    /// inside the `Any`. The typed builder API guarantees the downcast.
    fn attach_output(&mut self, producer: Box<dyn Any>);
    fn output_count(&self) -> usize;
    fn into_node(self: Box<Self>) -> Box<dyn Node>;
}

struct Pending<B: Block> {
    block: B,
    inputs: Vec<InputPort<B::In>>,
    outputs: Vec<OutputPort<B::Out>>,
}

impl<B: Block> PendingNode for Pending<B> {
    fn attach_output(&mut self, producer: Box<dyn Any>) {
        let ring = producer
            .downcast::<Box<dyn PushRing<B::Out>>>()
            .expect("edge item type checked by the builder API");
        self.outputs.push(OutputPort::new(*ring));
    }

    fn output_count(&self) -> usize {
        self.outputs.len()
    }

    fn into_node(self: Box<Self>) -> Box<dyn Node> {
        Box::new(BlockNode {
            block: self.block,
            inputs: self.inputs,
            outputs: self.outputs,
            finished: false,
            work_calls: 0,
            busy_s: 0.0,
            occupancy_sum: 0,
            occupancy_samples: 0,
            tune_occ_sum: 0,
            tune_samples: 0,
        })
    }
}

/// Assembles a [`Flowgraph`]; see the module docs.
#[derive(Default)]
pub struct FlowgraphBuilder {
    pending: Vec<Box<dyn PendingNode>>,
    names: Vec<String>,
    is_sink: Vec<bool>,
    observers: Vec<Arc<dyn RuntimeObserver>>,
    scheduler: Option<SchedulerKind>,
}

impl FlowgraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an observer receiving work/park/finish events from every
    /// block of the built flowgraph.
    pub fn observer(&mut self, observer: Arc<dyn RuntimeObserver>) -> &mut Self {
        self.observers.push(observer);
        self
    }

    /// Pins the scheduler implementation this graph runs under,
    /// overriding both the [`Scheduler`]'s own kind and the
    /// `SOFTLORA_SCHEDULER` environment variable.
    pub fn scheduler(&mut self, kind: SchedulerKind) -> &mut Self {
        self.scheduler = Some(kind);
        self
    }

    fn add<B: Block>(&mut self, block: B, inputs: Vec<InputPort<B::In>>, sink: bool) -> usize {
        let id = self.pending.len();
        self.names.push(block.name().to_string());
        self.is_sink.push(sink);
        self.pending.push(Box::new(Pending { block, inputs, outputs: Vec::new() }));
        id
    }

    /// Creates a ring of capacity `CAP` from node `from` and returns the
    /// consuming port.
    fn edge<T: Send + 'static, const CAP: usize>(&mut self, from: NodeHandle<T>) -> InputPort<T> {
        let (tx, rx) = channel::<T, CAP>();
        let producer: Box<dyn PushRing<T>> = Box::new(tx);
        self.pending[from.id].attach_output(Box::new(producer));
        InputPort::new(Box::new(rx))
    }

    /// Adds a source block (no inputs).
    pub fn source<B>(&mut self, block: B) -> NodeHandle<B::Out>
    where
        B: Block<In = ()>,
    {
        let id = self.add(block, Vec::new(), false);
        NodeHandle { id, _marker: PhantomData }
    }

    /// Adds a transform block fed by `upstream` over a
    /// [`DEFAULT_RING_CAPACITY`]-slot ring.
    pub fn stage<B>(&mut self, upstream: NodeHandle<B::In>, block: B) -> NodeHandle<B::Out>
    where
        B: Block,
    {
        self.stage_with_capacity::<B, DEFAULT_RING_CAPACITY>(upstream, block)
    }

    /// Adds a transform block fed by `upstream` over a `CAP`-slot ring.
    pub fn stage_with_capacity<B, const CAP: usize>(
        &mut self,
        upstream: NodeHandle<B::In>,
        block: B,
    ) -> NodeHandle<B::Out>
    where
        B: Block,
    {
        let input = self.edge::<B::In, CAP>(upstream);
        let id = self.add(block, vec![input], false);
        NodeHandle { id, _marker: PhantomData }
    }

    /// Adds a transform block fed by **every** handle in `upstreams` (one
    /// input port per upstream, in order) over
    /// [`DEFAULT_RING_CAPACITY`]-slot rings — the fan-in counterpart of
    /// [`FlowgraphBuilder::stage`], for blocks that reassemble or merge
    /// several upstream streams and keep producing (e.g. a shard router
    /// joining per-gateway parts before fanning out to per-shard sinks).
    pub fn merge<B>(&mut self, upstreams: &[NodeHandle<B::In>], block: B) -> NodeHandle<B::Out>
    where
        B: Block,
    {
        self.merge_with_capacity::<B, DEFAULT_RING_CAPACITY>(upstreams, block)
    }

    /// Adds a fan-in transform block over `CAP`-slot rings.
    pub fn merge_with_capacity<B, const CAP: usize>(
        &mut self,
        upstreams: &[NodeHandle<B::In>],
        block: B,
    ) -> NodeHandle<B::Out>
    where
        B: Block,
    {
        let inputs = upstreams.iter().map(|&u| self.edge::<B::In, CAP>(u)).collect();
        let id = self.add(block, inputs, false);
        NodeHandle { id, _marker: PhantomData }
    }

    /// Adds a sink block fed by every handle in `upstreams` (one input
    /// port per upstream, in order) over
    /// [`DEFAULT_RING_CAPACITY`]-slot rings.
    pub fn sink<B>(&mut self, upstreams: &[NodeHandle<B::In>], block: B)
    where
        B: Block<Out = ()>,
    {
        self.sink_with_capacity::<B, DEFAULT_RING_CAPACITY>(upstreams, block)
    }

    /// Adds a sink block over `CAP`-slot rings.
    pub fn sink_with_capacity<B, const CAP: usize>(
        &mut self,
        upstreams: &[NodeHandle<B::In>],
        block: B,
    ) where
        B: Block<Out = ()>,
    {
        let inputs = upstreams.iter().map(|&u| self.edge::<B::In, CAP>(u)).collect();
        self.add(block, inputs, true);
    }

    /// Validates connectivity and returns the runnable graph.
    ///
    /// # Errors
    ///
    /// [`FlowgraphError::Empty`] for a graph without blocks,
    /// [`FlowgraphError::NoSink`] when nothing terminates the stream, and
    /// [`FlowgraphError::DanglingOutput`] when a non-sink block's items
    /// have no consumer.
    pub fn build(self) -> Result<Flowgraph, FlowgraphError> {
        if self.pending.is_empty() {
            return Err(FlowgraphError::Empty);
        }
        if !self.is_sink.iter().any(|&s| s) {
            return Err(FlowgraphError::NoSink);
        }
        for (k, node) in self.pending.iter().enumerate() {
            if !self.is_sink[k] && node.output_count() == 0 {
                return Err(FlowgraphError::DanglingOutput { block: self.names[k].clone() });
            }
        }
        Ok(Flowgraph {
            nodes: self.pending.into_iter().map(PendingNode::into_node).collect(),
            observers: self.observers,
            scheduler_kind: self.scheduler,
        })
    }
}

/// A validated, runnable flowgraph. Run it with [`Flowgraph::run`] or a
/// configured [`Scheduler`].
pub struct Flowgraph {
    pub(crate) nodes: Vec<Box<dyn Node>>,
    pub(crate) observers: Vec<Arc<dyn RuntimeObserver>>,
    /// Builder-pinned scheduler implementation; `None` defers to the
    /// running [`Scheduler`] (and thence `SOFTLORA_SCHEDULER`).
    pub(crate) scheduler_kind: Option<SchedulerKind>,
}

impl Flowgraph {
    /// Number of blocks in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no blocks (never true for a built graph).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Block names in insertion order.
    pub fn block_names(&self) -> Vec<String> {
        self.nodes.iter().map(|n| n.name().to_string()).collect()
    }

    /// Runs the graph to completion on `workers` threads; convenience for
    /// [`Scheduler::run`].
    pub fn run(self, workers: usize) -> RuntimeReport {
        Scheduler::new(workers).run(self)
    }
}

impl std::fmt::Debug for Flowgraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Flowgraph").field("blocks", &self.block_names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{FnBlock, FnSink, FnSource};
    use std::sync::Mutex;

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(FlowgraphBuilder::new().build().unwrap_err(), FlowgraphError::Empty);
    }

    #[test]
    fn graph_without_sink_rejected() {
        let mut b = FlowgraphBuilder::new();
        let mut k = 0u64;
        let src = b.source(FnSource::new("numbers", move || {
            k += 1;
            (k < 5).then_some(k)
        }));
        // A stage that nothing consumes.
        b.stage(src, FnBlock::new("orphan", |x: u64| x));
        match b.build() {
            Err(FlowgraphError::NoSink) => {}
            other => panic!("expected NoSink, got {other:?}"),
        }
    }

    #[test]
    fn stage_without_consumer_rejected() {
        let mut b = FlowgraphBuilder::new();
        let mut k = 0u64;
        let src = b.source(FnSource::new("numbers", move || {
            k += 1;
            (k < 5).then_some(k)
        }));
        let orphan = b.stage(src, FnBlock::new("orphan", |x: u64| x));
        // Sink fed directly by the source: the orphan stage dangles.
        b.sink(&[src], FnSink::new("sum", |_x: u64| {}));
        let _ = orphan;
        match b.build() {
            Err(FlowgraphError::DanglingOutput { block }) => assert_eq!(block, "orphan"),
            other => panic!("expected DanglingOutput, got {other:?}"),
        }
    }

    #[test]
    fn linear_graph_builds_and_names() {
        let mut b = FlowgraphBuilder::new();
        let mut k = 0u64;
        let src = b.source(FnSource::new("numbers", move || {
            k += 1;
            (k <= 3).then_some(k)
        }));
        let doubled = b.stage(src, FnBlock::new("double", |x: u64| 2 * x));
        b.sink(&[doubled], FnSink::new("sum", |_x: u64| {}));
        let fg = b.build().unwrap();
        assert_eq!(fg.len(), 3);
        assert_eq!(fg.block_names(), vec!["numbers", "double", "sum"]);
    }

    #[test]
    fn merge_block_joins_streams_and_feeds_downstream() {
        // Two sources fan into one merge block that sums the heads of
        // both ports, feeding a counting sink — the shard-router shape.
        struct PairSum;
        impl Block for PairSum {
            type In = u64;
            type Out = u64;
            fn name(&self) -> &str {
                "pair-sum"
            }
            fn work(&mut self, io: &mut WorkIo<'_, u64, u64>) -> WorkResult {
                let mut produced = 0;
                loop {
                    if io.inputs.iter_mut().any(|p| p.is_empty()) {
                        return if io.inputs_finished() {
                            WorkResult::Finished
                        } else if produced > 0 {
                            WorkResult::Produced(produced)
                        } else {
                            WorkResult::NeedsInput
                        };
                    }
                    if io.output().free() == 0 {
                        return if produced > 0 {
                            WorkResult::Produced(produced)
                        } else {
                            WorkResult::NeedsOutput
                        };
                    }
                    let sum: u64 = io.inputs.iter_mut().map(|p| p.pop().expect("checked")).sum();
                    io.output().push(sum).expect("free checked");
                    produced += 1;
                }
            }
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut b = FlowgraphBuilder::new();
        let mut i = 0u64;
        let left = b.source(FnSource::new("left", move || {
            i += 1;
            (i <= 50).then_some(i)
        }));
        let mut j = 0u64;
        let right = b.source(FnSource::new("right", move || {
            j += 1;
            (j <= 50).then_some(100 * j)
        }));
        let merged = b.merge(&[left, right], PairSum);
        let sink_seen = Arc::clone(&seen);
        b.sink(&[merged], FnSink::new("collect", move |x: u64| sink_seen.lock().unwrap().push(x)));
        b.build().unwrap().run(2);
        let got = seen.lock().unwrap().clone();
        let want: Vec<u64> = (1..=50).map(|k| k + 100 * k).collect();
        assert_eq!(got, want, "ports pop in lockstep, order preserved");
    }

    #[test]
    fn broadcast_feeds_every_downstream_ring() {
        // One source, two parallel stages, one fan-in sink: every item
        // must arrive once per branch.
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut b = FlowgraphBuilder::new();
        let mut k = 0u64;
        let src = b.source(FnSource::new("numbers", move || {
            k += 1;
            (k <= 100).then_some(k)
        }));
        let left = b.stage(src, FnBlock::new("left", |x: u64| x));
        let right = b.stage(src, FnBlock::new("right", |x: u64| 1000 + x));
        let sink_seen = Arc::clone(&seen);
        b.sink(
            &[left, right],
            FnSink::new("collect", move |x: u64| {
                sink_seen.lock().unwrap().push(x);
            }),
        );
        let report = b.build().unwrap().run(2);
        let mut got = seen.lock().unwrap().clone();
        got.sort_unstable();
        let mut want: Vec<u64> = (1..=100).collect();
        want.extend((1..=100).map(|x| 1000 + x));
        assert_eq!(got, want);
        assert_eq!(report.block("numbers").unwrap().items_out, 200, "100 items × 2 rings");
    }
}
