//! Lock-free single-producer / single-consumer ring buffer.
//!
//! The transport under every flowgraph edge: a bounded queue with a
//! const-generic capacity, `AtomicUsize` head/tail counters and **no
//! locks** — the producer owns the tail, the consumer owns the head, and
//! each side caches the other's counter so the uncontended fast path is a
//! plain load/store pair. Counters are free-running (they never wrap
//! modulo the capacity; slots are addressed by `position % N`), which
//! makes full/empty tests exact without a spare slot.
//!
//! Closing is one-way and producer-driven: [`Producer::close`] (or
//! dropping the producer) marks the stream finished, and the consumer
//! observes [`Consumer::is_finished`] once the remaining items have
//! drained — the shutdown/drain handshake the scheduler relies on so no
//! items are lost when a source completes.
//!
//! Both halves are also exposed through the object-safe [`PushRing`] /
//! [`PopRing`] traits so the flowgraph can erase the capacity parameter
//! when wiring blocks of heterogeneous ring sizes.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared state of one SPSC ring.
struct Shared<T, const N: usize> {
    /// Slot storage; slot `p % N` holds the item pushed at position `p`.
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next position to pop (written only by the consumer).
    head: AtomicUsize,
    /// Next position to push (written only by the producer).
    tail: AtomicUsize,
    /// Whether the producer has finished the stream.
    closed: AtomicBool,
    /// Whether the consumer has abandoned the stream (it will never pop
    /// again). Pushes then succeed as drops so an upstream block can
    /// never deadlock against a finished downstream.
    abandoned: AtomicBool,
    /// Advisory capacity in `1..=N` — the backpressure threshold the
    /// producer honours instead of the full `N` slots. The stealing
    /// scheduler's occupancy-driven tuner shrinks it on chronically
    /// near-empty rings (tighter batches, warmer caches) and grows it
    /// back toward `N` under sustained pressure. Purely a push-side
    /// gate: lowering it never drops queued items, it only makes the
    /// ring report "full" earlier.
    soft_cap: AtomicUsize,
}

// SAFETY: the producer/consumer halves hand `T`s across threads exactly
// once each (ownership transfer through the slot), so `T: Send` suffices.
unsafe impl<T: Send, const N: usize> Send for Shared<T, N> {}
unsafe impl<T: Send, const N: usize> Sync for Shared<T, N> {}

impl<T, const N: usize> Drop for Shared<T, N> {
    fn drop(&mut self) {
        // Last owner: no concurrency; drop whatever is still queued.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for pos in head..tail {
            // SAFETY: positions in `head..tail` hold initialised items.
            unsafe { (*self.buf[pos % N].get()).assume_init_drop() };
        }
    }
}

/// Creates a connected producer/consumer pair over a fresh ring of
/// capacity `N`.
///
/// # Panics
///
/// Panics if `N` is zero.
///
/// # Example
///
/// ```
/// let (mut tx, mut rx) = softlora_runtime::ring::channel::<u32, 4>();
/// assert!(tx.push(7).is_ok());
/// assert_eq!(rx.pop(), Some(7));
/// assert_eq!(rx.pop(), None);
/// ```
pub fn channel<T: Send, const N: usize>() -> (Producer<T, N>, Consumer<T, N>) {
    assert!(N > 0, "ring capacity must be non-zero");
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..N).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let shared = Arc::new(Shared {
        buf,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
        abandoned: AtomicBool::new(false),
        soft_cap: AtomicUsize::new(N),
    });
    (
        Producer { shared: Arc::clone(&shared), tail: 0, cached_head: 0 },
        Consumer { shared, head: 0, cached_tail: 0 },
    )
}

/// The producing half of an SPSC ring. Not clonable — single producer.
pub struct Producer<T: Send, const N: usize> {
    shared: Arc<Shared<T, N>>,
    /// Local mirror of the shared tail (only this side writes it).
    tail: usize,
    /// Last observed head; refreshed only when the ring looks full.
    cached_head: usize,
}

impl<T: Send, const N: usize> Producer<T, N> {
    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        N
    }

    /// Current advisory capacity; see [`Producer::set_soft_capacity`].
    pub fn soft_capacity(&self) -> usize {
        self.shared.soft_cap.load(Ordering::Relaxed)
    }

    /// Sets the advisory capacity, clamped to `1..=N`. Backpressure
    /// applies at the new threshold from the next push on; items already
    /// queued beyond it stay queued (the occupancy just drains down).
    pub fn set_soft_capacity(&mut self, cap: usize) {
        self.shared.soft_cap.store(cap.clamp(1, N), Ordering::Relaxed);
    }

    /// Free slots under the advisory capacity, refreshing the
    /// consumer-side view. An abandoned ring reports full capacity:
    /// pushes to it always succeed (as drops when the slots are
    /// genuinely full), so it must never read as backpressure.
    pub fn free(&mut self) -> usize {
        if self.is_abandoned() {
            return N;
        }
        self.cached_head = self.shared.head.load(Ordering::Acquire);
        self.soft_capacity().saturating_sub(self.tail - self.cached_head)
    }

    /// Items currently queued, from the producer's view.
    pub fn len(&mut self) -> usize {
        if self.is_abandoned() {
            return 0;
        }
        self.cached_head = self.shared.head.load(Ordering::Acquire);
        self.tail - self.cached_head
    }

    /// Whether the ring currently holds no items.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Whether the consumer has abandoned the stream (further pushes are
    /// accepted but dropped).
    pub fn is_abandoned(&self) -> bool {
        self.shared.abandoned.load(Ordering::Acquire)
    }

    /// Pushes one item; returns it back when the ring is full. When the
    /// consumer has abandoned the stream the push succeeds as a drop —
    /// backpressure from a dead downstream would otherwise wedge the
    /// producer forever.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        let cap = self.soft_capacity();
        if self.tail - self.cached_head >= cap {
            self.cached_head = self.shared.head.load(Ordering::Acquire);
            if self.tail - self.cached_head >= cap {
                if self.is_abandoned() {
                    drop(item);
                    return Ok(());
                }
                return Err(item);
            }
        }
        // SAFETY: the slot at `tail` is free (tail - head < cap <= N)
        // and only the single producer writes slots at the tail.
        unsafe { (*self.shared.buf[self.tail % N].get()).write(item) };
        self.tail += 1;
        self.shared.tail.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Pushes as many items as fit from the front of `items`, removing
    /// them from the vector. Returns how many were moved. One atomic
    /// store publishes the whole batch. Like [`Producer::push`], an
    /// abandoned ring swallows the whole batch.
    pub fn push_batch(&mut self, items: &mut Vec<T>) -> usize {
        if self.is_abandoned() {
            let n = items.len();
            items.clear();
            return n;
        }
        // Real occupancy, NOT `free()`: that method short-circuits to `N`
        // on an abandoned ring, and the consumer may abandon concurrently
        // between the check above and here — writing `N` items on that
        // basis would overwrite occupied slots mid-drain (a data race).
        // Slots counted free against the actual head are safe to write
        // whatever the consumer does afterwards.
        self.cached_head = self.shared.head.load(Ordering::Acquire);
        let n = self.soft_capacity().saturating_sub(self.tail - self.cached_head).min(items.len());
        for item in items.drain(..n) {
            // SAFETY: `n` slots were free and we are the only producer.
            unsafe { (*self.shared.buf[self.tail % N].get()).write(item) };
            self.tail += 1;
        }
        if n > 0 {
            self.shared.tail.store(self.tail, Ordering::Release);
        }
        n
    }

    /// Marks the stream finished. Items already queued remain poppable;
    /// further pushes would still succeed but by convention a closed
    /// producer pushes no more.
    pub fn close(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

impl<T: Send, const N: usize> Drop for Producer<T, N> {
    fn drop(&mut self) {
        self.close();
    }
}

/// The consuming half of an SPSC ring. Not clonable — single consumer.
pub struct Consumer<T: Send, const N: usize> {
    shared: Arc<Shared<T, N>>,
    /// Local mirror of the shared head (only this side writes it).
    head: usize,
    /// Last observed tail; refreshed only when the ring looks empty.
    cached_tail: usize,
}

impl<T: Send, const N: usize> Consumer<T, N> {
    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        N
    }

    /// Items available to pop, refreshing the producer-side view.
    pub fn len(&mut self) -> usize {
        self.cached_tail = self.shared.tail.load(Ordering::Acquire);
        self.cached_tail - self.head
    }

    /// Whether no items are currently available.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Pops one item, or `None` when the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.cached_tail == self.head {
            self.cached_tail = self.shared.tail.load(Ordering::Acquire);
            if self.cached_tail == self.head {
                return None;
            }
        }
        // SAFETY: head < tail, so the slot holds an initialised item and
        // only the single consumer reads slots at the head.
        let item = unsafe { (*self.shared.buf[self.head % N].get()).assume_init_read() };
        self.head += 1;
        self.shared.head.store(self.head, Ordering::Release);
        Some(item)
    }

    /// Pops up to `max` items into `out`, returning how many were moved.
    /// One atomic store releases all the freed slots.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let n = self.len().min(max);
        out.reserve(n);
        for _ in 0..n {
            // SAFETY: `n` items were available and we are the only
            // consumer.
            let item = unsafe { (*self.shared.buf[self.head % N].get()).assume_init_read() };
            self.head += 1;
            out.push(item);
        }
        if n > 0 {
            self.shared.head.store(self.head, Ordering::Release);
        }
        n
    }

    /// Whether the producer has closed the stream (items may remain).
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Declares that this consumer will never pop again. Queued and
    /// future pushes are silently dropped, releasing any producer
    /// blocked on a full ring (see [`Producer::push`]).
    pub fn abandon(&mut self) {
        self.shared.abandoned.store(true, Ordering::Release);
        // Drain what is already queued so the producer sees free slots
        // immediately (and queued items drop now, not at ring teardown).
        while self.pop().is_some() {}
    }

    /// Whether the stream is closed **and** fully drained — the
    /// end-of-stream condition. The close flag is read before the tail,
    /// so a `true` here can never race ahead of in-flight items.
    pub fn is_finished(&mut self) -> bool {
        if !self.is_closed() {
            return false;
        }
        self.is_empty()
    }
}

/// Object-safe producing side of a ring, erasing the capacity parameter.
pub trait PushRing<T>: Send {
    /// Pushes one item; returns it back when the ring is full.
    fn try_push(&mut self, item: T) -> Result<(), T>;
    /// Moves as many items as fit from the front of `items`.
    fn push_batch(&mut self, items: &mut Vec<T>) -> usize;
    /// Free slots.
    fn free(&mut self) -> usize;
    /// Items queued.
    fn len(&mut self) -> usize;
    /// Whether no items are queued.
    fn is_empty(&mut self) -> bool {
        self.len() == 0
    }
    /// Ring capacity.
    fn capacity(&self) -> usize;
    /// Current advisory capacity (the backpressure threshold); defaults
    /// to the hard capacity for rings without soft-capacity support.
    fn soft_capacity(&self) -> usize {
        self.capacity()
    }
    /// Sets the advisory capacity (clamped to `1..=capacity`); a no-op
    /// for rings without soft-capacity support.
    fn set_soft_capacity(&mut self, _cap: usize) {}
    /// Marks the stream finished.
    fn close(&mut self);
    /// Whether the consumer has abandoned the stream.
    fn is_abandoned(&self) -> bool;
}

impl<T: Send, const N: usize> PushRing<T> for Producer<T, N> {
    fn try_push(&mut self, item: T) -> Result<(), T> {
        self.push(item)
    }
    fn push_batch(&mut self, items: &mut Vec<T>) -> usize {
        Producer::push_batch(self, items)
    }
    fn free(&mut self) -> usize {
        Producer::free(self)
    }
    fn len(&mut self) -> usize {
        Producer::len(self)
    }
    fn capacity(&self) -> usize {
        Producer::capacity(self)
    }
    fn soft_capacity(&self) -> usize {
        Producer::soft_capacity(self)
    }
    fn set_soft_capacity(&mut self, cap: usize) {
        Producer::set_soft_capacity(self, cap)
    }
    fn close(&mut self) {
        Producer::close(self)
    }
    fn is_abandoned(&self) -> bool {
        Producer::is_abandoned(self)
    }
}

/// Object-safe consuming side of a ring, erasing the capacity parameter.
pub trait PopRing<T>: Send {
    /// Pops one item, or `None` when empty.
    fn try_pop(&mut self) -> Option<T>;
    /// Pops up to `max` items into `out`.
    fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize;
    /// Items available.
    fn len(&mut self) -> usize;
    /// Whether no items are available.
    fn is_empty(&mut self) -> bool {
        self.len() == 0
    }
    /// Whether the stream is closed and fully drained.
    fn is_finished(&mut self) -> bool;
    /// Declares that this consumer will never pop again.
    fn abandon(&mut self);
}

impl<T: Send, const N: usize> PopRing<T> for Consumer<T, N> {
    fn try_pop(&mut self) -> Option<T> {
        self.pop()
    }
    fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        Consumer::pop_batch(self, out, max)
    }
    fn len(&mut self) -> usize {
        Consumer::len(self)
    }
    fn is_finished(&mut self) -> bool {
        Consumer::is_finished(self)
    }
    fn abandon(&mut self) {
        Consumer::abandon(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let (mut tx, mut rx) = channel::<u32, 3>();
        assert_eq!(tx.capacity(), 3);
        assert!(tx.push(1).is_ok());
        assert!(tx.push(2).is_ok());
        assert!(tx.push(3).is_ok());
        assert_eq!(tx.push(4), Err(4), "full ring rejects");
        assert_eq!(rx.pop(), Some(1));
        assert!(tx.push(4).is_ok(), "freed slot reusable");
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
        assert_eq!(rx.pop(), Some(4));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn wrap_around_many_times() {
        let (mut tx, mut rx) = channel::<u64, 2>();
        for k in 0..1000u64 {
            assert!(tx.push(k).is_ok());
            assert_eq!(rx.pop(), Some(k));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn batched_push_pop() {
        let (mut tx, mut rx) = channel::<u32, 8>();
        let mut items: Vec<u32> = (0..12).collect();
        assert_eq!(tx.push_batch(&mut items), 8);
        assert_eq!(items, vec![8, 9, 10, 11], "unmoved items stay");
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 5), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(tx.push_batch(&mut items), 4);
        assert!(items.is_empty());
        assert_eq!(rx.pop_batch(&mut out, usize::MAX), 7);
        assert_eq!(out, (0..12).collect::<Vec<u32>>());
    }

    #[test]
    fn soft_capacity_gates_pushes_without_dropping_items() {
        let (mut tx, mut rx) = channel::<u32, 8>();
        assert_eq!(tx.soft_capacity(), 8);
        for k in 0..6 {
            tx.push(k).unwrap();
        }
        // Shrinking below the occupancy: queued items stay, new pushes
        // backpressure immediately.
        tx.set_soft_capacity(4);
        assert_eq!(tx.soft_capacity(), 4);
        assert_eq!(tx.free(), 0);
        assert_eq!(tx.push(99), Err(99));
        let mut extra = vec![7, 8];
        assert_eq!(tx.push_batch(&mut extra), 0);
        for want in 0..6 {
            assert_eq!(rx.pop(), Some(want), "queued items survive the shrink");
        }
        // Occupancy drained under the soft cap: pushes flow again, but
        // only up to the advisory threshold.
        for k in 0..4 {
            tx.push(10 + k).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "soft cap holds at 4/8");
        tx.set_soft_capacity(1 << 20);
        assert_eq!(tx.soft_capacity(), 8, "clamped to the hard capacity");
        assert!(tx.push(14).is_ok());
        tx.set_soft_capacity(0);
        assert_eq!(tx.soft_capacity(), 1, "clamped to at least one slot");
    }

    #[test]
    fn close_then_drain_is_finished() {
        let (mut tx, mut rx) = channel::<u8, 4>();
        tx.push(9).unwrap();
        assert!(!rx.is_finished());
        tx.close();
        assert!(rx.is_closed());
        assert!(!rx.is_finished(), "closed but not drained");
        assert_eq!(rx.pop(), Some(9));
        assert!(rx.is_finished());
    }

    #[test]
    fn dropping_producer_closes() {
        let (tx, mut rx) = channel::<u8, 4>();
        drop(tx);
        assert!(rx.is_finished());
    }

    #[test]
    fn queued_items_dropped_with_ring() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut tx, rx) = channel::<Counted, 4>();
        tx.push(Counted).unwrap();
        tx.push(Counted).unwrap();
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn cross_thread_stream_preserves_sequence() {
        let (mut tx, mut rx) = channel::<u64, 16>();
        const COUNT: u64 = 20_000;
        let handle = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < COUNT {
                if tx.push(next).is_ok() {
                    next += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        let mut seen = 0u64;
        while seen < COUNT {
            if let Some(v) = rx.pop() {
                assert_eq!(v, seen, "items arrive exactly once, in order");
                seen += 1;
            } else {
                std::thread::yield_now();
            }
        }
        handle.join().unwrap();
        assert_eq!(rx.pop(), None);
    }
}
