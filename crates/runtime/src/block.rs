//! The streaming block abstraction: typed ports and the [`Block`] trait.
//!
//! A block is one stage of a flowgraph. The scheduler repeatedly calls
//! [`Block::work`] with the block's [`InputPort`]s and [`OutputPort`]s;
//! the block moves as many items as it can and reports what stopped it
//! via [`WorkResult`] — the explicit backpressure contract:
//!
//! * [`WorkResult::Produced`] — progress was made; call again soon;
//! * [`WorkResult::NeedsInput`] — upstream is empty; the scheduler parks
//!   the block until items (or end-of-stream) arrive;
//! * [`WorkResult::NeedsOutput`] — a downstream ring is full; the block
//!   is backpressured until the consumer drains it;
//! * [`WorkResult::Finished`] — the block is done; its output rings are
//!   closed so downstream blocks can drain and finish in turn.
//!
//! A block whose every input is finished (closed and drained) and that
//! reports [`WorkResult::NeedsInput`] is finished by the scheduler — so
//! plain transform blocks never need their own shutdown logic, and no
//! in-flight item is lost when a source completes.

use crate::ring::{PopRing, PushRing};

/// What a [`Block::work`] call accomplished, and what to wait for next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkResult {
    /// Made progress: moved (roughly) this many items.
    Produced(usize),
    /// Blocked on upstream: no items available.
    NeedsInput,
    /// Backpressured: no room in a downstream ring.
    NeedsOutput,
    /// Stream complete: the block will never produce again.
    Finished,
}

/// A block's view of one upstream ring.
pub struct InputPort<T> {
    ring: Box<dyn PopRing<T>>,
    consumed: u64,
}

impl<T> InputPort<T> {
    /// Wraps the consuming half of a ring as a port.
    pub fn new(ring: Box<dyn PopRing<T>>) -> Self {
        InputPort { ring, consumed: 0 }
    }

    /// Pops one item.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.ring.try_pop();
        if item.is_some() {
            self.consumed += 1;
        }
        item
    }

    /// Pops up to `max` items into `out`; returns how many arrived.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let n = self.ring.pop_batch(out, max);
        self.consumed += n as u64;
        n
    }

    /// Items currently waiting in the ring.
    pub fn len(&mut self) -> usize {
        self.ring.len()
    }

    /// Whether no items are currently waiting.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Whether the upstream closed the ring and it has drained.
    pub fn is_finished(&mut self) -> bool {
        self.ring.is_finished()
    }

    /// Declares this port dead: queued and future items are dropped and
    /// the upstream producer is released from backpressure. Called by
    /// the scheduler when the owning block finishes, so an early-finished
    /// sink can never wedge its upstream chain.
    pub fn abandon(&mut self) {
        self.ring.abandon()
    }

    /// Total items this port has consumed.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }
}

/// A block's view of one downstream ring.
pub struct OutputPort<T> {
    ring: Box<dyn PushRing<T>>,
    produced: u64,
}

impl<T> OutputPort<T> {
    /// Wraps the producing half of a ring as a port.
    pub fn new(ring: Box<dyn PushRing<T>>) -> Self {
        OutputPort { ring, produced: 0 }
    }

    /// Pushes one item; hands it back when the ring is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        let pushed = self.ring.try_push(item);
        if pushed.is_ok() {
            self.produced += 1;
        }
        pushed
    }

    /// Moves as many items as fit from the front of `items`.
    pub fn push_batch(&mut self, items: &mut Vec<T>) -> usize {
        let n = self.ring.push_batch(items);
        self.produced += n as u64;
        n
    }

    /// Free slots in the ring.
    pub fn free(&mut self) -> usize {
        self.ring.free()
    }

    /// Items currently queued in the ring (the occupancy counter).
    pub fn occupancy(&mut self) -> usize {
        self.ring.len()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Current advisory (soft) capacity — the backpressure threshold.
    pub fn soft_capacity(&self) -> usize {
        self.ring.soft_capacity()
    }

    /// Sets the advisory capacity (clamped to `1..=capacity`); the hook
    /// the stealing scheduler's occupancy tuner drives.
    pub fn set_soft_capacity(&mut self, cap: usize) {
        self.ring.set_soft_capacity(cap)
    }

    /// Closes the ring (done automatically when the block finishes).
    pub fn close(&mut self) {
        self.ring.close()
    }

    /// Whether the downstream block finished and abandoned this ring
    /// (pushes still succeed but are dropped).
    pub fn is_abandoned(&self) -> bool {
        self.ring.is_abandoned()
    }

    /// Total items this port has produced.
    pub fn produced(&self) -> u64 {
        self.produced
    }
}

/// Everything a block touches during one `work` call: its input and
/// output ports. Sources see an empty `inputs` slice, sinks an empty
/// `outputs` slice; a broadcasting block sees one output port per
/// downstream edge.
pub struct WorkIo<'a, I, O> {
    /// Upstream ports, in the order the flowgraph connected them.
    pub inputs: &'a mut [InputPort<I>],
    /// Downstream ports, in the order downstream blocks were connected.
    pub outputs: &'a mut [OutputPort<O>],
}

impl<I, O> WorkIo<'_, I, O> {
    /// The single input port of a one-input block.
    ///
    /// # Panics
    ///
    /// Panics when the block has no inputs.
    pub fn input(&mut self) -> &mut InputPort<I> {
        &mut self.inputs[0]
    }

    /// The single output port of a one-output block.
    ///
    /// # Panics
    ///
    /// Panics when the block has no outputs.
    pub fn output(&mut self) -> &mut OutputPort<O> {
        &mut self.outputs[0]
    }

    /// Whether **every** input is closed and drained (end of stream).
    pub fn inputs_finished(&mut self) -> bool {
        self.inputs.iter_mut().all(|p| p.is_finished())
    }

    /// Free slots available on the fullest output — how many items can be
    /// broadcast to every downstream ring right now.
    pub fn min_output_free(&mut self) -> usize {
        self.outputs.iter_mut().map(|p| p.free()).min().unwrap_or(0)
    }

    /// Pushes a clone of `item` to every output port. Call only after
    /// checking [`WorkIo::min_output_free`] — a full ring panics here.
    pub fn broadcast(&mut self, item: O)
    where
        O: Clone,
    {
        let (last, rest) = self.outputs.split_last_mut().expect("block has no outputs");
        for port in rest {
            if port.push(item.clone()).is_err() {
                panic!("broadcast into a full ring; check min_output_free first");
            }
        }
        if last.push(item).is_err() {
            panic!("broadcast into a full ring; check min_output_free first");
        }
    }
}

/// One stage of a streaming flowgraph.
///
/// `In`/`Out` are the item types flowing through the block's rings; a
/// source uses `In = ()` (it gets no input ports), a sink `Out = ()` (no
/// output ports). Blocks run on scheduler worker threads, hence `Send`.
pub trait Block: Send + 'static {
    /// Item type consumed from upstream rings.
    type In: Send + 'static;
    /// Item type produced into downstream rings.
    type Out: Send + 'static;

    /// The block's display name (used in reports and observer events).
    fn name(&self) -> &str;

    /// Moves items between the ports; see the module docs for the
    /// [`WorkResult`] contract.
    fn work(&mut self, io: &mut WorkIo<'_, Self::In, Self::Out>) -> WorkResult;
}
