//! Ready-made generic blocks: closure-driven sources, transforms and
//! sinks.
//!
//! These cover the plumbing ends of a flowgraph — pumping an iterator in,
//! mapping items, folding results out — so domain crates only implement
//! [`Block`] impls for stages with real state. They are also what
//! the runtime's own tests and benches are built from.

use crate::block::{Block, WorkIo, WorkResult};

/// How many items a closure-driven block moves per `work` call before
/// yielding back to the scheduler.
const BATCH: usize = 256;

/// A source that pulls items from a closure until it returns `None`.
///
/// With several downstream edges the item is broadcast (cloned) to every
/// output ring; production is paced by the fullest ring.
pub struct FnSource<T, F> {
    name: String,
    next: F,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T, F: FnMut() -> Option<T>> FnSource<T, F> {
    /// Creates the source; `next` yields the stream, `None` ends it.
    pub fn new(name: impl Into<String>, next: F) -> Self {
        FnSource { name: name.into(), next, _marker: std::marker::PhantomData }
    }
}

impl<T, F> Block for FnSource<T, F>
where
    T: Clone + Send + 'static,
    F: FnMut() -> Option<T> + Send + 'static,
{
    type In = ();
    type Out = T;

    fn name(&self) -> &str {
        &self.name
    }

    fn work(&mut self, io: &mut WorkIo<'_, (), T>) -> WorkResult {
        let mut produced = 0;
        while produced < BATCH {
            if io.min_output_free() == 0 {
                return if produced > 0 {
                    WorkResult::Produced(produced)
                } else {
                    WorkResult::NeedsOutput
                };
            }
            match (self.next)() {
                Some(item) => {
                    io.broadcast(item);
                    produced += 1;
                }
                None => return WorkResult::Finished,
            }
        }
        WorkResult::Produced(produced)
    }
}

/// A one-in / one-out transform block applying a closure per item.
pub struct FnBlock<I, O, F> {
    name: String,
    map: F,
    _marker: std::marker::PhantomData<fn(I) -> O>,
}

impl<I, O, F: FnMut(I) -> O> FnBlock<I, O, F> {
    /// Creates the transform.
    pub fn new(name: impl Into<String>, map: F) -> Self {
        FnBlock { name: name.into(), map, _marker: std::marker::PhantomData }
    }
}

impl<I, O, F> Block for FnBlock<I, O, F>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> O + Send + 'static,
{
    type In = I;
    type Out = O;

    fn name(&self) -> &str {
        &self.name
    }

    fn work(&mut self, io: &mut WorkIo<'_, I, O>) -> WorkResult {
        let mut moved = 0;
        while moved < BATCH {
            if io.output().free() == 0 {
                return if moved > 0 {
                    WorkResult::Produced(moved)
                } else {
                    WorkResult::NeedsOutput
                };
            }
            match io.input().pop() {
                Some(item) => {
                    let out = (self.map)(item);
                    let pushed = io.output().push(out);
                    debug_assert!(pushed.is_ok(), "free slot was checked");
                    moved += 1;
                }
                None if io.input().is_finished() => return WorkResult::Finished,
                None => {
                    return if moved > 0 {
                        WorkResult::Produced(moved)
                    } else {
                        WorkResult::NeedsInput
                    }
                }
            }
        }
        WorkResult::Produced(moved)
    }
}

/// A sink feeding every arriving item (from any of its inputs) to a
/// closure.
pub struct FnSink<T, F> {
    name: String,
    consume: F,
    scratch: Vec<T>,
}

impl<T, F: FnMut(T)> FnSink<T, F> {
    /// Creates the sink.
    pub fn new(name: impl Into<String>, consume: F) -> Self {
        FnSink { name: name.into(), consume, scratch: Vec::new() }
    }
}

impl<T, F> Block for FnSink<T, F>
where
    T: Send + 'static,
    F: FnMut(T) + Send + 'static,
{
    type In = T;
    type Out = ();

    fn name(&self) -> &str {
        &self.name
    }

    fn work(&mut self, io: &mut WorkIo<'_, T, ()>) -> WorkResult {
        let mut consumed = 0;
        for port in io.inputs.iter_mut() {
            consumed += port.pop_batch(&mut self.scratch, BATCH);
        }
        for item in self.scratch.drain(..) {
            (self.consume)(item);
        }
        if consumed > 0 {
            WorkResult::Produced(consumed)
        } else if io.inputs_finished() {
            WorkResult::Finished
        } else {
            WorkResult::NeedsInput
        }
    }
}
