//! The round-trip-timing strawman defence (paper §4.4) and its cost.
//!
//! A gateway could detect frame delay by echoing a downlink after each
//! uplink and comparing the measured round-trip time against a threshold.
//! The paper rejects this because (a) it needs one downlink per uplink,
//! doubling airtime on a link that is heavily uplink-optimised (a gateway
//! can receive many SFs concurrently but transmit only one downlink at a
//! time), and (b) it burns the budget continuously to catch a rare event.
//! This module implements the detector and quantifies that overhead so the
//! repro can print the comparison.

/// Round-trip-timing attack detector.
#[derive(Debug, Clone, Copy)]
pub struct RttDetector {
    /// Maximum acceptable round-trip time, seconds. Must cover two
    /// propagation delays plus the device's RX-window turnaround.
    pub threshold_s: f64,
}

impl RttDetector {
    /// Creates a detector with a threshold covering `max_range_m` of
    /// propagation plus the Class A RX1 turnaround of 1 s plus `margin_s`.
    pub fn for_range(max_range_m: f64, margin_s: f64) -> Self {
        let prop = 2.0 * max_range_m / softlora_phy::channel::SPEED_OF_LIGHT;
        RttDetector { threshold_s: prop + 1.0 + margin_s }
    }

    /// Classifies a measured round-trip time: `true` = attack suspected.
    pub fn is_suspicious(&self, measured_rtt_s: f64) -> bool {
        measured_rtt_s > self.threshold_s
    }
}

/// Communication-overhead comparison between continuous RTT probing and
/// SoftLoRa's passive FB monitoring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadComparison {
    /// Extra downlink transmissions per uplink for RTT probing.
    pub rtt_downlinks_per_uplink: f64,
    /// Total airtime multiplier versus plain uplinks for RTT probing.
    pub rtt_airtime_multiplier: f64,
    /// Extra transmissions per uplink for FB monitoring (none — passive).
    pub softlora_extra_transmissions: f64,
    /// Fraction of gateway downlink capacity consumed by RTT acks when
    /// `n_devices` share one gateway at `uplinks_per_hour` each.
    pub gateway_downlink_utilisation: f64,
}

/// Computes the §4.4 overhead comparison.
///
/// `downlink_airtime_s` is the ack air time; the gateway can transmit at
/// most one downlink at a time (Class A unicast rule), so its downlink
/// capacity is `3600 / downlink_airtime_s` acks per hour.
pub fn overhead_comparison(
    n_devices: usize,
    uplinks_per_hour: f64,
    uplink_airtime_s: f64,
    downlink_airtime_s: f64,
) -> OverheadComparison {
    let acks_needed = n_devices as f64 * uplinks_per_hour;
    let ack_capacity = 3600.0 / downlink_airtime_s;
    OverheadComparison {
        rtt_downlinks_per_uplink: 1.0,
        rtt_airtime_multiplier: (uplink_airtime_s + downlink_airtime_s) / uplink_airtime_s,
        softlora_extra_transmissions: 0.0,
        gateway_downlink_utilisation: acks_needed / ack_capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_thresholds() {
        let d = RttDetector::for_range(10_000.0, 0.05);
        // 10 km round trip ≈ 67 µs; threshold ≈ 1.05 s.
        assert!((d.threshold_s - 1.05).abs() < 0.001);
        assert!(!d.is_suspicious(1.02));
        assert!(d.is_suspicious(1.2));
        // A τ = 30 s frame delay is trivially caught by RTT...
        assert!(d.is_suspicious(31.0));
    }

    #[test]
    fn rtt_doubles_airtime_for_symmetric_frames() {
        let c = overhead_comparison(10, 24.0, 1.5, 1.5);
        assert!((c.rtt_airtime_multiplier - 2.0).abs() < 1e-12);
        assert_eq!(c.softlora_extra_transmissions, 0.0);
        assert_eq!(c.rtt_downlinks_per_uplink, 1.0);
    }

    #[test]
    fn gateway_downlink_saturates_with_many_devices() {
        // 100 SF12 devices at 21 uplinks/hour, 1.6 s acks: the gateway
        // needs 2100 acks/hour against a capacity of 2250 — ~93 %
        // utilisation, leaving almost nothing for real downlinks.
        let c = overhead_comparison(100, 21.0, 1.6, 1.6);
        assert!(c.gateway_downlink_utilisation > 0.9, "{}", c.gateway_downlink_utilisation);
        // SoftLoRa needs none of it.
        assert_eq!(c.softlora_extra_transmissions, 0.0);
    }

    #[test]
    fn few_devices_low_utilisation() {
        let c = overhead_comparison(2, 10.0, 0.06, 0.06);
        assert!(c.gateway_downlink_utilisation < 0.01);
    }
}
