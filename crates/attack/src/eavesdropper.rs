//! The eavesdropper: records uplink waveforms near the end device
//! (paper §4.2.1 step ❶).
//!
//! The recording is usable only if the legitimate signal at the
//! eavesdropper is sufficiently stronger than the concurrent jamming
//! signal — the paper relies on propagation attenuation making the jamming
//! "weak at the eavesdropper" when the replayer is far away (§8.1.1
//! demonstrates this across building floors).

use softlora_phy::channel::CAPTURE_THRESHOLD_DB;
use softlora_sim::{AirFrame, Position, RadioMedium};

/// A recorded uplink waveform, ready to be transferred to the replayer
/// (over a separate link, e.g. LTE — paper §4.2.2).
#[derive(Debug, Clone)]
pub struct RecordedWaveform {
    /// The frame as transmitted (bytes are bit-exact; the radio waveform
    /// is represented by its parameters).
    pub frame: AirFrame,
    /// SNR of the recording at the eavesdropper, dB.
    pub recording_snr_db: f64,
    /// Margin of the legitimate signal over the jamming signal at the
    /// eavesdropper, dB (`+inf` when no jamming overlapped).
    pub jamming_margin_db: f64,
}

impl RecordedWaveform {
    /// Whether the recording is clean enough to replay: the legitimate
    /// signal beat any jamming contamination by the capture margin.
    pub fn is_clean(&self) -> bool {
        self.jamming_margin_db >= CAPTURE_THRESHOLD_DB
    }
}

/// An SDR recorder placed near the end device.
#[derive(Debug, Clone)]
pub struct Eavesdropper {
    /// Eavesdropper position.
    pub position: Position,
    /// Minimum recording SNR for a usable capture, dB. USRP-class
    /// hardware records well below the LoRa demodulation floor, but the
    /// replayed copy inherits the recording's noise, so a margin is kept.
    pub min_recording_snr_db: f64,
}

impl Eavesdropper {
    /// Creates an eavesdropper at `position` with a −5 dB recording floor.
    pub fn new(position: Position) -> Self {
        Eavesdropper { position, min_recording_snr_db: -5.0 }
    }

    /// Attempts to record an uplink, given the concurrent jammer transmit
    /// power and position (if the jammer fires while recording).
    ///
    /// Returns `None` if the recording SNR is below the usable floor.
    pub fn record(
        &self,
        frame: &AirFrame,
        medium: &RadioMedium,
        jammer: Option<(&Position, f64)>,
    ) -> Option<RecordedWaveform> {
        let legit = medium.link(&frame.tx_position, &self.position, frame.tx_power_dbm);
        if legit.snr_db() < self.min_recording_snr_db {
            return None;
        }
        let jamming_margin_db = match jammer {
            None => f64::INFINITY,
            Some((jam_pos, jam_power_dbm)) => {
                let jam = medium.link(jam_pos, &self.position, jam_power_dbm);
                legit.rx_power_dbm() - jam.rx_power_dbm()
            }
        };
        Some(RecordedWaveform {
            frame: frame.clone(),
            recording_snr_db: legit.snr_db(),
            jamming_margin_db,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_phy::SpreadingFactor;
    use softlora_sim::medium::FreeSpace;

    fn frame_at(pos: Position, power: f64) -> AirFrame {
        AirFrame {
            dev_addr: 1,
            bytes: vec![0xAB; 20],
            tx_start_global_s: 0.0,
            airtime_s: 0.06,
            tx_power_dbm: power,
            tx_position: pos,
            tx_bias_hz: -20e3,
            tx_phase: 0.0,
            sf: SpreadingFactor::Sf7,
        }
    }

    fn medium() -> RadioMedium {
        RadioMedium::new(Box::new(FreeSpace { freq_hz: 868e6 }))
    }

    #[test]
    fn nearby_recording_is_clean_without_jamming() {
        let eaves = Eavesdropper::new(Position::new(5.0, 0.0, 0.0));
        let rec = eaves.record(&frame_at(Position::default(), 14.0), &medium(), None).unwrap();
        assert!(rec.is_clean());
        assert!(rec.recording_snr_db > 40.0);
        assert!(rec.jamming_margin_db.is_infinite());
    }

    #[test]
    fn distant_jammer_does_not_corrupt_recording() {
        // Paper §4.2.1: "when the replayer is far away from the
        // eavesdropper ... the jamming signal will be weak at the
        // eavesdropper after propagation attenuation".
        let eaves = Eavesdropper::new(Position::new(5.0, 0.0, 0.0));
        let far_jammer = Position::new(500.0, 0.0, 0.0);
        let rec = eaves
            .record(&frame_at(Position::default(), 14.0), &medium(), Some((&far_jammer, 14.0)))
            .unwrap();
        assert!(rec.is_clean(), "margin {}", rec.jamming_margin_db);
    }

    #[test]
    fn close_strong_jammer_corrupts_recording() {
        let eaves = Eavesdropper::new(Position::new(5.0, 0.0, 0.0));
        let near_jammer = Position::new(6.0, 0.0, 0.0);
        let rec = eaves
            .record(&frame_at(Position::default(), 14.0), &medium(), Some((&near_jammer, 14.0)))
            .unwrap();
        assert!(!rec.is_clean(), "margin {}", rec.jamming_margin_db);
    }

    #[test]
    fn too_weak_signal_not_recorded() {
        let eaves = Eavesdropper::new(Position::new(100_000.0, 0.0, 0.0));
        assert!(eaves.record(&frame_at(Position::default(), 0.0), &medium(), None).is_none());
    }

    #[test]
    fn recording_preserves_frame_bytes_and_bias() {
        let eaves = Eavesdropper::new(Position::new(5.0, 0.0, 0.0));
        let f = frame_at(Position::default(), 14.0);
        let rec = eaves.record(&f, &medium(), None).unwrap();
        assert_eq!(rec.frame.bytes, f.bytes);
        assert_eq!(rec.frame.tx_bias_hz, f.tx_bias_hz);
    }
}
