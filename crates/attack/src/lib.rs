//! The frame-delay attack of paper §4, implemented against the simulated
//! LoRaWAN.
//!
//! The attack (paper Fig. 1) combines three roles:
//!
//! * an [`eavesdropper::Eavesdropper`] near the end device records the
//!   uplink waveform;
//! * a [`jammer`] stealthy jamming transmission near the gateway starts
//!   inside the *effective attack window* `[t0+w1, t0+w2]` so the victim
//!   chip silently drops the legitimate frame (paper §4.3, Table 1);
//! * a [`replayer::Replayer`] (a USRP-class SDR with its own oscillator
//!   bias) re-transmits the recorded waveform after an attacker-chosen
//!   delay τ.
//!
//! The [`orchestrator::FrameDelayAttack`] glues the roles into a
//! [`softlora_sim::Interceptor`], so any simulation built on the honest
//! channel can be re-run under attack by swapping one object.
//!
//! [`rtt_detector`] implements the strawman round-trip-timing defence the
//! paper's §4.4 argues against, with its communication-overhead accounting.

pub mod eavesdropper;
pub mod jammer;
pub mod orchestrator;
pub mod replayer;
pub mod rtt_detector;

pub use eavesdropper::Eavesdropper;
pub use jammer::StealthyJammer;
pub use orchestrator::{AttackOutcome, FrameDelayAttack};
pub use replayer::Replayer;
