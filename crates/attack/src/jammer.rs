//! The stealthy jammer (paper §4.3).
//!
//! Jamming is stealthy only when its onset falls inside the effective
//! attack window `[t0+w1, t0+w2]` measured in Table 1: earlier and the
//! victim chip locks onto the jamming frame instead; later and the victim
//! reports a CRC error. The jammer detects the uplink direction within one
//! chirp time (up-chirps — §4.2.2), so any onset after one chirp is
//! reachable.

use softlora_phy::frame_timing::JammingWindows;
use softlora_phy::rn2483::{JammingAttempt, Rn2483Model};
use softlora_phy::PhyConfig;
use softlora_sim::Position;

/// A jammer near the gateway with configurable onset policy.
#[derive(Debug, Clone)]
pub struct StealthyJammer {
    /// Jammer position.
    pub position: Position,
    /// Jammer transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Fraction of the effective window `[w1, w2]` at which to start
    /// (0 = at `w1`, 1 = at `w2`); mid-window is safest against timing
    /// error in either direction.
    pub onset_fraction: f64,
    behaviour: Rn2483Model,
}

impl StealthyJammer {
    /// Creates a jammer at `position` transmitting at 14.1 dBm (the
    /// paper's jamming power in §8.1.1), aiming mid-window.
    pub fn new(position: Position) -> Self {
        StealthyJammer {
            position,
            tx_power_dbm: 14.1,
            onset_fraction: 0.5,
            behaviour: Rn2483Model::new(),
        }
    }

    /// Sets the transmit power.
    pub fn with_power_dbm(mut self, dbm: f64) -> Self {
        self.tx_power_dbm = dbm;
        self
    }

    /// Sets the onset fraction within the effective window.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` is in `[0, 1]`.
    pub fn with_onset_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "onset fraction must be in [0, 1]");
        self.onset_fraction = fraction;
        self
    }

    /// The jamming windows for a frame configuration.
    pub fn windows(&self, cfg: &PhyConfig, payload_len: usize) -> JammingWindows {
        self.behaviour.windows(cfg, payload_len)
    }

    /// Plans the jamming onset (seconds after the legitimate frame onset)
    /// for a frame of `payload_len` bytes.
    ///
    /// The onset is placed `onset_fraction` of the way through the
    /// effective window, but never earlier than one chirp time plus the
    /// direction-sensing margin (the jammer must first see the uplink
    /// preamble).
    pub fn plan_onset_s(&self, cfg: &PhyConfig, payload_len: usize) -> f64 {
        let w = self.windows(cfg, payload_len);
        let sensing_floor = cfg.chirp_time() * 1.5;
        (w.w1 + self.onset_fraction * (w.w2 - w.w1)).max(sensing_floor)
    }

    /// Builds the [`JammingAttempt`] the victim gateway experiences, given
    /// the jammer's power relative to the legitimate signal at the gateway.
    pub fn attempt(
        &self,
        cfg: &PhyConfig,
        payload_len: usize,
        relative_power_db: f64,
    ) -> JammingAttempt {
        JammingAttempt { onset_s: self.plan_onset_s(cfg, payload_len), relative_power_db }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_phy::rn2483::ReceptionOutcome;
    use softlora_phy::SpreadingFactor;

    fn jammer() -> StealthyJammer {
        StealthyJammer::new(Position::new(1.0, 0.0, 0.0))
    }

    #[test]
    fn planned_onset_is_inside_effective_window() {
        let j = jammer();
        for sf in [SpreadingFactor::Sf7, SpreadingFactor::Sf8, SpreadingFactor::Sf9] {
            let cfg = PhyConfig::uplink(sf);
            for len in [10usize, 20, 30, 40] {
                let w = j.windows(&cfg, len);
                let onset = j.plan_onset_s(&cfg, len);
                assert!(onset >= w.w1 && onset <= w.w2, "{sf} {len}: onset {onset}");
            }
        }
    }

    #[test]
    fn planned_jam_causes_silent_drop() {
        let j = jammer();
        let model = Rn2483Model::new();
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
        let attempt = j.attempt(&cfg, 20, 8.0);
        let outcome = model.receive(&cfg, 20, 5.0, Some(attempt));
        assert_eq!(outcome, ReceptionOutcome::SilentDrop);
        assert!(outcome.is_stealthy_suppression());
    }

    #[test]
    fn onset_fraction_moves_within_window() {
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf8);
        let early = jammer().with_onset_fraction(0.0).plan_onset_s(&cfg, 30);
        let mid = jammer().with_onset_fraction(0.5).plan_onset_s(&cfg, 30);
        let late = jammer().with_onset_fraction(1.0).plan_onset_s(&cfg, 30);
        assert!(early < mid && mid < late);
        let w = jammer().windows(&cfg, 30);
        assert!((early - w.w1).abs() < 1e-12);
        assert!((late - w.w2).abs() < 1e-12);
    }

    #[test]
    fn onset_respects_direction_sensing_floor() {
        // Even asked for fraction 0, the jammer cannot start before it has
        // sensed the transmission direction (~1.5 chirps).
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
        let j = jammer().with_onset_fraction(0.0);
        assert!(j.plan_onset_s(&cfg, 20) >= cfg.chirp_time() * 1.5 - 1e-12);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_fraction_panics() {
        jammer().with_onset_fraction(1.5);
    }

    #[test]
    fn default_power_matches_paper() {
        assert!((jammer().tx_power_dbm - 14.1).abs() < 1e-12);
    }
}

/// The *selective* jammer of Aras et al. \[5\], modelled for the paper's §2
/// comparison.
///
/// A selective jammer must decode the frame header before deciding to jam,
/// so its earliest possible onset is the end of the header block. The
/// paper argues this "cannot be stealthy" because payload corruption
/// raises a CRC alert — which holds mechanistically (and in our model for
/// minimal frames, where `w2` equals the header end). A nuance this
/// reproduction surfaces: the paper's *own Table 1 measurements* put `w2`
/// at ≈ 0.67 × airtime, well beyond the header end, meaning the measured
/// RN2483 also stays silent when early-payload symbols are corrupted — so
/// on long frames a fast selective jammer retains a (smaller) stealthy
/// window. Either way its stealth margin is strictly worse than the
/// onset-window jammer's, which is the §2 comparison that matters.
#[derive(Debug, Clone)]
pub struct SelectiveJammer {
    /// Jammer position.
    pub position: Position,
    /// Jammer transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Processing latency between finishing header decode and emitting the
    /// jamming signal, seconds.
    pub decision_latency_s: f64,
}

impl SelectiveJammer {
    /// Creates a selective jammer with a 2 ms decision latency.
    pub fn new(position: Position) -> Self {
        SelectiveJammer { position, tx_power_dbm: 14.1, decision_latency_s: 2e-3 }
    }

    /// Earliest jamming onset: the header must be fully received first.
    pub fn earliest_onset_s(&self, cfg: &PhyConfig) -> f64 {
        cfg.header_end_time() + self.decision_latency_s
    }

    /// Builds the jamming attempt this jammer can achieve at best.
    pub fn attempt(&self, cfg: &PhyConfig, relative_power_db: f64) -> JammingAttempt {
        JammingAttempt { onset_s: self.earliest_onset_s(cfg), relative_power_db }
    }
}

#[cfg(test)]
mod selective_tests {
    use super::*;
    use softlora_phy::rn2483::{ReceptionOutcome, Rn2483Model};
    use softlora_phy::SpreadingFactor;

    #[test]
    fn selective_jamming_alerts_on_minimal_frames() {
        // Paper §2's mechanistic claim: once the header has been received
        // intact, corrupting what remains yields an integrity alert. For
        // minimal frames w2 coincides with the header end, so the selective
        // jammer's earliest onset lands in the alert window.
        let model = Rn2483Model::new();
        let jammer = SelectiveJammer::new(Position::new(1.0, 0.0, 0.0));
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
        let attempt = jammer.attempt(&cfg, 10.0);
        let outcome = model.receive(&cfg, 0, 5.0, Some(attempt));
        assert_eq!(outcome, ReceptionOutcome::CrcAlert, "{outcome:?}");
    }

    #[test]
    fn selective_jammer_has_strictly_worse_stealth_margin() {
        // On long frames the Table-1-calibrated chip still silently drops
        // early-payload corruption, so the selective jammer is not always
        // caught — but its margin to the end of the silent window is far
        // smaller than the onset-window jammer's for every configuration.
        let model = Rn2483Model::new();
        for sf in [SpreadingFactor::Sf7, SpreadingFactor::Sf8, SpreadingFactor::Sf9] {
            let cfg = PhyConfig::uplink(sf);
            let stealthy = StealthyJammer::new(Position::new(1.0, 0.0, 0.0));
            let selective = SelectiveJammer::new(Position::new(1.0, 0.0, 0.0));
            for payload in [20usize, 40] {
                let w = model.windows(&cfg, payload);
                let _ = stealthy.plan_onset_s(&cfg, payload); // policy onset
                let n_onset = selective.earliest_onset_s(&cfg);
                // Header decode forces the selective jammer well past the
                // earliest stealthy onset (w1 = five chirps).
                assert!(n_onset > w.w1, "{sf} {payload}");
                // Usable stealthy windows: [w1, w2] for the onset-window
                // jammer, [header end + latency, w2] for the selective one.
                let s_window = w.w2 - w.w1;
                let n_window = (w.w2 - n_onset).max(0.0);
                assert!(
                    s_window > 1.5 * n_window,
                    "{sf} {payload}: stealthy window {s_window}, selective {n_window}"
                );
            }
        }
    }

    #[test]
    fn earliest_onset_after_header() {
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
        let j = SelectiveJammer::new(Position::default());
        assert!(j.earliest_onset_s(&cfg) > cfg.header_end_time());
    }
}
