//! The replayer: a USRP-class SDR that re-transmits recorded waveforms
//! (paper §4.2.1 step ❸, §7.2).
//!
//! The replayed waveform is bit-exact, so all cryptographic checks pass —
//! but the replay chain's own oscillators imprint an *additional frequency
//! bias* on the carrier. Paper Fig. 13 measures −543 to −743 Hz for a
//! single USRP replaying its own recording; paper Fig. 16 measures ≈ 2 kHz
//! when two different USRPs (eavesdropper + replayer) are chained, because
//! their biases superimpose.

use crate::eavesdropper::RecordedWaveform;
use softlora_phy::oscillator::Oscillator;
use softlora_sim::{Delivery, Position, RadioMedium};

/// A USRP-class replay transmitter.
#[derive(Debug)]
pub struct Replayer {
    /// Replayer position (near the gateway).
    pub position: Position,
    /// Replay transmit power, dBm.
    pub tx_power_dbm: f64,
    oscillator: Oscillator,
    /// Extra bias contributed by the *recording* device's down/up
    /// conversion chain, Hz (zero when the same USRP records and replays,
    /// as in Fig. 13; non-zero when a separate eavesdropper USRP recorded,
    /// as in Fig. 16).
    recording_chain_bias_hz: f64,
}

impl Replayer {
    /// Creates a replayer at `position` with a sampled USRP oscillator.
    pub fn new(position: Position, seed: u64) -> Self {
        Replayer {
            position,
            tx_power_dbm: 7.0, // the paper's stealthy replay power bound
            oscillator: Oscillator::sample_usrp(869.75e6, seed),
            recording_chain_bias_hz: 0.0,
        }
    }

    /// Sets the replay transmit power.
    pub fn with_power_dbm(mut self, dbm: f64) -> Self {
        self.tx_power_dbm = dbm;
        self
    }

    /// Uses a specific oscillator (tests / calibration).
    pub fn with_oscillator(mut self, oscillator: Oscillator) -> Self {
        self.oscillator = oscillator;
        self
    }

    /// Adds the recording chain's bias (two-USRP setup, Fig. 16).
    pub fn with_recording_chain_bias_hz(mut self, bias_hz: f64) -> Self {
        self.recording_chain_bias_hz = bias_hz;
        self
    }

    /// The replay chain's total added bias for the next transmission, Hz.
    pub fn chain_bias_hz(&mut self) -> f64 {
        self.oscillator.frame_bias_hz() + self.recording_chain_bias_hz
    }

    /// The replayer oscillator's deterministic bias, Hz.
    pub fn oscillator_bias_hz(&self) -> f64 {
        self.oscillator.frequency_bias_hz()
    }

    /// Replays a recorded waveform towards the gateway after a delay of
    /// `tau_s` seconds from the original transmission onset.
    ///
    /// The delivered copy keeps the original bytes (integrity intact) but
    /// carries `original bias + chain bias` on its carrier — the artefact
    /// SoftLoRa detects.
    pub fn replay(
        &mut self,
        recording: &RecordedWaveform,
        tau_s: f64,
        medium: &RadioMedium,
        gateway_position: &Position,
    ) -> Delivery {
        self.replay_fleet(recording, tau_s, medium, std::slice::from_ref(gateway_position))
            .pop()
            .expect("one gateway in, one delivery out")
    }

    /// Replays a recorded waveform towards a whole gateway fleet: the
    /// single re-transmission is heard by every gateway with its own link
    /// budget and propagation delay, but one chain bias and one carrier
    /// phase (it is one emission). With a single gateway this is exactly
    /// [`Replayer::replay`].
    pub fn replay_fleet(
        &mut self,
        recording: &RecordedWaveform,
        tau_s: f64,
        medium: &RadioMedium,
        gateways: &[Position],
    ) -> Vec<Delivery> {
        let chain = self.chain_bias_hz();
        let phase = self.oscillator.random_phase();
        gateways
            .iter()
            .map(|gateway_position| {
                let link = medium.link(&self.position, gateway_position, self.tx_power_dbm);
                let delay = medium.delay_s(&self.position, gateway_position);
                Delivery {
                    bytes: recording.frame.bytes.clone(),
                    dev_addr: recording.frame.dev_addr,
                    arrival_global_s: recording.frame.tx_start_global_s + tau_s + delay,
                    snr_db: link.snr_db(),
                    carrier_bias_hz: recording.frame.tx_bias_hz + chain,
                    carrier_phase: phase,
                    sf: recording.frame.sf,
                    jamming: None,
                    is_replay: true,
                }
            })
            .collect()
    }

    /// The highest replay power that stays *stealthy*: decodable at the
    /// gateway but no more than `max_rx_margin_db` above the gateway's
    /// demodulation floor for `sf`, so the replayed frame's received power
    /// looks unremarkable (paper §8.1.1 finds ≤ 7 dBm works in the
    /// building). Returns `None` if no power in `[min_dbm, max_dbm]`
    /// achieves decodability.
    pub fn stealthy_power_dbm(
        &self,
        medium: &RadioMedium,
        gateway_position: &Position,
        sf: softlora_phy::SpreadingFactor,
        min_dbm: f64,
        max_dbm: f64,
        max_rx_margin_db: f64,
    ) -> Option<f64> {
        let floor = sf.demod_floor_db();
        let mut best = None;
        let mut p = min_dbm;
        while p <= max_dbm + 1e-9 {
            let snr = medium.link(&self.position, gateway_position, p).snr_db();
            if snr >= floor && snr <= floor + max_rx_margin_db {
                best = Some(p);
            }
            p += 0.1;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_phy::SpreadingFactor;
    use softlora_sim::medium::FreeSpace;
    use softlora_sim::AirFrame;

    fn recording() -> RecordedWaveform {
        RecordedWaveform {
            frame: AirFrame {
                dev_addr: 3,
                bytes: vec![0x42; 25],
                tx_start_global_s: 50.0,
                airtime_s: 0.06,
                tx_power_dbm: 14.0,
                tx_position: Position::default(),
                tx_bias_hz: -22_000.0,
                tx_phase: 0.4,
                sf: SpreadingFactor::Sf8,
            },
            recording_snr_db: 30.0,
            jamming_margin_db: f64::INFINITY,
        }
    }

    fn medium() -> RadioMedium {
        RadioMedium::new(Box::new(FreeSpace { freq_hz: 868e6 }))
    }

    #[test]
    fn replay_preserves_bytes_and_adds_bias() {
        let mut r = Replayer::new(Position::new(990.0, 0.0, 0.0), 1);
        let gw = Position::new(1000.0, 0.0, 0.0);
        let d = r.replay(&recording(), 30.0, &medium(), &gw);
        assert_eq!(d.bytes, vec![0x42; 25]);
        assert!(d.is_replay);
        // Arrival shifted by tau (+ tiny propagation).
        assert!((d.arrival_global_s - 80.0).abs() < 1e-3);
        // Carrier bias = original + USRP chain (−400..−800 Hz).
        let added = d.carrier_bias_hz - (-22_000.0);
        assert!((-900.0..=-350.0).contains(&added), "added bias {added}");
    }

    #[test]
    fn added_bias_matches_fig13_range() {
        // Single-USRP chain: paper Fig. 13 reports −543..−743 Hz mean
        // additional bias across nodes; our oscillator population spans
        // −783..−435 Hz deterministic bias with small per-frame jitter.
        for seed in 0..8 {
            let mut r = Replayer::new(Position::default(), seed);
            let bias = r.chain_bias_hz();
            assert!((-900.0..=-350.0).contains(&bias), "seed {seed}: {bias}");
        }
    }

    #[test]
    fn two_usrp_chain_roughly_doubles_bias() {
        // Fig. 16: two different USRPs superimpose to ≈ 2 kHz — model the
        // recording chain with its own −700 Hz contribution plus ~−600 Hz
        // replay chain, giving well over 1 kHz total.
        let mut r = Replayer::new(Position::default(), 2).with_recording_chain_bias_hz(-700.0);
        let bias = r.chain_bias_hz();
        assert!(bias < -1000.0, "chain bias {bias}");
    }

    #[test]
    fn fleet_replay_is_one_emission_heard_everywhere() {
        let mut r = Replayer::new(Position::new(10.0, 0.0, 0.0), 6);
        let gateways =
            [Position::new(12.0, 0.0, 0.0), Position::new(500.0, 0.0, 0.0), Position::default()];
        let ds = r.replay_fleet(&recording(), 30.0, &medium(), &gateways);
        assert_eq!(ds.len(), 3);
        // One emission: same bytes, chain bias and carrier phase...
        for d in &ds {
            assert_eq!(d.bytes, ds[0].bytes);
            assert_eq!(d.carrier_bias_hz, ds[0].carrier_bias_hz);
            assert_eq!(d.carrier_phase, ds[0].carrier_phase);
            assert!(d.is_replay);
        }
        // ...but per-gateway link budgets and delays.
        assert!(ds[0].snr_db > ds[1].snr_db);
        assert!(ds[1].arrival_global_s > ds[0].arrival_global_s);
    }

    #[test]
    fn single_gateway_fleet_replay_matches_replay() {
        let gw = Position::new(1000.0, 0.0, 0.0);
        let mut a = Replayer::new(Position::new(990.0, 0.0, 0.0), 1);
        let mut b = Replayer::new(Position::new(990.0, 0.0, 0.0), 1);
        let single = a.replay(&recording(), 30.0, &medium(), &gw);
        let fleet = b.replay_fleet(&recording(), 30.0, &medium(), &[gw]);
        assert_eq!(single.carrier_bias_hz, fleet[0].carrier_bias_hz);
        assert_eq!(single.carrier_phase, fleet[0].carrier_phase);
        assert_eq!(single.arrival_global_s, fleet[0].arrival_global_s);
        assert_eq!(single.snr_db, fleet[0].snr_db);
    }

    #[test]
    fn replay_arrival_scales_with_tau() {
        let mut r = Replayer::new(Position::new(5.0, 0.0, 0.0), 3);
        let gw = Position::new(8.0, 0.0, 0.0);
        let d1 = r.replay(&recording(), 1.0, &medium(), &gw);
        let d2 = r.replay(&recording(), 600.0, &medium(), &gw);
        assert!((d2.arrival_global_s - d1.arrival_global_s - 599.0).abs() < 1e-9);
    }

    #[test]
    fn stealthy_power_exists_for_long_link() {
        // Replayer 5 km from the gateway: some power in [-10, 7] dBm is
        // decodable at SF8 without being anomalously strong.
        let r = Replayer::new(Position::new(0.0, 0.0, 0.0), 4);
        let gw = Position::new(5000.0, 0.0, 0.0);
        let p = r.stealthy_power_dbm(&medium(), &gw, SpreadingFactor::Sf8, -10.0, 7.0, 25.0);
        assert!(p.is_some());
        assert!(p.unwrap() <= 7.0);
    }

    #[test]
    fn stealthy_power_absent_when_link_too_weak() {
        let r = Replayer::new(Position::new(0.0, 0.0, 0.0), 5);
        let gw = Position::new(500_000.0, 0.0, 0.0); // 500 km
        assert!(r
            .stealthy_power_dbm(&medium(), &gw, SpreadingFactor::Sf7, -10.0, 7.0, 25.0)
            .is_none());
    }
}
