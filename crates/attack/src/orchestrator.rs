//! The full frame-delay attack orchestrator (paper §4.2.1, Fig. 1).
//!
//! Per intercepted uplink: ❶ the jammer (co-located with the replayer near
//! the gateway) jams the gateway inside the effective attack window while
//! the eavesdropper records the waveform near the device; ❷ the recording
//! is transferred to the replayer out of band; ❸ after τ seconds the
//! replayer re-transmits it. Implemented as a
//! [`softlora_sim::Interceptor`], so swapping it for the honest channel
//! puts any scenario under attack.

use crate::eavesdropper::Eavesdropper;
use crate::jammer::StealthyJammer;
use crate::replayer::Replayer;
use softlora_phy::PhyConfig;
use softlora_sim::{AirFrame, Delivery, Interceptor, Position, RadioMedium};

/// Per-frame attack bookkeeping for evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackOutcome {
    /// Device not targeted; frame passed through untouched.
    NotTargeted,
    /// Attack executed: original jammed, replay delivered.
    Executed,
    /// Recording failed (too weak at the eavesdropper) — attack aborted,
    /// original delivered with jamming anyway cancelled.
    RecordingFailed,
    /// Recording corrupted by the attacker's own jamming (eavesdropper too
    /// close to the jammer).
    RecordingCorrupted,
}

/// The jam-and-replay frame-delay attack.
#[derive(Debug)]
pub struct FrameDelayAttack {
    /// Waveform recorder near the device.
    pub eavesdropper: Eavesdropper,
    /// Stealthy jammer near the gateway.
    pub jammer: StealthyJammer,
    /// USRP replayer near the gateway.
    pub replayer: Replayer,
    /// Injected delay τ in seconds.
    pub tau_s: f64,
    /// Devices under attack (`None` = attack every uplink the eavesdropper
    /// hears — paper §4.2.1 notes the setup affects all devices near the
    /// eavesdropper).
    pub targets: Option<Vec<u32>>,
    /// PHY configuration used to plan jamming windows.
    pub phy: PhyConfig,
    outcomes: Vec<AttackOutcome>,
}

impl FrameDelayAttack {
    /// Creates an attack with eavesdropper/jammer/replayer at the given
    /// positions, a delay of `tau_s` and default powers (jam 14.1 dBm,
    /// replay 7 dBm).
    pub fn new(
        eavesdropper_pos: Position,
        attacker_gw_side_pos: Position,
        tau_s: f64,
        phy: PhyConfig,
        seed: u64,
    ) -> Self {
        // The paper's setup (Fig. 1, §8.1.1) uses two USRP N210 stations:
        // the eavesdropper's down/up-conversion chain contributes its own
        // bias on top of the replayer's, superimposing to the ≈ 2 kHz
        // artefact of §8.1.4.
        let eaves_chain =
            softlora_phy::oscillator::Oscillator::sample_usrp(869.75e6, seed ^ 0xEA7E5)
                .frequency_bias_hz();
        FrameDelayAttack {
            eavesdropper: Eavesdropper::new(eavesdropper_pos),
            jammer: StealthyJammer::new(attacker_gw_side_pos),
            replayer: Replayer::new(attacker_gw_side_pos, seed)
                .with_recording_chain_bias_hz(eaves_chain),
            tau_s,
            targets: None,
            phy,
            outcomes: Vec::new(),
        }
    }

    /// Restricts the attack to specific device addresses.
    pub fn with_targets(mut self, targets: Vec<u32>) -> Self {
        self.targets = Some(targets);
        self
    }

    /// Attack outcomes so far, one per intercepted uplink.
    pub fn outcomes(&self) -> &[AttackOutcome] {
        &self.outcomes
    }

    fn is_target(&self, dev_addr: u32) -> bool {
        match &self.targets {
            None => true,
            Some(t) => t.contains(&dev_addr),
        }
    }

    /// Honest pass-through used when the attack aborts.
    fn deliver_honest(
        frame: &AirFrame,
        medium: &RadioMedium,
        gateway_position: &Position,
    ) -> Vec<Delivery> {
        softlora_sim::HonestChannel.intercept(frame, medium, gateway_position)
    }
}

impl Interceptor for FrameDelayAttack {
    fn intercept(
        &mut self,
        frame: &AirFrame,
        medium: &RadioMedium,
        gateway_position: &Position,
    ) -> Vec<Delivery> {
        if !self.is_target(frame.dev_addr) {
            self.outcomes.push(AttackOutcome::NotTargeted);
            return Self::deliver_honest(frame, medium, gateway_position);
        }

        // ❶ Record at the eavesdropper while the jammer fires.
        let recording = match self.eavesdropper.record(
            frame,
            medium,
            Some((&self.jammer.position, self.jammer.tx_power_dbm)),
        ) {
            Some(r) => r,
            None => {
                self.outcomes.push(AttackOutcome::RecordingFailed);
                return Self::deliver_honest(frame, medium, gateway_position);
            }
        };
        if !recording.is_clean() {
            self.outcomes.push(AttackOutcome::RecordingCorrupted);
            return Self::deliver_honest(frame, medium, gateway_position);
        }

        // Jamming strength relative to the legitimate signal at the victim.
        let legit_at_gw = medium.link(&frame.tx_position, gateway_position, frame.tx_power_dbm);
        let jam_at_gw =
            medium.link(&self.jammer.position, gateway_position, self.jammer.tx_power_dbm);
        let relative_power_db = jam_at_gw.rx_power_dbm() - legit_at_gw.rx_power_dbm();
        let payload_len = frame.bytes.len();
        let jam_attempt = self.jammer.attempt(&self.phy, payload_len, relative_power_db);

        // The original copy arrives jammed...
        let delay = medium.delay_s(&frame.tx_position, gateway_position);
        let original = Delivery {
            bytes: frame.bytes.clone(),
            dev_addr: frame.dev_addr,
            arrival_global_s: frame.tx_start_global_s + delay,
            snr_db: legit_at_gw.snr_db(),
            carrier_bias_hz: frame.tx_bias_hz,
            carrier_phase: frame.tx_phase,
            sf: frame.sf,
            jamming: Some(jam_attempt),
            is_replay: false,
        };

        // ❷❸ ...and the replay arrives τ later.
        let replay = self.replayer.replay(&recording, self.tau_s, medium, gateway_position);

        self.outcomes.push(AttackOutcome::Executed);
        vec![original, replay]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_phy::rn2483::{ReceptionOutcome, Rn2483Model};
    use softlora_phy::SpreadingFactor;
    use softlora_sim::medium::FreeSpace;

    fn setup() -> (FrameDelayAttack, RadioMedium, Position) {
        let phy = PhyConfig::uplink(SpreadingFactor::Sf8);
        let device_pos = Position::default();
        let gw_pos = Position::new(400.0, 0.0, 0.0);
        let attack = FrameDelayAttack::new(
            Position::new(3.0, 2.0, 0.0),   // eavesdropper near device
            Position::new(398.0, 1.0, 0.0), // jammer+replayer near gateway
            30.0,
            phy,
            7,
        );
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 868e6 }));
        let _ = device_pos;
        (attack, medium, gw_pos)
    }

    fn uplink(dev_addr: u32) -> AirFrame {
        AirFrame {
            dev_addr,
            bytes: vec![0x5A; 30],
            tx_start_global_s: 100.0,
            airtime_s: 0.12,
            tx_power_dbm: 14.0,
            tx_position: Position::default(),
            tx_bias_hz: -21_500.0,
            tx_phase: 0.2,
            sf: SpreadingFactor::Sf8,
        }
    }

    #[test]
    fn attack_produces_jammed_original_plus_delayed_replay() {
        let (mut attack, medium, gw) = setup();
        let deliveries = attack.intercept(&uplink(1), &medium, &gw);
        assert_eq!(deliveries.len(), 2);
        let original = &deliveries[0];
        let replay = &deliveries[1];

        assert!(!original.is_replay && original.jamming.is_some());
        assert!(replay.is_replay && replay.jamming.is_none());
        // Replay delayed by τ = 30 s.
        let shift = replay.arrival_global_s - original.arrival_global_s;
        assert!((shift - 30.0).abs() < 1e-3, "shift {shift}");
        // Bytes bit-exact.
        assert_eq!(original.bytes, replay.bytes);
        // Replay carries the two-USRP chain's extra bias (§8.1.4).
        let extra = replay.carrier_bias_hz - original.carrier_bias_hz;
        assert!((-1800.0..=-700.0).contains(&extra), "extra bias {extra}");
        assert_eq!(attack.outcomes(), &[AttackOutcome::Executed]);
    }

    #[test]
    fn victim_chip_silently_drops_the_original() {
        let (mut attack, medium, gw) = setup();
        let deliveries = attack.intercept(&uplink(1), &medium, &gw);
        let original = &deliveries[0];
        let model = Rn2483Model::new();
        let outcome = model.receive(
            &PhyConfig::uplink(SpreadingFactor::Sf8),
            original.bytes.len(),
            original.snr_db,
            original.jamming,
        );
        assert_eq!(outcome, ReceptionOutcome::SilentDrop, "jam rel power {:?}", original.jamming);
    }

    #[test]
    fn untargeted_devices_pass_through() {
        let (attack, medium, gw) = setup();
        let mut attack = attack.with_targets(vec![42]);
        let deliveries = attack.intercept(&uplink(1), &medium, &gw);
        assert_eq!(deliveries.len(), 1);
        assert!(!deliveries[0].is_replay);
        assert_eq!(attack.outcomes(), &[AttackOutcome::NotTargeted]);
    }

    #[test]
    fn targeted_device_attacked() {
        let (attack, medium, gw) = setup();
        let mut attack = attack.with_targets(vec![1]);
        let deliveries = attack.intercept(&uplink(1), &medium, &gw);
        assert_eq!(deliveries.len(), 2);
    }

    #[test]
    fn failed_recording_aborts_to_honest_delivery() {
        let (mut attack, medium, gw) = setup();
        // Move the eavesdropper absurdly far from the device.
        attack.eavesdropper.position = Position::new(0.0, 500_000.0, 0.0);
        let deliveries = attack.intercept(&uplink(1), &medium, &gw);
        assert_eq!(deliveries.len(), 1);
        assert!(deliveries[0].jamming.is_none());
        assert_eq!(attack.outcomes(), &[AttackOutcome::RecordingFailed]);
    }

    #[test]
    fn jammer_next_to_eavesdropper_corrupts_recording() {
        let (mut attack, medium, gw) = setup();
        // Jammer right next to the eavesdropper: recording contaminated.
        attack.jammer.position = Position::new(3.5, 2.0, 0.0);
        let deliveries = attack.intercept(&uplink(1), &medium, &gw);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(attack.outcomes(), &[AttackOutcome::RecordingCorrupted]);
    }

    #[test]
    fn timestamps_shift_by_tau_end_to_end() {
        // Glue check with the LoRaWAN layer: the replayed frame decodes and
        // its reconstructed record timestamps are τ late.
        use softlora_lorawan::{ClassADevice, DeviceConfig, Gateway, RxVerdict};
        let phy = PhyConfig::uplink(SpreadingFactor::Sf8);
        let cfg = DeviceConfig::new(1, phy);
        let mut dev = ClassADevice::new(cfg.clone());
        let mut gw = Gateway::new();
        gw.provision(1, cfg.keys.clone());

        dev.sense(555, 99.0).unwrap();
        let tx = dev.try_transmit(100.0).unwrap();

        let (mut attack, medium, gw_pos) = setup();
        let frame = AirFrame {
            dev_addr: 1,
            bytes: tx.bytes.clone(),
            tx_start_global_s: 100.0,
            airtime_s: tx.airtime_s,
            tx_power_dbm: 14.0,
            tx_position: Position::default(),
            tx_bias_hz: -20e3,
            tx_phase: 0.0,
            sf: SpreadingFactor::Sf8,
        };
        let deliveries = attack.intercept(&frame, &medium, &gw_pos);
        // Original silently dropped (jammed) -> gateway only sees replay.
        let replay = deliveries.iter().find(|d| d.is_replay).unwrap();
        let RxVerdict::Accepted(up) = gw.receive(&replay.bytes, replay.arrival_global_s) else {
            panic!("replay should be accepted")
        };
        let err = up.records[0].global_time_s - 99.0;
        assert!((err - 30.0).abs() < 0.1, "timestamp error {err}, want ~30");
    }
}
