//! The full frame-delay attack orchestrator (paper §4.2.1, Fig. 1).
//!
//! Per intercepted uplink: ❶ the jammer (co-located with the replayer near
//! the gateway) jams the gateway inside the effective attack window while
//! the eavesdropper records the waveform near the device; ❷ the recording
//! is transferred to the replayer out of band; ❸ after τ seconds the
//! replayer re-transmits it. Implemented as a
//! [`softlora_sim::Interceptor`], so swapping it for the honest channel
//! puts any scenario under attack.

use crate::eavesdropper::Eavesdropper;
use crate::jammer::StealthyJammer;
use crate::replayer::Replayer;
use softlora_phy::PhyConfig;
use softlora_sim::{AirFrame, Delivery, FleetDelivery, Interceptor, Position, RadioMedium};

/// Per-frame attack bookkeeping for evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackOutcome {
    /// Device not targeted; frame passed through untouched.
    NotTargeted,
    /// Attack executed: original jammed, replay delivered.
    Executed,
    /// Recording failed (too weak at the eavesdropper) — attack aborted,
    /// original delivered with jamming anyway cancelled.
    RecordingFailed,
    /// Recording corrupted by the attacker's own jamming (eavesdropper too
    /// close to the jammer).
    RecordingCorrupted,
}

/// The jam-and-replay frame-delay attack.
#[derive(Debug)]
pub struct FrameDelayAttack {
    /// Waveform recorder near the device.
    pub eavesdropper: Eavesdropper,
    /// Stealthy jammer near the gateway.
    pub jammer: StealthyJammer,
    /// USRP replayer near the gateway.
    pub replayer: Replayer,
    /// Injected delay τ in seconds.
    pub tau_s: f64,
    /// Devices under attack (`None` = attack every uplink the eavesdropper
    /// hears — paper §4.2.1 notes the setup affects all devices near the
    /// eavesdropper).
    pub targets: Option<Vec<u32>>,
    /// In a gateway fleet, the index of the gateway the jammer/replayer
    /// chain is parked next to. Only this gateway's original copy is
    /// jammed; the replay transmission is heard by every gateway.
    pub attacked_gateway: usize,
    /// PHY configuration used to plan jamming windows.
    pub phy: PhyConfig,
    outcomes: Vec<AttackOutcome>,
}

impl FrameDelayAttack {
    /// Creates an attack with eavesdropper/jammer/replayer at the given
    /// positions, a delay of `tau_s` and default powers (jam 14.1 dBm,
    /// replay 7 dBm).
    pub fn new(
        eavesdropper_pos: Position,
        attacker_gw_side_pos: Position,
        tau_s: f64,
        phy: PhyConfig,
        seed: u64,
    ) -> Self {
        // The paper's setup (Fig. 1, §8.1.1) uses two USRP N210 stations:
        // the eavesdropper's down/up-conversion chain contributes its own
        // bias on top of the replayer's, superimposing to the ≈ 2 kHz
        // artefact of §8.1.4.
        let eaves_chain =
            softlora_phy::oscillator::Oscillator::sample_usrp(869.75e6, seed ^ 0xEA7E5)
                .frequency_bias_hz();
        FrameDelayAttack {
            eavesdropper: Eavesdropper::new(eavesdropper_pos),
            jammer: StealthyJammer::new(attacker_gw_side_pos),
            replayer: Replayer::new(attacker_gw_side_pos, seed)
                .with_recording_chain_bias_hz(eaves_chain),
            tau_s,
            targets: None,
            attacked_gateway: 0,
            phy,
            outcomes: Vec::new(),
        }
    }

    /// Places the attack in a gateway fleet: the jammer/replayer chain is
    /// parked `standoff_m` metres from `gateways[attacked]` and only that
    /// gateway's original copies are jammed.
    ///
    /// # Panics
    ///
    /// Panics if `attacked` is out of range.
    pub fn near_gateway(
        eavesdropper_pos: Position,
        gateways: &[Position],
        attacked: usize,
        standoff_m: f64,
        tau_s: f64,
        phy: PhyConfig,
        seed: u64,
    ) -> Self {
        assert!(attacked < gateways.len(), "attacked gateway {attacked} out of range");
        let gw = gateways[attacked];
        let chain_pos = Position::new(gw.x + standoff_m, gw.y, gw.z);
        let mut attack = Self::new(eavesdropper_pos, chain_pos, tau_s, phy, seed);
        attack.attacked_gateway = attacked;
        attack
    }

    /// Restricts the attack to specific device addresses.
    pub fn with_targets(mut self, targets: Vec<u32>) -> Self {
        self.targets = Some(targets);
        self
    }

    /// Selects which fleet gateway the replay chain sits next to.
    pub fn with_attacked_gateway(mut self, gateway: usize) -> Self {
        self.attacked_gateway = gateway;
        self
    }

    /// Attack outcomes so far, one per intercepted uplink.
    pub fn outcomes(&self) -> &[AttackOutcome] {
        &self.outcomes
    }

    fn is_target(&self, dev_addr: u32) -> bool {
        match &self.targets {
            None => true,
            Some(t) => t.contains(&dev_addr),
        }
    }

    /// Honest pass-through used when the attack aborts.
    fn deliver_honest_fleet(
        frame: &AirFrame,
        medium: &RadioMedium,
        gateways: &[Position],
    ) -> Vec<FleetDelivery> {
        softlora_sim::HonestChannel.intercept_fleet(frame, medium, gateways)
    }
}

impl Interceptor for FrameDelayAttack {
    fn intercept(
        &mut self,
        frame: &AirFrame,
        medium: &RadioMedium,
        gateway_position: &Position,
    ) -> Vec<Delivery> {
        self.intercept_fleet(frame, medium, std::slice::from_ref(gateway_position))
            .into_iter()
            .map(|c| c.delivery)
            .collect()
    }

    /// The fleet-aware attack: the jammer suppresses the original only at
    /// the gateway the chain is parked next to; the other gateways hear
    /// the original clean. The single replay transmission τ later is
    /// heard by **every** gateway — which is exactly what a network
    /// server's cross-gateway consistency check exploits.
    fn intercept_fleet(
        &mut self,
        frame: &AirFrame,
        medium: &RadioMedium,
        gateways: &[Position],
    ) -> Vec<FleetDelivery> {
        if !self.is_target(frame.dev_addr) {
            self.outcomes.push(AttackOutcome::NotTargeted);
            return Self::deliver_honest_fleet(frame, medium, gateways);
        }

        // ❶ Record at the eavesdropper while the jammer fires.
        let recording = match self.eavesdropper.record(
            frame,
            medium,
            Some((&self.jammer.position, self.jammer.tx_power_dbm)),
        ) {
            Some(r) => r,
            None => {
                self.outcomes.push(AttackOutcome::RecordingFailed);
                return Self::deliver_honest_fleet(frame, medium, gateways);
            }
        };
        if !recording.is_clean() {
            self.outcomes.push(AttackOutcome::RecordingCorrupted);
            return Self::deliver_honest_fleet(frame, medium, gateways);
        }

        let attacked = self.attacked_gateway.min(gateways.len().saturating_sub(1));
        let payload_len = frame.bytes.len();
        let mut copies = Vec::with_capacity(2 * gateways.len());
        for (gateway, gw_pos) in gateways.iter().enumerate() {
            let legit_at_gw = medium.link(&frame.tx_position, gw_pos, frame.tx_power_dbm);
            // Jamming is local: only the attacked gateway's copy overlaps
            // the jammer's burst at suppression strength.
            let jamming = (gateway == attacked).then(|| {
                let jam_at_gw =
                    medium.link(&self.jammer.position, gw_pos, self.jammer.tx_power_dbm);
                let relative_power_db = jam_at_gw.rx_power_dbm() - legit_at_gw.rx_power_dbm();
                self.jammer.attempt(&self.phy, payload_len, relative_power_db)
            });
            let delay = medium.delay_s(&frame.tx_position, gw_pos);
            copies.push(FleetDelivery {
                gateway,
                delivery: Delivery {
                    bytes: frame.bytes.clone(),
                    dev_addr: frame.dev_addr,
                    arrival_global_s: frame.tx_start_global_s + delay,
                    snr_db: legit_at_gw.snr_db(),
                    carrier_bias_hz: frame.tx_bias_hz,
                    carrier_phase: frame.tx_phase,
                    sf: frame.sf,
                    jamming,
                    is_replay: false,
                },
            });
        }

        // ❷❸ The replay τ later is one emission the whole fleet hears.
        for (gateway, delivery) in self
            .replayer
            .replay_fleet(&recording, self.tau_s, medium, gateways)
            .into_iter()
            .enumerate()
        {
            copies.push(FleetDelivery { gateway, delivery });
        }

        self.outcomes.push(AttackOutcome::Executed);
        copies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_phy::rn2483::{ReceptionOutcome, Rn2483Model};
    use softlora_phy::SpreadingFactor;
    use softlora_sim::medium::FreeSpace;

    fn setup() -> (FrameDelayAttack, RadioMedium, Position) {
        let phy = PhyConfig::uplink(SpreadingFactor::Sf8);
        let device_pos = Position::default();
        let gw_pos = Position::new(400.0, 0.0, 0.0);
        let attack = FrameDelayAttack::new(
            Position::new(3.0, 2.0, 0.0),   // eavesdropper near device
            Position::new(398.0, 1.0, 0.0), // jammer+replayer near gateway
            30.0,
            phy,
            7,
        );
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 868e6 }));
        let _ = device_pos;
        (attack, medium, gw_pos)
    }

    fn uplink(dev_addr: u32) -> AirFrame {
        AirFrame {
            dev_addr,
            bytes: vec![0x5A; 30],
            tx_start_global_s: 100.0,
            airtime_s: 0.12,
            tx_power_dbm: 14.0,
            tx_position: Position::default(),
            tx_bias_hz: -21_500.0,
            tx_phase: 0.2,
            sf: SpreadingFactor::Sf8,
        }
    }

    #[test]
    fn attack_produces_jammed_original_plus_delayed_replay() {
        let (mut attack, medium, gw) = setup();
        let deliveries = attack.intercept(&uplink(1), &medium, &gw);
        assert_eq!(deliveries.len(), 2);
        let original = &deliveries[0];
        let replay = &deliveries[1];

        assert!(!original.is_replay && original.jamming.is_some());
        assert!(replay.is_replay && replay.jamming.is_none());
        // Replay delayed by τ = 30 s.
        let shift = replay.arrival_global_s - original.arrival_global_s;
        assert!((shift - 30.0).abs() < 1e-3, "shift {shift}");
        // Bytes bit-exact.
        assert_eq!(original.bytes, replay.bytes);
        // Replay carries the two-USRP chain's extra bias (§8.1.4).
        let extra = replay.carrier_bias_hz - original.carrier_bias_hz;
        assert!((-1800.0..=-700.0).contains(&extra), "extra bias {extra}");
        assert_eq!(attack.outcomes(), &[AttackOutcome::Executed]);
    }

    #[test]
    fn victim_chip_silently_drops_the_original() {
        let (mut attack, medium, gw) = setup();
        let deliveries = attack.intercept(&uplink(1), &medium, &gw);
        let original = &deliveries[0];
        let model = Rn2483Model::new();
        let outcome = model.receive(
            &PhyConfig::uplink(SpreadingFactor::Sf8),
            original.bytes.len(),
            original.snr_db,
            original.jamming,
        );
        assert_eq!(outcome, ReceptionOutcome::SilentDrop, "jam rel power {:?}", original.jamming);
    }

    #[test]
    fn untargeted_devices_pass_through() {
        let (attack, medium, gw) = setup();
        let mut attack = attack.with_targets(vec![42]);
        let deliveries = attack.intercept(&uplink(1), &medium, &gw);
        assert_eq!(deliveries.len(), 1);
        assert!(!deliveries[0].is_replay);
        assert_eq!(attack.outcomes(), &[AttackOutcome::NotTargeted]);
    }

    #[test]
    fn targeted_device_attacked() {
        let (attack, medium, gw) = setup();
        let mut attack = attack.with_targets(vec![1]);
        let deliveries = attack.intercept(&uplink(1), &medium, &gw);
        assert_eq!(deliveries.len(), 2);
    }

    #[test]
    fn failed_recording_aborts_to_honest_delivery() {
        let (mut attack, medium, gw) = setup();
        // Move the eavesdropper absurdly far from the device.
        attack.eavesdropper.position = Position::new(0.0, 500_000.0, 0.0);
        let deliveries = attack.intercept(&uplink(1), &medium, &gw);
        assert_eq!(deliveries.len(), 1);
        assert!(deliveries[0].jamming.is_none());
        assert_eq!(attack.outcomes(), &[AttackOutcome::RecordingFailed]);
    }

    #[test]
    fn jammer_next_to_eavesdropper_corrupts_recording() {
        let (mut attack, medium, gw) = setup();
        // Jammer right next to the eavesdropper: recording contaminated.
        attack.jammer.position = Position::new(3.5, 2.0, 0.0);
        let deliveries = attack.intercept(&uplink(1), &medium, &gw);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(attack.outcomes(), &[AttackOutcome::RecordingCorrupted]);
    }

    #[test]
    fn fleet_attack_jams_only_the_attacked_gateway() {
        let phy = PhyConfig::uplink(SpreadingFactor::Sf8);
        let gateways = [
            Position::new(400.0, 0.0, 0.0),
            Position::new(0.0, 400.0, 0.0),
            Position::new(-400.0, -50.0, 0.0),
        ];
        let mut attack = FrameDelayAttack::near_gateway(
            Position::new(3.0, 2.0, 0.0),
            &gateways,
            1,
            2.0,
            30.0,
            phy,
            7,
        );
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 868e6 }));
        let copies = attack.intercept_fleet(&uplink(1), &medium, &gateways);
        // One original + one replay copy per gateway.
        assert_eq!(copies.len(), 6);
        let originals: Vec<_> = copies.iter().filter(|c| !c.delivery.is_replay).collect();
        let replays: Vec<_> = copies.iter().filter(|c| c.delivery.is_replay).collect();
        assert_eq!(originals.len(), 3);
        assert_eq!(replays.len(), 3);
        for c in &originals {
            if c.gateway == 1 {
                assert!(c.delivery.jamming.is_some(), "attacked gateway is jammed");
            } else {
                assert!(c.delivery.jamming.is_none(), "gateway {} must stay clean", c.gateway);
            }
        }
        // The replay is heard by every gateway, τ late, strongest next to
        // the replay chain (gateway 1).
        for r in &replays {
            let shift = r.delivery.arrival_global_s - 100.0;
            assert!((shift - 30.0).abs() < 1e-2, "shift {shift}");
        }
        let snr_at = |g: usize| replays.iter().find(|r| r.gateway == g).unwrap().delivery.snr_db;
        assert!(snr_at(1) > snr_at(0) && snr_at(1) > snr_at(2));
        assert_eq!(attack.outcomes(), &[AttackOutcome::Executed]);
    }

    #[test]
    fn fleet_intercept_with_one_gateway_matches_single_link() {
        let (mut a, medium, gw) = setup();
        let single = a.intercept(&uplink(1), &medium, &gw);
        let (mut b, _, _) = setup();
        let fleet = b.intercept_fleet(&uplink(1), &medium, std::slice::from_ref(&gw));
        assert_eq!(single.len(), fleet.len());
        for (s, f) in single.iter().zip(fleet.iter()) {
            assert_eq!(f.gateway, 0);
            assert_eq!(s.arrival_global_s, f.delivery.arrival_global_s);
            assert_eq!(s.carrier_bias_hz, f.delivery.carrier_bias_hz);
            assert_eq!(s.is_replay, f.delivery.is_replay);
            assert_eq!(s.jamming.is_some(), f.delivery.jamming.is_some());
        }
    }

    #[test]
    fn aborted_fleet_attack_falls_back_to_honest_fan_out() {
        let phy = PhyConfig::uplink(SpreadingFactor::Sf8);
        let gateways = [Position::new(400.0, 0.0, 0.0), Position::new(0.0, 400.0, 0.0)];
        let mut attack = FrameDelayAttack::near_gateway(
            Position::new(0.0, 500_000.0, 0.0), // eavesdropper out of range
            &gateways,
            0,
            2.0,
            30.0,
            phy,
            7,
        );
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 868e6 }));
        let copies = attack.intercept_fleet(&uplink(1), &medium, &gateways);
        assert_eq!(copies.len(), 2);
        assert!(copies.iter().all(|c| !c.delivery.is_replay && c.delivery.jamming.is_none()));
        assert_eq!(attack.outcomes(), &[AttackOutcome::RecordingFailed]);
    }

    #[test]
    fn timestamps_shift_by_tau_end_to_end() {
        // Glue check with the LoRaWAN layer: the replayed frame decodes and
        // its reconstructed record timestamps are τ late.
        use softlora_lorawan::{ClassADevice, DeviceConfig, Gateway, RxVerdict};
        let phy = PhyConfig::uplink(SpreadingFactor::Sf8);
        let cfg = DeviceConfig::new(1, phy);
        let mut dev = ClassADevice::new(cfg.clone());
        let mut gw = Gateway::new();
        gw.provision(1, cfg.keys.clone());

        dev.sense(555, 99.0).unwrap();
        let tx = dev.try_transmit(100.0).unwrap();

        let (mut attack, medium, gw_pos) = setup();
        let frame = AirFrame {
            dev_addr: 1,
            bytes: tx.bytes.clone(),
            tx_start_global_s: 100.0,
            airtime_s: tx.airtime_s,
            tx_power_dbm: 14.0,
            tx_position: Position::default(),
            tx_bias_hz: -20e3,
            tx_phase: 0.0,
            sf: SpreadingFactor::Sf8,
        };
        let deliveries = attack.intercept(&frame, &medium, &gw_pos);
        // Original silently dropped (jammed) -> gateway only sees replay.
        let replay = deliveries.iter().find(|d| d.is_replay).unwrap();
        let RxVerdict::Accepted(up) = gw.receive(&replay.bytes, replay.arrival_global_s) else {
            panic!("replay should be accepted")
        };
        let err = up.records[0].global_time_s - 99.0;
        assert!((err - 30.0).abs() < 0.1, "timestamp error {err}, want ~30");
    }
}
