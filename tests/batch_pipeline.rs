//! Batch-versus-sequential equivalence of the staged gateway pipeline.
//!
//! `process_batch` runs the DSP front half (capture synthesis, onset pick,
//! FB estimation) for independent deliveries in parallel, then replays the
//! stateful detector/MAC tail sequentially. These tests pin down the
//! contract: on the same delivery stream, a batch run is **verdict-for-
//! verdict identical** to a sequential `process` loop — across genuine,
//! replayed, jammed, low-SNR and below-floor deliveries — and the AIC
//! onset picker runs exactly once per frame that reaches the SDR path.

use softlora_repro::lorawan::{ClassADevice, DeviceConfig};
use softlora_repro::phy::rn2483::JammingAttempt;
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::sim::Delivery;
use softlora_repro::softlora::observer::{GatewayStats, Stage};
use softlora_repro::softlora::{GatewayBuilder, SoftLoraGateway, SoftLoraVerdict};
use std::cell::RefCell;
use std::rc::Rc;

const DEV_ADDR: u32 = 0x2601_0001;
const DEVICE_BIAS_HZ: f64 = -22_000.0;

fn phy() -> PhyConfig {
    PhyConfig::uplink(SpreadingFactor::Sf7)
}

fn builder(seed: u64) -> GatewayBuilder {
    let dev_cfg = DeviceConfig::new(DEV_ADDR, phy());
    SoftLoraGateway::builder(phy())
        .adc_quantisation(false)
        .seed(seed)
        .provision(dev_cfg.dev_addr, dev_cfg.keys.clone())
}

/// A mixed stream: genuine warm-up, a low-SNR frame, a jammed frame, a
/// below-floor frame, a USRP-biased replay, and a genuine closer.
fn mixed_stream() -> Vec<Delivery> {
    let dev_cfg = DeviceConfig::new(DEV_ADDR, phy());
    let mut dev = ClassADevice::new(dev_cfg);
    let mut stream = Vec::new();
    let mut send =
        |t: f64, bias: f64, snr: f64, delay: f64, replay: bool, jam: Option<JammingAttempt>| {
            dev.sense(777, t - 1.0).unwrap();
            let tx = dev.try_transmit(t).unwrap();
            Delivery {
                bytes: tx.bytes,
                dev_addr: DEV_ADDR,
                arrival_global_s: t + delay + 4e-6,
                snr_db: snr,
                carrier_bias_hz: bias,
                carrier_phase: 0.7,
                sf: SpreadingFactor::Sf7,
                jamming: jam,
                is_replay: replay,
            }
        };

    // Five genuine warm-up frames with per-frame jitter.
    for k in 0..5 {
        let t = 100.0 + 200.0 * k as f64;
        stream.push(send(t, DEVICE_BIAS_HZ + 20.0 * (k as f64 - 2.0), 10.0, 0.0, false, None));
    }
    // A genuine low-SNR frame (matched-filter FB path).
    stream.push(send(1100.0, DEVICE_BIAS_HZ, -7.0, 0.0, false, None));
    // A jammed frame: silent drop, host never sees it.
    stream.push(send(
        1300.0,
        DEVICE_BIAS_HZ,
        10.0,
        0.0,
        false,
        Some(JammingAttempt { onset_s: 0.02, relative_power_db: 10.0 }),
    ));
    // A below-floor frame.
    stream.push(send(1500.0, DEVICE_BIAS_HZ, -15.0, 0.0, false, None));
    // A frame-delay replay with the USRP chain's −600 Hz artefact.
    stream.push(send(1700.0, DEVICE_BIAS_HZ - 600.0, 10.0, 30.0, true, None));
    // A genuine closer (counter state must be unaffected by the replay).
    stream.push(send(1900.0, DEVICE_BIAS_HZ, 10.0, 0.0, false, None));
    stream
}

/// The stream exercises every verdict variant (sanity for the tests
/// below).
#[test]
fn mixed_stream_covers_all_verdicts() {
    let mut gw = builder(2718).build();
    let verdicts: Vec<SoftLoraVerdict> =
        mixed_stream().iter().map(|d| gw.process(d).expect("pipeline")).collect();
    assert!(verdicts.iter().any(|v| v.is_accepted()));
    assert!(verdicts.iter().any(|v| v.is_replay_detected()));
    assert!(verdicts.iter().any(|v| matches!(v, SoftLoraVerdict::NotReceived { .. })));
    // The replay (index 8) is flagged, not merely counter-rejected, and
    // the genuine closer still passes.
    assert!(verdicts[8].is_replay_detected(), "{:?}", verdicts[8]);
    assert!(verdicts[9].is_accepted(), "{:?}", verdicts[9]);
}

#[test]
fn batch_is_verdict_for_verdict_identical_to_sequential() {
    let stream = mixed_stream();

    let mut sequential = builder(2718).build();
    let seq: Vec<SoftLoraVerdict> =
        stream.iter().map(|d| sequential.process(d).expect("pipeline")).collect();

    let mut batched = builder(2718).build();
    let bat = batched.process_batch(&stream).expect("pipeline");

    assert_eq!(seq.len(), bat.len());
    for (k, (s, b)) in seq.iter().zip(bat.iter()).enumerate() {
        assert_eq!(s, b, "verdict {k} diverged");
    }
    // Downstream state converged too: same detector scores, same FB
    // history, same frame count.
    assert_eq!(sequential.detection_stats(), batched.detection_stats());
    assert_eq!(
        sequential.fb_database().tracked_center_hz(DEV_ADDR),
        batched.fb_database().tracked_center_hz(DEV_ADDR)
    );
    assert_eq!(sequential.frames_seen(), batched.frames_seen());
}

#[test]
fn interleaving_batches_and_singles_is_equivalent() {
    let stream = mixed_stream();

    let mut sequential = builder(99).build();
    let seq: Vec<SoftLoraVerdict> =
        stream.iter().map(|d| sequential.process(d).expect("pipeline")).collect();

    // Same stream fed as: batch of 4, two singles, batch of the rest.
    let mut mixed = builder(99).build();
    let mut got = mixed.process_batch(&stream[..4]).expect("pipeline");
    got.push(mixed.process(&stream[4]).expect("pipeline"));
    got.push(mixed.process(&stream[5]).expect("pipeline"));
    got.extend(mixed.process_batch(&stream[6..]).expect("pipeline"));

    assert_eq!(seq, got);
}

#[test]
fn batch_runs_the_aic_picker_exactly_once_per_received_frame() {
    let stream = mixed_stream();
    let stats = Rc::new(RefCell::new(GatewayStats::default()));
    let mut gw = builder(7).observer(Box::new(Rc::clone(&stats))).build();
    let verdicts = gw.process_batch(&stream).expect("pipeline");

    // Two deliveries (jammed, below-floor) never reach the SDR path.
    let reached_sdr =
        verdicts.iter().filter(|v| !matches!(v, SoftLoraVerdict::NotReceived { .. })).count()
            as u64;
    assert_eq!(reached_sdr, stream.len() as u64 - 2);
    // The pipeline's own invocation counter: one pick per received frame.
    assert_eq!(gw.onset_picker_runs(), reached_sdr);
    // The observer saw the same thing, stage by stage.
    let s = stats.borrow();
    assert_eq!(s.stage_runs(Stage::Onset), reached_sdr);
    assert_eq!(s.stage_runs(Stage::Fb), reached_sdr);
    assert_eq!(s.stage_runs(Stage::RadioFrontEnd), stream.len() as u64);
}

#[test]
fn sequential_runs_the_aic_picker_exactly_once_per_received_frame() {
    let stream = mixed_stream();
    let mut gw = builder(7).build();
    let mut reached_sdr = 0u64;
    for d in &stream {
        let v = gw.process(d).expect("pipeline");
        if !matches!(v, SoftLoraVerdict::NotReceived { .. }) {
            reached_sdr += 1;
        }
        assert_eq!(gw.onset_picker_runs(), reached_sdr, "picker re-ran within a frame");
    }
}

#[test]
fn builder_round_trip_matches_manual_config() {
    use softlora_repro::softlora::{OnsetMethod, SoftLoraConfig};
    let mut manual_cfg = SoftLoraConfig::new(phy());
    manual_cfg.adc_quantisation = false;
    manual_cfg.onset_method = OnsetMethod::Aic;
    manual_cfg.warmup_frames = 2;
    manual_cfg.band_floor_hz = 420.0;
    let manual = SoftLoraGateway::new(manual_cfg, 31);

    let built = SoftLoraGateway::builder(phy())
        .adc_quantisation(false)
        .onset_method(OnsetMethod::Aic)
        .warmup_frames(2)
        .band_floor_hz(420.0)
        .seed(31)
        .build();

    assert_eq!(manual.receiver_bias_hz(), built.receiver_bias_hz());
    assert_eq!(manual.config().onset_method, built.config().onset_method);
    assert_eq!(manual.config().band_floor_hz, built.config().band_floor_hz);
    assert_eq!(manual.config().warmup_frames, built.config().warmup_frames);
}
