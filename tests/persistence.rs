//! Persistence acceptance tests: the durable sharded device-state store
//! behind `NetworkServerBuilder::with_persistence`.
//!
//! * **Kill and recover**: a server that dies mid-run and is rebuilt over
//!   the same directory (snapshot + WAL tail replay) continues with
//!   verdicts **bit-for-bit identical** to an uninterrupted run — FB
//!   histories, dedup entries, MAC counters and statistics all survive.
//! * **Online resharding**: reopening with a different `.shards(n)`
//!   migrates the store in place instead of refusing — and the migrated
//!   server's verdicts stay bit-identical (verdicts are shard-count
//!   invariant by construction).
//! * Recovery is still refused when the gateway count no longer matches
//!   the store — the persisted frame indices would be meaningless.

use softlora_repro::attack::FrameDelayAttack;
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::sim::{FleetDeployment, HonestChannel, Position, Scenario, UplinkDeliveries};
use softlora_repro::softlora::{NetworkServer, ServerVerdict};
use softlora_repro::store::{test_dir, StoreError};
use std::path::Path;

const GATEWAYS: usize = 2;
const DEVICES: usize = 3;

fn phy() -> PhyConfig {
    PhyConfig::uplink(SpreadingFactor::Sf7)
}

/// The pinned workload: a 2-gateway fleet, clean traffic until t = 1500 s,
/// then the frame-delay attack (τ = 40 s) against the first meter until
/// t = 2600 s. Fully deterministic.
fn pinned_scenario() -> Scenario {
    let fleet = FleetDeployment::with_gateways(GATEWAYS);
    let gateways = fleet.gateway_positions();
    let mut scenario =
        Scenario::new_fleet(phy(), fleet.medium(), gateways.clone(), Box::new(HonestChannel));
    let positions = fleet.device_positions(DEVICES, 21);
    for (k, pos) in positions.iter().enumerate() {
        scenario.add_device(0x2601_5000 + k as u32, *pos, 300.0, k as u64);
    }
    let target = positions[0];
    let attack = FrameDelayAttack::near_gateway(
        Position::new(target.x + 2.0, target.y + 1.0, target.z),
        &gateways,
        0,
        2.0,
        40.0,
        phy(),
        7,
    )
    .with_targets(vec![0x2601_5000]);
    scenario.schedule_interceptor(1500.0, Box::new(attack));
    scenario
}

fn build_server(scenario: &Scenario, dir: Option<&Path>, shards: usize) -> NetworkServer {
    let mut builder = NetworkServer::builder(phy())
        .adc_quantisation(false)
        .warmup_frames(2)
        .gateway(1)
        .gateway(2)
        .shards(shards)
        // Aggressive persistence tuning so a short test run exercises
        // snapshot installation, compaction and segment rotation.
        .snapshot_every(4)
        .wal_segment_bytes(512);
    for k in 0..scenario.devices() {
        let cfg = scenario.device_config(k).clone();
        builder = builder.provision(cfg.dev_addr, cfg.keys);
    }
    if let Some(dir) = dir {
        builder = builder.with_persistence(dir);
    }
    builder.build()
}

fn pinned_groups() -> Vec<UplinkDeliveries> {
    let mut scenario = pinned_scenario();
    let mut groups = Vec::new();
    scenario.run(2600.0, |u| groups.push(u.clone()));
    assert!(groups.len() >= 15, "too few uplinks: {}", groups.len());
    assert!(
        groups.iter().any(|g| g.copies.iter().any(|c| c.delivery.is_replay)),
        "the attack phase must put replay groups on the stream"
    );
    groups
}

#[test]
fn kill_and_recover_matches_uninterrupted_run() {
    let groups = pinned_groups();
    let mid = groups.len() / 2;

    // The uninterrupted baseline (no persistence, same shard count).
    let mut baseline = build_server(&pinned_scenario(), None, 2);
    let expected = baseline.process_batch(&groups).expect("baseline pipeline");

    // First life: commit the first half, then die without a graceful
    // shutdown (`abandon` skips the WAL Drop flush; the WAL was flushed
    // per batch).
    let dir = test_dir("server-kill-recover");
    let mut first = build_server(&pinned_scenario(), Some(&dir), 2);
    let first_half = first.process_batch(&groups[..mid]).expect("first life pipeline");
    first.abandon();

    // Second life: recovery replays the snapshot + WAL tail. The tail
    // state — statistics, detection scores, FB histories — must be
    // exactly what the first life committed...
    let mut recovered = build_server(&pinned_scenario(), Some(&dir), 2);
    let mut reference = build_server(&pinned_scenario(), None, 2);
    let reference_half = reference.process_batch(&groups[..mid]).expect("reference pipeline");
    assert_eq!(first_half, reference_half, "same config, same verdicts");
    assert_eq!(recovered.stats(), reference.stats(), "recovered statistics");
    assert_eq!(recovered.detection_stats(), reference.detection_stats());
    for g in 0..GATEWAYS {
        assert_eq!(recovered.frames_seen(g), reference.frames_seen(g), "gateway {g} reseated");
    }
    let (rec_db, ref_db) = (recovered.fb_database(), reference.fb_database());
    assert_eq!(rec_db.devices(), ref_db.devices());
    for k in 0..DEVICES as u32 {
        let dev = 0x2601_5000 + k;
        assert_eq!(rec_db.history_len(dev), ref_db.history_len(dev), "device {dev:#x}");
        assert_eq!(rec_db.tracked_center_hz(dev), ref_db.tracked_center_hz(dev));
        assert_eq!(rec_db.band_hz(dev), ref_db.band_hz(dev));
    }

    // ...so the second half comes out bit-for-bit identical to the
    // uninterrupted run — the acceptance criterion.
    let second_half = recovered.process_batch(&groups[mid..]).expect("second life pipeline");
    let rejoined: Vec<ServerVerdict> = first_half.into_iter().chain(second_half).collect();
    assert_eq!(rejoined, expected, "kill-and-recover must not change a single verdict");
    assert_eq!(recovered.stats(), baseline.stats());
    assert_eq!(recovered.detection_stats(), baseline.detection_stats());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_happens_through_snapshots_and_wal_tail() {
    // Force a snapshot right at the kill point: recovery must load it
    // (the WAL tail is empty after compaction) and still line up.
    let groups = pinned_groups();
    let mid = groups.len() / 2;
    let dir = test_dir("server-snapshot-recover");
    let mut first = build_server(&pinned_scenario(), Some(&dir), 2);
    let first_half = first.process_batch(&groups[..mid]).expect("first life");
    first.snapshot_now().expect("snapshot");
    drop(first);

    let mut baseline = build_server(&pinned_scenario(), None, 2);
    let expected = baseline.process_batch(&groups).expect("baseline");

    let mut recovered = build_server(&pinned_scenario(), Some(&dir), 2);
    let second_half = recovered.process_batch(&groups[mid..]).expect("second life");
    let rejoined: Vec<ServerVerdict> = first_half.into_iter().chain(second_half).collect();
    assert_eq!(rejoined, expected);
    assert_eq!(recovered.stats(), baseline.stats());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reopen_without_explicit_shards_adopts_the_pinned_count() {
    // A persisted server built without `.shards(n)` must reopen its own
    // store even when `available_parallelism()` changes between runs:
    // the on-disk pinned count wins over the machine default.
    let groups = pinned_groups();
    let dir = test_dir("server-shard-default");
    let mut first = build_server(&pinned_scenario(), Some(&dir), 5);
    first.process_batch(&groups[..4]).expect("seed the store");
    drop(first);

    let mut builder = NetworkServer::builder(phy())
        .adc_quantisation(false)
        .warmup_frames(2)
        .gateway(1)
        .gateway(2)
        .with_persistence(&dir); // note: no .shards(n)
    let scenario = pinned_scenario();
    for k in 0..scenario.devices() {
        let cfg = scenario.device_config(k).clone();
        builder = builder.provision(cfg.dev_addr, cfg.keys);
    }
    let reopened = builder.try_build().expect("pinned shard count adopted");
    assert_eq!(reopened.shard_count(), 5);
    assert_eq!(reopened.stats().uplinks, 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reshard_migrates_and_keeps_verdicts_identical() {
    // Reopening with a different shard count used to be refused; it now
    // migrates the store in place. The migrated server must continue
    // with verdicts bit-identical to an uninterrupted run — the shard
    // layout is an implementation detail of the tail, never visible in
    // the verdict stream.
    let groups = pinned_groups();
    let mid = groups.len() / 2;

    let mut baseline = build_server(&pinned_scenario(), None, 2);
    let expected = baseline.process_batch(&groups).expect("baseline pipeline");

    let dir = test_dir("server-reshard");
    let mut first = build_server(&pinned_scenario(), Some(&dir), 2);
    let first_half = first.process_batch(&groups[..mid]).expect("first life pipeline");
    drop(first);

    // Second life asks for 3 shards over a 2-shard store: migrate.
    let mut resharded = build_server(&pinned_scenario(), Some(&dir), 3);
    assert_eq!(resharded.shard_count(), 3);
    assert_eq!(resharded.stats(), baseline_stats_at(&groups[..mid]));
    let second_half = resharded.process_batch(&groups[mid..]).expect("resharded pipeline");
    let rejoined: Vec<ServerVerdict> = first_half.into_iter().chain(second_half).collect();
    assert_eq!(rejoined, expected, "resharding must not change a single verdict");
    assert_eq!(resharded.stats(), baseline.stats());
    assert_eq!(resharded.detection_stats(), baseline.detection_stats());
    drop(resharded);

    // And the migrated store reopens cleanly at the new count — the
    // migration rewrote the pinned shard count, not just the session.
    let reopened = build_server(&pinned_scenario(), Some(&dir), 3);
    assert_eq!(reopened.shard_count(), 3);
    assert_eq!(reopened.stats(), baseline.stats());
    std::fs::remove_dir_all(&dir).ok();
}

/// The server statistics an uninterrupted run accumulates over `groups`
/// — the reference point for a migrated store's recovered state.
fn baseline_stats_at(groups: &[UplinkDeliveries]) -> softlora_repro::softlora::ServerStats {
    let mut server = build_server(&pinned_scenario(), None, 2);
    server.process_batch(groups).expect("reference pipeline");
    server.stats()
}

#[test]
fn mismatched_gateway_count_is_refused() {
    let groups = pinned_groups();
    let dir = test_dir("server-config-guard");
    let mut first = build_server(&pinned_scenario(), Some(&dir), 2);
    first.process_batch(&groups[..4]).expect("seed the store");
    drop(first);

    // Gateway count changes invalidate the persisted frame indices:
    // refused.
    let wrong_gateways =
        NetworkServer::builder(phy()).gateway(1).shards(2).with_persistence(&dir).try_build();
    assert!(matches!(wrong_gateways, Err(StoreError::Config { .. })), "{wrong_gateways:?}");
    std::fs::remove_dir_all(&dir).ok();
}
