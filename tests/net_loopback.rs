//! Network front-door acceptance test: a 100-gateway fleet replayed over
//! loopback UDP produces **bit-for-bit** the verdicts and statistics of
//! handing the same group stream to `NetworkServer::process_batch`
//! in-process — while the listener absorbs malformed, duplicate,
//! out-of-order and stale wire traffic without panicking, and surfaces
//! the rejection counters over its ctrl endpoint.

use softlora_repro::attack::FrameDelayAttack;
use softlora_repro::net::listener::{NetServer, NetServerConfig};
use softlora_repro::net::loadgen::{replay_fleet, LoadgenConfig};
use softlora_repro::net::protocol::{
    decode_frame, encode_frame, Frame, PushData, WireDelivery, WireUplink,
};
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::sim::{FleetDeployment, HonestChannel, Position, Scenario, UplinkDeliveries};
use softlora_repro::softlora::NetworkServer;
use std::net::UdpSocket;
use std::time::Duration;

/// Fleet width ≥ 100 per the acceptance bar. Only `LOUD` sites run the
/// full DSP front end — the rest get a +60 dB noise floor so their
/// copies fail the cheap radio gate, keeping the test fast while the
/// wire path still carries every site's copy.
const GATEWAYS: usize = 100;
const LOUD: usize = 3;
const DEVICES: usize = 3;
const SHARDS: usize = 4;

fn phy() -> PhyConfig {
    PhyConfig::uplink(SpreadingFactor::Sf7)
}

/// The pinned workload: clean traffic until t = 1500 s, then the
/// frame-delay attack (τ = 40 s) against meter 0 until t = 2600 s.
fn pinned_scenario() -> Scenario {
    let floors: Vec<f64> = (0..GATEWAYS).map(|g| if g < LOUD { -117.0 } else { -57.0 }).collect();
    let fleet = FleetDeployment::with_gateways(GATEWAYS).with_site_noise_floors_dbm(floors);
    let gateways = fleet.gateway_positions();
    let mut scenario = Scenario::new_fleet_sites(
        phy(),
        fleet.medium(),
        fleet.gateway_sites(),
        Box::new(HonestChannel),
    );
    let positions = fleet.device_positions(DEVICES, 21);
    for (k, pos) in positions.iter().enumerate() {
        scenario.add_device(0x2601_5000 + k as u32, *pos, 300.0, k as u64);
    }
    let target = positions[0];
    let attack = FrameDelayAttack::near_gateway(
        Position::new(target.x + 2.0, target.y + 1.0, target.z),
        &gateways,
        0,
        2.0,
        40.0,
        phy(),
        7,
    )
    .with_targets(vec![0x2601_5000]);
    scenario.schedule_interceptor(1500.0, Box::new(attack));
    scenario
}

fn build_server(scenario: &Scenario) -> NetworkServer {
    let mut builder =
        NetworkServer::builder(phy()).adc_quantisation(false).warmup_frames(2).shards(SHARDS);
    for g in 0..GATEWAYS {
        builder = builder.gateway(g as u64 + 1);
    }
    for k in 0..scenario.devices() {
        let cfg = scenario.device_config(k).clone();
        builder = builder.provision(cfg.dev_addr, cfg.keys);
    }
    builder.build()
}

/// A hand-crafted `PUSH_DATA` carrying one copy of `uplink` from
/// `gateway` with an arbitrary datagram `seq` — the raw material for
/// duplicate/out-of-order/stale injection.
fn crafted_push(gateway: u32, seq: u64, group: &UplinkDeliveries) -> Vec<u8> {
    let copy = &group.copies[0];
    encode_frame(&Frame::PushData(PushData {
        gateway,
        seq,
        watermark: u64::MAX,
        uplinks: vec![WireUplink {
            uplink: group.uplink,
            dev_addr: group.dev_addr,
            tx_start_global_s: group.tx_start_global_s,
            airtime_s: group.airtime_s,
            copies_total: group.copies.len() as u16,
            copy_index: 0,
            delivery: Some(WireDelivery::from_delivery(&copy.delivery)),
        }],
    }))
}

/// Sends one crafted datagram and returns the commit watermark its ack
/// carries — acks are emitted by the poll thread *before* the off-thread
/// commit worker necessarily catches up, so the watermark is a lower
/// bound on commit progress, never a claim about the datagram itself.
fn send_and_ack(socket: &UdpSocket, datagram: &[u8]) -> u64 {
    socket.send(datagram).expect("send crafted datagram");
    let mut buf = [0u8; 256];
    let len = socket.recv(&mut buf).expect("crafted datagram not acked");
    match decode_frame(&buf[..len]).expect("ack must decode") {
        Frame::PushAck { committed, .. } | Frame::PullAck { committed, .. } => committed,
        other => panic!("expected an ack frame, got {other:?}"),
    }
}

#[test]
fn loopback_fleet_matches_batch_bit_for_bit() {
    // The canonical group stream, generated once.
    let mut scenario = pinned_scenario();
    let mut groups: Vec<UplinkDeliveries> = Vec::new();
    scenario.run(2600.0, |u| groups.push(u.clone()));
    // The ring geometry puts a few honest copies right at the SF7 demod
    // floor, where the capture passes the radio gate but decodes to an
    // infrastructure error on *both* paths. Drop that fragile band (as a
    // collision would) — clearly-gated and clearly-decodable copies stay,
    // so the fleet-wide wire fan-out is preserved.
    for group in &mut groups {
        group.copies.retain(|c| c.delivery.snr_db < -9.5 || c.delivery.snr_db > -4.5);
    }
    assert!(groups.len() >= 15, "too few uplinks: {}", groups.len());
    assert!(
        groups.iter().any(|g| g.copies.iter().any(|c| c.delivery.is_replay)),
        "the attack phase must put replay groups on the stream"
    );
    let wide_group = groups.iter().map(|g| g.copies.len()).max().unwrap();
    assert!(wide_group >= GATEWAYS / 2, "fleet copies must fan out: {wide_group}");

    // Reference: the in-process batch path.
    let mut batch_server = build_server(&pinned_scenario());
    let batch_verdicts = batch_server.process_batch(&groups).expect("batch pipeline");
    let batch_stats = batch_server.stats();
    let batch_detection = batch_server.detection_stats();

    // Wire path: listener on loopback, 100 concurrent gateway sockets.
    let net = NetServer::bind(build_server(&pinned_scenario()), NetServerConfig::default())
        .expect("bind listener");
    let data_addr = net.data_addr().expect("data addr");
    let ctrl_addr = net.ctrl_addr().expect("ctrl addr");
    let listener = std::thread::spawn(move || net.run());

    let inject = UdpSocket::bind("127.0.0.1:0").expect("inject socket");
    inject.connect(data_addr).expect("connect inject socket");
    inject.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");

    // Malformed traffic before any legitimate datagram: pure garbage,
    // a truncated stub, a corrupted CRC, a wrong version byte. None of
    // it is acked; none of it must disturb the run.
    inject.send(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02, 0x03]).expect("garbage");
    inject.send(&[0x53]).expect("truncated");
    let mut corrupted = crafted_push(0, 1 << 32, &groups[0]);
    let last = corrupted.len() - 1;
    corrupted[last] ^= 0xFF;
    inject.send(&corrupted).expect("bad crc");
    let mut bad_version = crafted_push(0, 1 << 32, &groups[0]);
    bad_version[2] = 99;
    // Recompute the CRC so only the version check can reject it.
    let body_len = bad_version.len() - 4;
    let crc = softlora_repro::store::crc32(&bad_version[..body_len]).to_le_bytes();
    bad_version[body_len..].copy_from_slice(&crc);
    inject.send(&bad_version).expect("bad version");

    // The legitimate fleet replay.
    let report = replay_fleet(&groups, GATEWAYS, data_addr, &LoadgenConfig::default())
        .expect("fleet replay");
    assert_eq!(report.uplinks, groups.len() as u64);

    // Give the poll loop a moment to commit everything (all watermarks
    // are at u64::MAX now), then inject duplicate / out-of-order / stale
    // traffic. All of it targets an already-committed uplink, so the
    // verdict stream cannot be disturbed — the listener must count it
    // and carry on.
    std::thread::sleep(Duration::from_millis(200));
    // A fresh seq well above anything the replay used, but within the
    // listener's plausibility bound for this gateway.
    let stale_seq = 1 << 19;
    let stale = crafted_push(0, stale_seq, &groups[0]);
    let w1 = send_and_ack(&inject, &stale); // stale copy, fresh datagram
    let w2 = send_and_ack(&inject, &stale); // exact duplicate datagram
    let out_of_order = crafted_push(0, stale_seq - 1, &groups[0]);
    let w3 = send_and_ack(&inject, &out_of_order); // lower seq than already seen
                                                   // The ack watermark never regresses, even while the poll thread is
                                                   // being fed garbage the commit worker will never see.
    assert!(w2 >= w1 && w3 >= w2, "commit watermark regressed: {w1} {w2} {w3}");

    // Forged far-future seqs (which would pin the duplicate filter's
    // high-water mark and evict every real seq) are dropped outright:
    // no ack, no state change.
    inject.set_read_timeout(Some(Duration::from_millis(300))).expect("short timeout");
    for forged_seq in [1 << 33, u64::MAX] {
        let forged = crafted_push(0, forged_seq, &groups[0]);
        inject.send(&forged).expect("send forged seq");
        let mut drop_buf = [0u8; 256];
        let err = inject.recv(&mut drop_buf).expect_err("forged far-future seq must not be acked");
        assert!(
            matches!(err.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
            "unexpected recv error: {err:?}"
        );
    }
    inject.set_read_timeout(Some(Duration::from_secs(5))).expect("restore timeout");
    // The gateway's dedup state survived: the stale datagram still
    // registers as a duplicate.
    let w4 = send_and_ack(&inject, &stale);
    assert!(w4 >= w3, "commit watermark regressed after forged seqs: {w3} {w4}");

    // Counters over the ctrl endpoint, live.
    let ctrl = UdpSocket::bind("127.0.0.1:0").expect("ctrl socket");
    ctrl.connect(ctrl_addr).expect("connect ctrl");
    ctrl.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    ctrl.send(&encode_frame(&Frame::StatsReq { token: 77 })).expect("stats req");
    let mut buf = [0u8; 8192];
    let len = ctrl.recv(&mut buf).expect("stats resp");
    let Frame::StatsResp { token, stats } = decode_frame(&buf[..len]).expect("stats frame") else {
        panic!("expected STATS_RESP");
    };
    assert_eq!(token, 77);
    let c = stats.counters;
    // The CRC check runs before anything else is trusted, so both the
    // flipped-CRC datagram and the random garbage land on that counter.
    assert!(c.rejected_crc >= 2, "corrupted CRC + garbage must be counted: {c:?}");
    assert!(c.rejected_version >= 1, "bad version must be counted: {c:?}");
    assert!(c.rejected_truncated >= 1, "truncated stub must be counted: {c:?}");
    assert!(c.duplicate_datagrams >= 1, "duplicate datagram must be counted: {c:?}");
    assert!(c.out_of_order_datagrams >= 1, "out-of-order datagram must be counted: {c:?}");
    assert!(c.stale_copies >= 2, "stale copies must be counted: {c:?}");
    assert_eq!(c.incomplete_groups, 0, "no group may commit incomplete: {c:?}");
    assert_eq!(c.groups_committed, groups.len() as u64, "every group commits: {c:?}");

    // Orderly shutdown; the ack carries the final commit watermark (the
    // queue is drained before it is sent, so every uplink is committed),
    // and the report carries the wire path's verdicts.
    ctrl.send(&encode_frame(&Frame::Shutdown { token: 78 })).expect("shutdown");
    let len = ctrl.recv(&mut buf).expect("shutdown ack");
    let Frame::PullAck { committed, .. } = decode_frame(&buf[..len]).expect("shutdown ack frame")
    else {
        panic!("expected PULL_ACK shutdown ack");
    };
    assert_eq!(
        committed,
        groups.last().unwrap().uplink + 1,
        "shutdown must drain the commit queue first"
    );
    let run = listener.join().expect("listener thread").expect("listener run");

    // The acceptance bar: bit-for-bit parity with the in-process path.
    assert_eq!(run.verdicts.len(), batch_verdicts.len(), "verdict count");
    for (k, ((uplink, wire), batch)) in run.verdicts.iter().zip(batch_verdicts.iter()).enumerate() {
        assert_eq!(*uplink, groups[k].uplink, "commit order at position {k}");
        assert_eq!(wire, batch, "verdict for uplink {uplink} diverged");
    }
    assert_eq!(run.server.stats(), batch_stats, "server statistics diverged");
    assert_eq!(run.server.detection_stats(), batch_detection, "detection statistics diverged");
}
