//! End-to-end multi-gateway fleet tests: the acceptance criteria of the
//! fleet-engine refactor.
//!
//! * a fleet scenario produces per-gateway deliveries with distinct SNRs
//!   and the network server dedups every uplink group to **one** verdict;
//! * the frame-delay attack is detected at a gateway the attacker never
//!   jammed, via cross-gateway arrival consistency — and the uplink is
//!   *still delivered correctly* from a clean gateway's copy;
//! * a one-gateway `NetworkServer` reproduces a standalone
//!   `SoftLoraGateway`'s single-link verdicts bit for bit.

use softlora_repro::attack::FrameDelayAttack;
use softlora_repro::lorawan::{ClassADevice, DeviceConfig};
use softlora_repro::phy::oscillator::Oscillator;
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::sim::{
    AirFrame, FleetDeployment, HonestChannel, Interceptor, Position, Scenario, UplinkDeliveries,
};
use softlora_repro::softlora::network_server::{ReplaySignal, ServerObserver};
use softlora_repro::softlora::{NetworkServer, ServerStats, ServerVerdict, SoftLoraGateway};
use std::sync::{Arc, Mutex};

const DEV_ADDR: u32 = 0x2601_0042;

fn phy() -> PhyConfig {
    PhyConfig::uplink(SpreadingFactor::Sf8)
}

/// A device transmission as an air frame at `device_pos`.
fn air_frame(
    dev: &mut ClassADevice,
    osc: &mut Oscillator,
    device_pos: Position,
    t: f64,
    value: u16,
) -> AirFrame {
    dev.sense(value, t - 1.0).expect("sense");
    let tx = dev.try_transmit(t).expect("transmit");
    AirFrame {
        dev_addr: dev.dev_addr(),
        bytes: tx.bytes,
        tx_start_global_s: t,
        airtime_s: tx.airtime_s,
        tx_power_dbm: 14.0,
        tx_position: device_pos,
        tx_bias_hz: osc.frame_bias_hz(),
        tx_phase: 0.3,
        sf: phy().sf,
    }
}

fn group(
    uplink: u64,
    frame: &AirFrame,
    copies: Vec<softlora_repro::sim::FleetDelivery>,
) -> UplinkDeliveries {
    UplinkDeliveries {
        uplink,
        dev_addr: frame.dev_addr,
        tx_start_global_s: frame.tx_start_global_s,
        airtime_s: frame.airtime_s,
        copies,
    }
}

#[test]
fn fleet_attack_detected_at_non_attacked_gateway() {
    let fleet = FleetDeployment::with_gateways(3);
    let gateways = fleet.gateway_positions();
    let medium = fleet.medium();
    let device_pos = fleet.device_positions(1, 3)[0];

    let dev_cfg = DeviceConfig::new(DEV_ADDR, phy());
    let mut dev = ClassADevice::new(dev_cfg.clone());
    let mut osc = Oscillator::sample_end_device(869.75e6, 11);

    let mut server = NetworkServer::builder(phy())
        .adc_quantisation(false)
        .warmup_frames(4)
        .gateway(7)
        .gateway(8)
        .gateway(9)
        .provision(dev_cfg.dev_addr, dev_cfg.keys.clone())
        .build();

    // Clean warm-up through the honest fleet channel.
    let mut honest = HonestChannel;
    let mut t = 100.0;
    for k in 0..6u16 {
        let frame = air_frame(&mut dev, &mut osc, device_pos, t, 500 + k);
        let copies = honest.intercept_fleet(&frame, &medium, &gateways);
        // Per-gateway copies with distinct SNRs (independent path loss).
        assert_eq!(copies.len(), 3);
        assert!(copies[0].delivery.snr_db != copies[1].delivery.snr_db);
        assert!(copies[1].delivery.snr_db != copies[2].delivery.snr_db);
        let v = server.process_uplink(&group(k as u64, &frame, copies)).expect("pipeline");
        assert!(v.is_accepted(), "warm-up {k}: {v:?}");
        t += 200.0;
    }

    // The attacker parks the jammer/replayer chain next to gateway 0 and
    // replays with τ = 45 s.
    let eaves_pos = Position::new(device_pos.x + 2.0, device_pos.y + 1.0, device_pos.z);
    let mut attack = FrameDelayAttack::near_gateway(eaves_pos, &gateways, 0, 2.0, 45.0, phy(), 5);

    let mut attacked_accepts = 0;
    let mut cross_gateway_flags_at_clean_gateways = 0;
    for k in 0..4u16 {
        let frame = air_frame(&mut dev, &mut osc, device_pos, t, 600 + k);
        let true_time = t - 1.0;
        let copies = attack.intercept_fleet(&frame, &medium, &gateways);
        let v = server.process_uplink(&group(100 + k as u64, &frame, copies)).expect("pipeline");

        // One verdict per uplink: the original is accepted from a clean
        // gateway's copy even though gateway 0 was jammed...
        assert!(v.is_accepted(), "attacked uplink {k}: {v:?}");
        let chosen = v.gateway.expect("accepted via some gateway");
        assert_ne!(chosen, 0, "verdict must come from a non-attacked gateway");

        // ...and the τ-late replay copies raised cross-gateway arrival
        // evidence, including at gateways the attacker never jammed.
        let late_gateways: Vec<usize> = v
            .signals
            .iter()
            .filter_map(|s| match s {
                ReplaySignal::ArrivalInconsistent { gateway, gap_s, .. } => {
                    assert!((gap_s - 45.0).abs() < 0.1, "gap {gap_s}");
                    Some(*gateway)
                }
                _ => None,
            })
            .collect();
        assert!(!late_gateways.is_empty(), "no replay evidence: {v:?}");
        cross_gateway_flags_at_clean_gateways += late_gateways.iter().filter(|g| **g != 0).count();

        // The accepted copy timestamps the record correctly — the fleet
        // defeats the delay outright instead of merely dropping frames.
        if let softlora_repro::softlora::SoftLoraVerdict::Accepted { uplink, .. } = &v.verdict {
            let err = (uplink.records[0].global_time_s - true_time).abs();
            assert!(err < 5e-3, "timestamp error {err}");
            attacked_accepts += 1;
        }
        t += 200.0;
    }
    assert_eq!(attacked_accepts, 4);
    assert!(
        cross_gateway_flags_at_clean_gateways >= 4,
        "flags at clean gateways: {cross_gateway_flags_at_clean_gateways}"
    );
    let stats = server.stats();
    assert_eq!(stats.accepted, 10);
    assert!(stats.cross_gateway_replays_flagged >= 4, "{stats:?}");
    // Replay copies were scored as true positives, none of the clean
    // traffic was flagged.
    let det = server.detection_stats();
    assert!(det.true_positives >= 4, "{det:?}");
    assert_eq!(det.false_positives, 0, "{det:?}");
}

#[test]
fn one_gateway_server_matches_standalone_gateway_bit_for_bit() {
    // The same delivery stream — honest warm-up, then frame-delay attack
    // with the original jammed — through a standalone SoftLoraGateway and
    // a one-gateway NetworkServer built from the same seed.
    let seed = 99;
    let dev_cfg = DeviceConfig::new(DEV_ADDR, phy());
    let mut dev = ClassADevice::new(dev_cfg.clone());
    let mut osc = Oscillator::sample_end_device(869.75e6, 11);

    let gw_pos = Position::new(400.0, 0.0, 10.0);
    let device_pos = Position::new(0.0, 0.0, 1.5);
    let medium = FleetDeployment::default().medium();

    let mut gateway = SoftLoraGateway::builder(phy())
        .adc_quantisation(false)
        .seed(seed)
        .provision(dev_cfg.dev_addr, dev_cfg.keys.clone())
        .build();
    let mut server = NetworkServer::builder(phy())
        .adc_quantisation(false)
        .gateway(seed)
        .provision(dev_cfg.dev_addr, dev_cfg.keys.clone())
        .build();
    assert_eq!(gateway.receiver_bias_hz(), server.receiver_bias_hz(0));

    // Build the stream once: 6 honest uplinks, then 3 attacked ones.
    let mut honest = HonestChannel;
    let mut attack = FrameDelayAttack::new(
        Position::new(2.0, 1.0, 1.5),
        Position::new(398.0, 1.0, 10.0),
        30.0,
        phy(),
        5,
    );
    let mut stream = Vec::new();
    let mut t = 100.0;
    for k in 0..9u16 {
        let frame = air_frame(&mut dev, &mut osc, device_pos, t, k);
        let interceptor: &mut dyn Interceptor = if k < 6 { &mut honest } else { &mut attack };
        stream.extend(interceptor.intercept(&frame, &medium, &gw_pos));
        t += 200.0;
    }
    assert!(stream.iter().any(|d| d.is_replay), "attack phase must produce replays");

    for (k, delivery) in stream.iter().enumerate() {
        let expected = gateway.process(delivery).expect("gateway pipeline");
        let got = server.process_delivery(0, delivery).expect("server pipeline");
        // Bit-for-bit: the enum fields (timestamps, FB estimates, bands,
        // deviations) compare by exact equality.
        assert_eq!(got.verdict, expected, "delivery {k}");
    }
    // The shared database saw exactly what the standalone gateway's did.
    assert_eq!(
        server.fb_database().history_len(DEV_ADDR),
        gateway.fb_database().history_len(DEV_ADDR)
    );
    assert_eq!(
        server.fb_database().tracked_center_hz(DEV_ADDR),
        gateway.fb_database().tracked_center_hz(DEV_ADDR)
    );
    assert_eq!(server.detection_stats(), gateway.detection_stats());
}

/// Observer collecting the full notification stream, so the equivalence
/// test pins the observer surface too, not just returned verdicts.
#[derive(Default)]
struct Collect {
    verdicts: Vec<(u64, ServerVerdict)>,
    stats: Vec<ServerStats>,
}

impl ServerObserver for Collect {
    fn on_verdict(&mut self, uplink: u64, verdict: &ServerVerdict) {
        self.verdicts.push((uplink, verdict.clone()));
    }
    fn on_stats(&mut self, stats: ServerStats) {
        self.stats.push(stats);
    }
}

#[test]
fn sharded_tail_matches_sequential_tail_on_attacked_fleet() {
    // An attacked multi-device fleet scenario through a 1-shard
    // (sequential) tail and a 4-shard tail: returned verdicts, the full
    // observer stream (order *and* running statistics), detection scores
    // and FB state must be bit-for-bit equal — per-device tail state
    // never couples devices, so sharding cannot change a verdict.
    let fleet = FleetDeployment::with_gateways(2);
    let gateways = fleet.gateway_positions();
    let scenario = || {
        let mut s =
            Scenario::new_fleet(phy(), fleet.medium(), gateways.clone(), Box::new(HonestChannel));
        let positions = fleet.device_positions(4, 33);
        for (k, pos) in positions.iter().enumerate() {
            s.add_device(0x2601_7000 + k as u32, *pos, 300.0, 10 + k as u64);
        }
        let target = positions[1];
        let attack = FrameDelayAttack::near_gateway(
            Position::new(target.x + 2.0, target.y + 1.0, target.z),
            &gateways,
            0,
            2.0,
            35.0,
            phy(),
            3,
        )
        .with_targets(vec![0x2601_7001]);
        s.schedule_interceptor(1200.0, Box::new(attack));
        s
    };
    let mut groups: Vec<UplinkDeliveries> = Vec::new();
    scenario().run(2400.0, |u| groups.push(u.clone()));
    assert!(groups.len() >= 12, "too few uplinks: {}", groups.len());
    assert!(
        groups.iter().any(|g| g.copies.iter().any(|c| c.delivery.is_replay)),
        "attack phase must produce replays"
    );

    let build = |shards: usize, observer: Arc<Mutex<Collect>>| {
        let s = scenario();
        let mut b = NetworkServer::builder(phy())
            .adc_quantisation(false)
            .warmup_frames(2)
            .gateway(5)
            .gateway(6)
            .shards(shards)
            .observer(Box::new(observer));
        for k in 0..s.devices() {
            let cfg = s.device_config(k).clone();
            b = b.provision(cfg.dev_addr, cfg.keys);
        }
        b.build()
    };
    let seq_obs = Arc::new(Mutex::new(Collect::default()));
    let sharded_obs = Arc::new(Mutex::new(Collect::default()));
    let mut sequential = build(1, Arc::clone(&seq_obs));
    let mut sharded = build(4, Arc::clone(&sharded_obs));
    assert_eq!(sequential.shard_count(), 1);
    assert_eq!(sharded.shard_count(), 4);

    let seq_verdicts = sequential.process_batch(&groups).expect("sequential tail");
    let sharded_verdicts = sharded.process_batch(&groups).expect("sharded tail");
    assert_eq!(seq_verdicts, sharded_verdicts, "verdicts diverge across shard counts");
    assert_eq!(sequential.stats(), sharded.stats());
    assert_eq!(sequential.detection_stats(), sharded.detection_stats());
    // The workload exercised the defence.
    assert!(sequential.stats().accepted > 5, "{:?}", sequential.stats());
    assert!(
        sequential.stats().fb_replays_flagged + sequential.stats().cross_gateway_replays_flagged
            > 0,
        "{:?}",
        sequential.stats()
    );
    // The observer streams — verdict order and every running-statistics
    // snapshot — are identical: the sharded batch tail replays
    // notifications in uplink order.
    let seq_seen = seq_obs.lock().unwrap();
    let sharded_seen = sharded_obs.lock().unwrap();
    assert_eq!(seq_seen.verdicts, sharded_seen.verdicts);
    assert_eq!(seq_seen.stats, sharded_seen.stats);
    // Shared per-device FB state matches device by device.
    let (db1, db4) = (sequential.fb_database(), sharded.fb_database());
    assert_eq!(db1.devices(), db4.devices());
    for k in 0..4u32 {
        let dev = 0x2601_7000 + k;
        assert_eq!(db1.history_len(dev), db4.history_len(dev), "device {dev:#x}");
        assert_eq!(db1.tracked_center_hz(dev), db4.tracked_center_hz(dev));
    }
}

#[test]
fn scenario_fleet_feeds_server_end_to_end() {
    // A small honest fleet scenario: groups flow from the discrete-event
    // engine straight into the network server, one verdict per uplink.
    let fleet = FleetDeployment::with_gateways(2);
    let gateways = fleet.gateway_positions();
    let mut scenario =
        Scenario::new_fleet(phy(), fleet.medium(), gateways.clone(), Box::new(HonestChannel));
    let positions = fleet.device_positions(3, 21);
    for (k, pos) in positions.iter().enumerate() {
        scenario.add_device(0x2601_5000 + k as u32, *pos, 400.0, k as u64);
    }
    let mut builder = NetworkServer::builder(phy()).adc_quantisation(false).gateway(1).gateway(2);
    for k in 0..scenario.devices() {
        let cfg = scenario.device_config(k).clone();
        builder = builder.provision(cfg.dev_addr, cfg.keys);
    }
    let mut server = builder.build();

    let mut groups = Vec::new();
    scenario.run(1300.0, |u| groups.push(u.clone()));
    assert!(groups.len() >= 6, "too few uplinks: {}", groups.len());
    let verdicts = server.process_batch(&groups).expect("server pipeline");
    assert_eq!(verdicts.len(), groups.len(), "one verdict per uplink");
    for (g, v) in groups.iter().zip(&verdicts) {
        assert_eq!(v.copies_heard, 2, "both gateways hear uplink {}", g.uplink);
        assert_eq!(v.duplicates_suppressed, 1);
        assert!(v.is_accepted(), "{v:?}");
        assert!(!v.is_replay_flagged());
    }
    // Shared per-device state, bounded dedup bookkeeping.
    assert_eq!(server.fb_database().devices(), 3);
    assert_eq!(server.stats().accepted, groups.len() as u64);
}
