//! Property-based tests (proptest) on the workspace's core invariants.

use proptest::prelude::*;
use softlora_repro::crypto::lorawan::{crypt_frm_payload, verify_mic, Direction};
use softlora_repro::crypto::{Aes128, Cmac};
use softlora_repro::dsp::fft::{fft_forward, ifft_in_place, next_pow2};
use softlora_repro::dsp::unwrap::{unwrap_phase, wrap_to_pi};
use softlora_repro::dsp::Complex;
use softlora_repro::lorawan::elapsed::{ElapsedCodec, SensorRecord};
use softlora_repro::lorawan::{DataFrame, DeviceKeys, FrameType};
use softlora_repro::phy::coding::{
    deinterleave_block, gray_decode, gray_encode, hamming_decode, hamming_encode, interleave_block,
    Whitener,
};
use softlora_repro::phy::CodingRate;
use softlora_repro::sim::queue::EventQueue;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_round_trip_is_identity(values in prop::collection::vec(-100.0f64..100.0, 2..200)) {
        let signal: Vec<Complex> = values
            .chunks(2)
            .map(|c| Complex::new(c[0], c.get(1).copied().unwrap_or(0.0)))
            .collect();
        let mut spec = fft_forward(&signal);
        ifft_in_place(&mut spec);
        for (a, b) in signal.iter().zip(spec.iter()) {
            prop_assert!((*a - *b).norm() < 1e-8);
        }
    }

    #[test]
    fn fft_preserves_energy(values in prop::collection::vec(-10.0f64..10.0, 4..128)) {
        let signal: Vec<Complex> = values.iter().map(|&v| Complex::new(v, -v * 0.5)).collect();
        let n = next_pow2(signal.len()) as f64;
        let time: f64 = signal.iter().map(|z| z.norm_sqr()).sum();
        let freq: f64 = fft_forward(&signal).iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
        prop_assert!((time - freq).abs() <= 1e-9 * time.max(1.0));
    }

    #[test]
    fn phase_unwrap_recovers_any_smooth_ramp(slope in -2.0f64..2.0, n in 16usize..400) {
        let truth: Vec<f64> = (0..n).map(|k| slope * k as f64).collect();
        let wrapped: Vec<f64> = truth.iter().map(|&p| wrap_to_pi(p)).collect();
        let unwrapped = unwrap_phase(&wrapped);
        // Slopes beyond ±π per sample alias; restrict the check.
        prop_assume!(slope.abs() < 3.0);
        for (u, t) in unwrapped.iter().zip(truth.iter()) {
            prop_assert!((u - t).abs() < 1e-6);
        }
    }

    #[test]
    fn aes_decrypt_inverts_encrypt(key in prop::array::uniform16(0u8..), block in prop::array::uniform16(0u8..)) {
        let aes = Aes128::new(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }

    #[test]
    fn cmac_verifies_own_tags(key in prop::array::uniform16(0u8..), msg in prop::collection::vec(any::<u8>(), 0..100)) {
        let cmac = Cmac::new(&key);
        let tag = cmac.compute(&msg);
        prop_assert!(cmac.verify(&msg, &tag));
        prop_assert!(cmac.verify(&msg, &tag[..4]));
    }

    #[test]
    fn payload_crypt_is_involution(
        key in prop::array::uniform16(0u8..),
        addr in any::<u32>(),
        fcnt in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut data = payload.clone();
        crypt_frm_payload(&key, addr, fcnt, Direction::Uplink, &mut data);
        crypt_frm_payload(&key, addr, fcnt, Direction::Uplink, &mut data);
        prop_assert_eq!(data, payload);
    }

    #[test]
    fn frame_encode_decode_round_trip(
        addr in any::<u32>(),
        fcnt in any::<u16>(),
        fport in 1u8..224,
        payload in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        let keys = DeviceKeys::derive_for_tests(addr);
        let frame = DataFrame {
            frame_type: FrameType::UnconfirmedUp,
            dev_addr: addr,
            fcnt,
            fport,
            payload,
        };
        let bytes = frame.encode(&keys).unwrap();
        let decoded = DataFrame::decode(&bytes, &keys, 0).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn frame_mic_rejects_any_single_bit_flip(
        addr in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 1..40),
        flip_bit in 0usize..64,
    ) {
        let keys = DeviceKeys::derive_for_tests(addr);
        let frame = DataFrame {
            frame_type: FrameType::UnconfirmedUp,
            dev_addr: addr,
            fcnt: 1,
            fport: 1,
            payload,
        };
        let mut bytes = frame.encode(&keys).unwrap();
        let idx = flip_bit % (bytes.len() * 8);
        bytes[idx / 8] ^= 1 << (idx % 8);
        prop_assert!(DataFrame::decode(&bytes, &keys, 0).is_err());
    }

    #[test]
    fn mic_is_not_forgeable_by_field_swap(addr in any::<u32>(), fcnt in any::<u32>()) {
        let key = [7u8; 16];
        let msg = b"some frame body";
        let mic = softlora_repro::crypto::lorawan::compute_mic(
            &key, addr, fcnt, Direction::Uplink, msg,
        );
        prop_assert!(verify_mic(&key, addr, fcnt, Direction::Uplink, msg, &mic));
        prop_assert!(!verify_mic(&key, addr.wrapping_add(1), fcnt, Direction::Uplink, msg, &mic));
        prop_assert!(!verify_mic(&key, addr, fcnt.wrapping_add(1), Direction::Uplink, msg, &mic));
    }

    #[test]
    fn elapsed_codec_round_trip(
        values in prop::collection::vec(any::<u16>(), 1..12),
        offsets in prop::collection::vec(0.0f64..200.0, 1..12),
    ) {
        let n = values.len().min(offsets.len());
        let tx_time = 250.0;
        let records: Vec<SensorRecord> = (0..n)
            .map(|k| SensorRecord { value: values[k], local_time_s: tx_time - offsets[k] })
            .collect();
        let bytes = ElapsedCodec::encode(&records, tx_time).unwrap();
        let decoded = ElapsedCodec::decode(&bytes, n).unwrap();
        for (r, (v, e)) in records.iter().zip(decoded.iter()) {
            prop_assert_eq!(*v, r.value);
            prop_assert!((e - (tx_time - r.local_time_s)).abs() <= 0.5001e-3);
        }
    }

    #[test]
    fn gray_round_trip_and_unit_distance(v in 0u32..65536) {
        prop_assert_eq!(gray_decode(gray_encode(v)), v);
        if v > 0 {
            prop_assert_eq!((gray_encode(v) ^ gray_encode(v - 1)).count_ones(), 1);
        }
    }

    #[test]
    fn hamming_round_trip_all_rates(nibble in 0u8..16, rate in 1usize..5) {
        let cr = CodingRate::from_parity_bits(rate).unwrap();
        let (decoded, _) = hamming_decode(hamming_encode(nibble, cr), cr);
        prop_assert_eq!(decoded, nibble);
    }

    #[test]
    fn interleaver_round_trip(
        ppm in 4usize..13,
        cw_bits in 5usize..9,
        seed in any::<u32>(),
    ) {
        let codewords: Vec<u8> = (0..ppm)
            .map(|i| ((seed.wrapping_mul(2654435761).wrapping_add(i as u32 * 97)) % (1 << cw_bits.min(8))) as u8)
            .collect();
        let symbols = interleave_block(&codewords, ppm, cw_bits).unwrap();
        prop_assert_eq!(deinterleave_block(&symbols, ppm, cw_bits).unwrap(), codewords);
    }

    #[test]
    fn whitening_is_involution(data in prop::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(Whitener::whiten(&Whitener::whiten(&data)), data);
    }

    #[test]
    fn event_queue_pops_globally_time_ordered_with_fifo_ties(
        // Coarse quantisation forces plenty of exact time ties.
        quantized in prop::collection::vec(0u8..8, 1..120),
    ) {
        // The determinism regression guard behind the fleet event model:
        // pops come out globally time-ordered, and events scheduled at the
        // same time come out in insertion order.
        let mut q = EventQueue::new();
        for (k, t) in quantized.iter().enumerate() {
            q.schedule(*t as f64 * 0.5, k);
        }
        let mut popped = Vec::new();
        while let Some(item) = q.pop() {
            popped.push(item);
        }
        prop_assert_eq!(popped.len(), quantized.len());
        for w in popped.windows(2) {
            let ((t_a, a), (t_b, b)) = (w[0], w[1]);
            prop_assert!(t_a <= t_b, "time order violated: {} after {}", t_b, t_a);
            if t_a == t_b {
                prop_assert!(a < b, "tie broken out of insertion order: {} before {}", a, b);
            }
        }
    }

    #[test]
    fn event_queue_pop_always_returns_minimum_pending(
        batch_a in prop::collection::vec(0u8..6, 1..40),
        batch_b in prop::collection::vec(0u8..6, 0..40),
    ) {
        // Even with pops interleaved between schedule batches, every pop
        // returns the minimum pending time (peek agrees), and ties within
        // the pending set resolve to the earliest-scheduled event.
        let mut q = EventQueue::new();
        let mut pending: Vec<(f64, usize)> = Vec::new();
        let mut seq = 0usize;
        let check_pop = |q: &mut EventQueue<usize>, pending: &mut Vec<(f64, usize)>| {
            let peeked = q.peek_time();
            let popped = q.pop();
            match popped {
                None => {
                    assert!(pending.is_empty());
                    assert_eq!(peeked, None);
                }
                Some((t, id)) => {
                    assert_eq!(peeked, Some(t));
                    let min_t = pending.iter().map(|(pt, _)| *pt).fold(f64::INFINITY, f64::min);
                    assert_eq!(t, min_t, "pop returned a non-minimal time");
                    let expected_id = pending
                        .iter()
                        .filter(|(pt, _)| *pt == min_t)
                        .map(|(_, pid)| *pid)
                        .min()
                        .expect("pending non-empty");
                    assert_eq!(id, expected_id, "tie not broken by insertion order");
                    pending.retain(|(_, pid)| *pid != id);
                }
            }
        };
        for t in &batch_a {
            q.schedule(*t as f64, seq);
            pending.push((*t as f64, seq));
            seq += 1;
        }
        check_pop(&mut q, &mut pending);
        for t in &batch_b {
            q.schedule(*t as f64, seq);
            pending.push((*t as f64, seq));
            seq += 1;
        }
        while !pending.is_empty() {
            check_pop(&mut q, &mut pending);
        }
        prop_assert!(q.is_empty());
    }
}
