//! Property-based tests on the waveform modem: arbitrary payloads and
//! carrier offsets must round-trip bit-exactly through the CSS chain.

use proptest::prelude::*;
use softlora_repro::dsp::Complex;
use softlora_repro::phy::demodulator::Demodulator;
use softlora_repro::phy::modulator::Modulator;
use softlora_repro::phy::{PhyConfig, SpreadingFactor};

proptest! {
    // Waveform round trips are comparatively slow; a handful of random
    // cases per run is plenty on top of the deterministic unit tests.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn modem_round_trip_arbitrary_payload(
        payload in prop::collection::vec(any::<u8>(), 1..24),
        cfo_khz in -25i32..25,
        phase in 0.0f64..std::f64::consts::TAU,
    ) {
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
        let m = Modulator::new(cfg, 1).expect("modulator");
        let d = Demodulator::new(cfg, 1).expect("demodulator");
        let frame = m.modulate(&payload, cfo_khz as f64 * 1e3, phase, 1.0).expect("modulate");
        let mut capture = vec![Complex::ZERO; 64];
        capture.extend_from_slice(&frame.samples);
        capture.extend(vec![Complex::ZERO; 128]);
        let out = d.demodulate(&capture, 64).expect("demodulate");
        prop_assert_eq!(out.header.payload_len, out.payload.len());
        prop_assert_eq!(out.payload, payload);
    }

    #[test]
    fn encoded_symbol_count_matches_airtime_formula(
        len in 0usize..64,
        sf_v in 7u32..10,
    ) {
        let sf = SpreadingFactor::from_value(sf_v).expect("sf");
        let cfg = PhyConfig::uplink(sf);
        let m = Modulator::new(cfg, 1).expect("modulator");
        let payload = vec![0xA7u8; len];
        let symbols = m.encode_symbols(&payload).expect("encode");
        prop_assert_eq!(symbols.len(), cfg.payload_symbols(len));
        for &s in &symbols {
            prop_assert!(s < sf.chips());
        }
    }
}
