//! Waveform-level integration: LoRaWAN frame bytes through the real CSS
//! modulator, a noisy channel, the dechirp demodulator, and the LoRaWAN
//! gateway — crypto verified end to end at the signal level.

use softlora_repro::dsp::Complex;
use softlora_repro::lorawan::{ClassADevice, DeviceConfig, Gateway, RxVerdict};
use softlora_repro::phy::demodulator::Demodulator;
use softlora_repro::phy::modulator::Modulator;
use softlora_repro::phy::noise::{add_noise_at_snr, GaussianNoise};
use softlora_repro::phy::{PhyConfig, SpreadingFactor};

fn transmit_over_waveform(
    bytes: &[u8],
    cfo_hz: f64,
    snr_db: Option<f64>,
    sf: SpreadingFactor,
) -> Result<Vec<u8>, softlora_repro::phy::PhyError> {
    let cfg = PhyConfig::uplink(sf);
    let os = 2;
    let modulator = Modulator::new(cfg, os)?;
    let demodulator = Demodulator::new(cfg, os)?;
    let frame = modulator.modulate(bytes, cfo_hz, 0.7, 1.0)?;
    let mut capture = vec![Complex::ZERO; 300];
    capture.extend_from_slice(&frame.samples);
    capture.extend(vec![Complex::ZERO; 400]);
    if let Some(snr) = snr_db {
        let mut noise = GaussianNoise::new(1.0, 99);
        add_noise_at_snr(&mut capture, &mut noise, snr);
    }
    Ok(demodulator.demodulate(&capture, 300)?.payload)
}

#[test]
fn lorawan_frame_survives_the_air() {
    // A real Class A device builds an encrypted, MIC'd frame; the bytes fly
    // as chirps with a −22 kHz crystal offset; the gateway decodes,
    // verifies and timestamps.
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let dev_cfg = DeviceConfig::new(0x2601_0EE7, phy);
    let mut device = ClassADevice::new(dev_cfg.clone());
    let mut gateway = Gateway::new();
    gateway.provision(dev_cfg.dev_addr, dev_cfg.keys.clone());

    device.sense(1234, 10.0).expect("sense");
    let tx = device.try_transmit(12.0).expect("tx");

    let received = transmit_over_waveform(&tx.bytes, -22_000.0, Some(8.0), SpreadingFactor::Sf7)
        .expect("waveform round trip");
    assert_eq!(received, tx.bytes, "bytes corrupted over the air");

    let verdict = gateway.receive(&received, 12.0 + tx.airtime_s);
    let RxVerdict::Accepted(up) = verdict else { panic!("gateway rejected: {verdict:?}") };
    assert_eq!(up.records.len(), 1);
    assert_eq!(up.records[0].value, 1234);
}

#[test]
fn tampered_waveform_fails_mic() {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let dev_cfg = DeviceConfig::new(0x2601_0EE8, phy);
    let mut device = ClassADevice::new(dev_cfg.clone());
    let mut gateway = Gateway::new();
    gateway.provision(dev_cfg.dev_addr, dev_cfg.keys.clone());

    device.sense(1, 1.0).expect("sense");
    let tx = device.try_transmit(2.0).expect("tx");
    let mut bytes = tx.bytes.clone();
    bytes[10] ^= 0x40; // tamper after modulation would break CRC; tamper
                       // before flight models a forged frame instead
    let received = transmit_over_waveform(&bytes, -20_000.0, None, SpreadingFactor::Sf7)
        .expect("waveform round trip");
    assert!(!gateway.receive(&received, 3.0).is_accepted());
}

#[test]
fn multiple_sf_waveform_round_trips() {
    for sf in [SpreadingFactor::Sf7, SpreadingFactor::Sf8] {
        let phy = PhyConfig::uplink(sf);
        let dev_cfg = DeviceConfig::new(0x2601_0F00 + sf.value(), phy);
        let mut device = ClassADevice::new(dev_cfg.clone());
        device.sense(7, 0.5).expect("sense");
        device.sense(8, 0.7).expect("sense");
        let tx = device.try_transmit(1.0).expect("tx");
        let received =
            transmit_over_waveform(&tx.bytes, 15_000.0, Some(10.0), sf).expect("round trip");
        assert_eq!(received, tx.bytes, "{sf}");
    }
}

#[test]
fn replayed_waveform_is_bit_exact_and_verifies() {
    // The paper's core premise at waveform level: demodulating the same
    // waveform twice yields identical bytes, and the second copy still
    // passes all cryptographic checks if the first never consumed the
    // counter.
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let dev_cfg = DeviceConfig::new(0x2601_0EE9, phy);
    let mut device = ClassADevice::new(dev_cfg.clone());
    device.sense(42, 1.0).expect("sense");
    let tx = device.try_transmit(2.0).expect("tx");

    let first = transmit_over_waveform(&tx.bytes, -21_000.0, Some(12.0), SpreadingFactor::Sf7)
        .expect("original");
    let second = transmit_over_waveform(&tx.bytes, -21_600.0, Some(12.0), SpreadingFactor::Sf7)
        .expect("replay through a biased chain");
    assert_eq!(first, second, "replay must be bit-exact");

    let mut gateway = Gateway::new();
    gateway.provision(dev_cfg.dev_addr, dev_cfg.keys.clone());
    // Original jammed: the gateway only sees the (delayed) replay.
    assert!(gateway.receive(&second, 100.0).is_accepted());
}
