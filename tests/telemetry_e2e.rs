//! Telemetry acceptance test: one process-wide registry, fed by every
//! layer, scraped over the wire. A loopback fleet replay (with WAL
//! persistence on) plus a small flowgraph run must leave the global
//! registry holding at least one series from each layer — core stage
//! latency, store WAL append, runtime block throughput, net datagram
//! counters — and a `METRICS_REQ` over the ctrl socket must return that
//! snapshot intact, alongside the `STATS_RESP` runtime section.

use softlora_repro::attack::FrameDelayAttack;
use softlora_repro::net::listener::{NetServer, NetServerConfig};
use softlora_repro::net::loadgen::{replay_fleet, LoadgenConfig};
use softlora_repro::net::protocol::{decode_frame, encode_frame, Frame};
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::runtime::{FlowgraphBuilder, RuntimeStats, Scheduler};
use softlora_repro::sim::{
    FleetDeployment, FrameSource, HonestChannel, Position, Scenario, UplinkDeliveries,
};
use softlora_repro::softlora::NetworkServer;
use std::net::UdpSocket;
use std::sync::Arc;
use std::time::Duration;

const GATEWAYS: usize = 4;
const LOUD: usize = 2;
const DEVICES: usize = 2;

fn phy() -> PhyConfig {
    PhyConfig::uplink(SpreadingFactor::Sf7)
}

/// Small attacked fleet: clean traffic until t = 900 s, then the
/// frame-delay attack against meter 0 until t = 1500 s.
fn pinned_scenario() -> Scenario {
    let floors: Vec<f64> = (0..GATEWAYS).map(|g| if g < LOUD { -117.0 } else { -57.0 }).collect();
    let fleet = FleetDeployment::with_gateways(GATEWAYS).with_site_noise_floors_dbm(floors);
    let gateways = fleet.gateway_positions();
    let mut scenario = Scenario::new_fleet_sites(
        phy(),
        fleet.medium(),
        fleet.gateway_sites(),
        Box::new(HonestChannel),
    );
    let positions = fleet.device_positions(DEVICES, 21);
    for (k, pos) in positions.iter().enumerate() {
        scenario.add_device(0x2601_5000 + k as u32, *pos, 300.0, k as u64);
    }
    let target = positions[0];
    let attack = FrameDelayAttack::near_gateway(
        Position::new(target.x + 2.0, target.y + 1.0, target.z),
        &gateways,
        0,
        2.0,
        40.0,
        phy(),
        7,
    )
    .with_targets(vec![0x2601_5000]);
    scenario.schedule_interceptor(900.0, Box::new(attack));
    scenario
}

fn build_server(scenario: &Scenario, persist: Option<&str>) -> NetworkServer {
    let mut builder = NetworkServer::builder(phy()).adc_quantisation(false).warmup_frames(2);
    for g in 0..GATEWAYS {
        builder = builder.gateway(g as u64 + 1);
    }
    for k in 0..scenario.devices() {
        let cfg = scenario.device_config(k).clone();
        builder = builder.provision(cfg.dev_addr, cfg.keys);
    }
    if let Some(dir) = persist {
        builder = builder.with_persistence(dir);
    }
    builder.build()
}

#[test]
fn metrics_scrape_covers_every_layer() {
    let mut scenario = pinned_scenario();
    let mut groups: Vec<UplinkDeliveries> = Vec::new();
    scenario.run(1500.0, |u| groups.push(u.clone()));
    assert!(!groups.is_empty(), "scenario must produce uplinks");

    // Runtime layer: run the same stream through the flowgraph so block
    // reports land in the global registry as `runtime_block_*` series.
    let (fronts, sink) = build_server(&pinned_scenario(), None).into_streaming();
    let runtime_stats = Arc::new(RuntimeStats::new());
    let mut b = FlowgraphBuilder::new();
    b.observer(Arc::clone(&runtime_stats) as _);
    let src = b.source(FrameSource::from_groups(groups.clone()));
    let parts: Vec<_> = fronts.into_iter().map(|front| b.stage(src, front)).collect();
    b.sink(&parts, sink);
    let report = Scheduler::new(2).run(b.build().expect("valid flowgraph"));
    assert!(!report.blocks.is_empty(), "flowgraph must report blocks");

    // Store + core + net layers: the loopback fleet with persistence on.
    let persist_dir =
        std::env::temp_dir().join(format!("softlora-telemetry-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&persist_dir);
    let persist = persist_dir.to_str().expect("utf-8 temp path").to_string();
    let net = NetServer::bind(
        build_server(&pinned_scenario(), Some(&persist)),
        NetServerConfig::default(),
    )
    .expect("bind listener");
    let data_addr = net.data_addr().expect("data addr");
    let ctrl_addr = net.ctrl_addr().expect("ctrl addr");
    let listener = std::thread::spawn(move || net.run());

    let loadgen = replay_fleet(&groups, GATEWAYS, data_addr, &LoadgenConfig::default())
        .expect("fleet replay");
    assert_eq!(loadgen.uplinks, groups.len() as u64);
    // Let the poll loop commit the tail before scraping.
    std::thread::sleep(Duration::from_millis(200));

    // The wire scrape: one METRICS_REQ, one full registry snapshot back.
    let ctrl = UdpSocket::bind("127.0.0.1:0").expect("ctrl socket");
    ctrl.connect(ctrl_addr).expect("connect ctrl");
    ctrl.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    ctrl.send(&encode_frame(&Frame::MetricsReq { token: 41 })).expect("metrics req");
    let mut buf = vec![0u8; 65_535];
    let len = ctrl.recv(&mut buf).expect("metrics resp");
    let Frame::MetricsResp { token, snapshot } = decode_frame(&buf[..len]).expect("metrics frame")
    else {
        panic!("expected METRICS_RESP");
    };
    assert_eq!(token, 41);

    // One series from every layer, over the wire.
    for (layer, family) in [
        ("core", "gateway_stage_ns"),
        ("core", "server_commit_ns"),
        ("store", "store_wal_append_ns"),
        ("runtime", "runtime_block_throughput_per_s"),
        ("runtime", "runtime_block_work_calls_total"),
        ("net", "net_datagrams_total"),
        ("net", "net_groups_committed_total"),
    ] {
        assert!(
            snapshot.find(family).is_some(),
            "{layer} series {family} missing from the wire snapshot; got: {}",
            snapshot.series.iter().map(|s| s.key()).collect::<Vec<_>>().join(", ")
        );
    }

    // The series carry real measurements, not empty registrations.
    // The fleet path runs the four front-half stages per copy; detect
    // and MAC latency lands in `server_commit_ns` on this path.
    let stage = snapshot
        .find_with("gateway_stage_ns", &[("stage", "radio")])
        .and_then(|s| s.value.as_histogram())
        .expect("radio stage histogram");
    assert!(stage.count > 0, "radio stage must have recorded latencies");
    let commit = snapshot
        .find("server_commit_ns")
        .and_then(|s| s.value.as_histogram())
        .expect("commit histogram");
    assert!(commit.count > 0, "shard commits must have recorded latencies");
    let wal = snapshot
        .find("store_wal_append_ns")
        .and_then(|s| s.value.as_histogram())
        .expect("WAL append histogram");
    assert!(wal.count > 0, "persistence must have appended WAL records");
    assert!(
        snapshot.counter_sum("net_datagrams_total") > 0,
        "listener must have counted datagrams"
    );
    assert!(
        snapshot.counter_sum("server_verdicts_total") > 0,
        "shard cores must have counted verdicts"
    );

    // The Prometheus-style exposition renders every scraped series.
    let text = snapshot.render_text();
    assert!(text.contains("gateway_stage_ns"), "exposition must carry stage latency");
    assert!(text.contains("store_wal_append_ns_count"), "histograms render cumulative lines");

    // Satellite: STATS_RESP now carries the runtime section too.
    ctrl.send(&encode_frame(&Frame::StatsReq { token: 42 })).expect("stats req");
    let len = ctrl.recv(&mut buf).expect("stats resp");
    let Frame::StatsResp { stats, .. } = decode_frame(&buf[..len]).expect("stats frame") else {
        panic!("expected STATS_RESP");
    };
    assert!(stats.runtime.work_calls > 0, "runtime work calls must reach STATS_RESP");
    assert!(!stats.runtime.blocks.is_empty(), "per-block runtime stats must reach STATS_RESP");
    assert_eq!(
        stats.counters.datagrams,
        snapshot.counter_sum("net_datagrams_total"),
        "NetCounters and the registry are two views of the same cells"
    );

    ctrl.send(&encode_frame(&Frame::Shutdown { token: 43 })).expect("shutdown");
    let _ = ctrl.recv(&mut buf).expect("shutdown ack");
    let run = listener.join().expect("listener thread").expect("listener run");
    assert_eq!(run.counters.groups_committed, groups.len() as u64);
    let _ = std::fs::remove_dir_all(&persist_dir);
}
