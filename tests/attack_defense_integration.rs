//! Cross-crate integration: the frame-delay attack against the SoftLoRa
//! defence, over multiple devices, delays and conditions.

use softlora_repro::attack::{AttackOutcome, FrameDelayAttack};
use softlora_repro::lorawan::{ClassADevice, DeviceConfig};
use softlora_repro::phy::oscillator::Oscillator;
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::sim::medium::FreeSpace;
use softlora_repro::sim::{AirFrame, HonestChannel, Interceptor, Position, RadioMedium};
use softlora_repro::softlora::{GatewayBuilder, SoftLoraGateway, SoftLoraVerdict};

struct World {
    phy: PhyConfig,
    medium: RadioMedium,
    gw_pos: Position,
    gateway: SoftLoraGateway,
    devices: Vec<(ClassADevice, Oscillator, Position)>,
    t: f64,
}

impl World {
    fn new(n_devices: usize, seed: u64) -> Self {
        let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
        let mut builder: GatewayBuilder = SoftLoraGateway::builder(phy).seed(seed);
        let mut devices = Vec::new();
        for k in 0..n_devices {
            let cfg = DeviceConfig::new(0x2601_1000 + k as u32, phy);
            builder = builder.provision(cfg.dev_addr, cfg.keys.clone());
            devices.push((
                ClassADevice::new(cfg),
                Oscillator::sample_end_device(869.75e6, seed * 100 + k as u64),
                Position::new(50.0 * k as f64, 30.0, 1.5),
            ));
        }
        let gateway = builder.build();
        World {
            phy,
            medium: RadioMedium::new(Box::new(FreeSpace { freq_hz: 869.75e6 })),
            gw_pos: Position::new(400.0, 0.0, 10.0),
            gateway,
            devices,
            t: 100.0,
        }
    }

    fn uplink(&mut self, dev_idx: usize) -> AirFrame {
        let (device, osc, pos) = &mut self.devices[dev_idx];
        device.sense(100, self.t - 0.5).expect("sense");
        let tx = device.try_transmit(self.t).expect("tx");
        let frame = AirFrame {
            dev_addr: device.dev_addr(),
            bytes: tx.bytes,
            tx_start_global_s: self.t,
            airtime_s: tx.airtime_s,
            tx_power_dbm: 14.0,
            tx_position: *pos,
            tx_bias_hz: osc.frame_bias_hz(),
            tx_phase: 0.1,
            sf: self.phy.sf,
        };
        self.t += 150.0;
        frame
    }
}

#[test]
fn multi_device_defense_with_per_device_bands() {
    let mut w = World::new(3, 1);
    let mut honest = HonestChannel;

    // Warm all three devices.
    for _round in 0..5 {
        for dev in 0..3 {
            let frame = w.uplink(dev);
            for d in honest.intercept(&frame, &w.medium, &w.gw_pos) {
                let v = w.gateway.process(&d).expect("pipeline");
                assert!(v.is_accepted(), "{v:?}");
            }
        }
    }
    // Attack device 1 only.
    let mut attack = FrameDelayAttack::new(
        Position::new(51.0, 31.0, 1.5),
        Position::new(399.0, 1.0, 10.0),
        20.0,
        w.phy,
        7,
    )
    .with_targets(vec![0x2601_1001]);

    let mut detections = 0;
    let mut accepted = 0;
    for _round in 0..3 {
        for dev in 0..3 {
            let frame = w.uplink(dev);
            let deliveries = attack.intercept(&frame, &w.medium, &w.gw_pos);
            for d in &deliveries {
                match w.gateway.process(d).expect("pipeline") {
                    SoftLoraVerdict::ReplayDetected { dev_addr, .. } => {
                        assert_eq!(dev_addr, 0x2601_1001, "wrong device flagged");
                        detections += 1;
                    }
                    SoftLoraVerdict::Accepted { .. } => accepted += 1,
                    SoftLoraVerdict::NotReceived { .. } => {}
                    other => panic!("{other:?}"),
                }
            }
        }
    }
    assert_eq!(detections, 3, "one replay per attacked round");
    assert_eq!(accepted, 6, "the two untargeted devices keep working");
    let stats = w.gateway.detection_stats();
    assert_eq!(stats.detection_rate(), 1.0);
    assert_eq!(stats.false_alarm_rate(), 0.0);
}

#[test]
fn attack_outcomes_are_tracked() {
    let mut w = World::new(1, 2);
    let mut honest = HonestChannel;
    for _ in 0..4 {
        let frame = w.uplink(0);
        for d in honest.intercept(&frame, &w.medium, &w.gw_pos) {
            w.gateway.process(&d).expect("pipeline");
        }
    }
    let mut attack = FrameDelayAttack::new(
        Position::new(1.0, 31.0, 1.5),
        Position::new(399.0, 1.0, 10.0),
        60.0,
        w.phy,
        3,
    );
    let frame = w.uplink(0);
    attack.intercept(&frame, &w.medium, &w.gw_pos);
    assert_eq!(attack.outcomes(), &[AttackOutcome::Executed]);
}

#[test]
fn long_run_false_alarm_rate_is_low() {
    // 40 honest frames across temperature drift: the adaptive band must
    // follow without flagging.
    let mut w = World::new(1, 5);
    let mut honest = HonestChannel;
    let mut false_alarms = 0;
    let mut accepted = 0;
    for round in 0..40 {
        // Slow thermal drift: ~12 Hz per frame, 500 Hz over the run.
        w.devices[0].1.set_temperature_offset(round as f64 * 0.05);
        let frame = w.uplink(0);
        for d in honest.intercept(&frame, &w.medium, &w.gw_pos) {
            match w.gateway.process(&d).expect("pipeline") {
                SoftLoraVerdict::Accepted { .. } => accepted += 1,
                SoftLoraVerdict::ReplayDetected { .. } => false_alarms += 1,
                _ => {}
            }
        }
    }
    assert!(accepted >= 38, "accepted {accepted}");
    assert!(false_alarms <= 2, "false alarms {false_alarms}");
}

#[test]
fn tau_sweep_always_detected() {
    for (i, tau) in [2.0, 30.0, 300.0].iter().enumerate() {
        let mut w = World::new(1, 10 + i as u64);
        let mut honest = HonestChannel;
        for _ in 0..5 {
            let frame = w.uplink(0);
            for d in honest.intercept(&frame, &w.medium, &w.gw_pos) {
                w.gateway.process(&d).expect("pipeline");
            }
        }
        let mut attack = FrameDelayAttack::new(
            Position::new(1.0, 31.0, 1.5),
            Position::new(399.0, 1.0, 10.0),
            *tau,
            w.phy,
            50 + i as u64,
        );
        let frame = w.uplink(0);
        let mut detected = false;
        for d in attack.intercept(&frame, &w.medium, &w.gw_pos) {
            if w.gateway.process(&d).expect("pipeline").is_replay_detected() {
                detected = true;
            }
        }
        assert!(detected, "τ = {tau} not detected");
    }
}
