//! Streaming-runtime acceptance test: the flowgraph execution of the
//! gateway + network-server stack emits **bit-for-bit** the same verdicts
//! as the batch path on a pinned fleet scenario — including an attack
//! phase — and loses no uplink at shutdown. Every graph runs under
//! **both** scheduler policies (static round-robin and work-stealing),
//! pinning that the scheduling policy cannot change a single verdict.

use softlora_repro::attack::FrameDelayAttack;
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::runtime::{FlowgraphBuilder, RuntimeStats, Scheduler, SchedulerKind};
use softlora_repro::sim::{
    FleetDeployment, FrameSource, HonestChannel, Position, Scenario, UplinkDeliveries,
};
use softlora_repro::softlora::network_server::ServerObserver;
use softlora_repro::softlora::{NetworkServer, ServerStats, ServerVerdict};
use std::sync::{Arc, Mutex};

const GATEWAYS: usize = 2;
const DEVICES: usize = 3;

fn phy() -> PhyConfig {
    PhyConfig::uplink(SpreadingFactor::Sf7)
}

/// The pinned workload: a 2-gateway fleet, clean traffic until t = 1500 s,
/// then the frame-delay attack (τ = 40 s) against the first meter until
/// t = 2600 s. Fully deterministic.
fn pinned_scenario() -> Scenario {
    let fleet = FleetDeployment::with_gateways(GATEWAYS);
    let gateways = fleet.gateway_positions();
    let mut scenario =
        Scenario::new_fleet(phy(), fleet.medium(), gateways.clone(), Box::new(HonestChannel));
    let positions = fleet.device_positions(DEVICES, 21);
    for (k, pos) in positions.iter().enumerate() {
        scenario.add_device(0x2601_5000 + k as u32, *pos, 300.0, k as u64);
    }
    let target = positions[0];
    let attack = FrameDelayAttack::near_gateway(
        Position::new(target.x + 2.0, target.y + 1.0, target.z),
        &gateways,
        0,
        2.0,
        40.0,
        phy(),
        7,
    )
    .with_targets(vec![0x2601_5000]);
    scenario.schedule_interceptor(1500.0, Box::new(attack));
    scenario
}

fn build_server_sharded(scenario: &Scenario, shards: usize) -> NetworkServer {
    let mut builder = NetworkServer::builder(phy())
        .adc_quantisation(false)
        .warmup_frames(2)
        .gateway(1)
        .gateway(2)
        .shards(shards);
    for k in 0..scenario.devices() {
        let cfg = scenario.device_config(k).clone();
        builder = builder.provision(cfg.dev_addr, cfg.keys);
    }
    builder.build()
}

fn build_server(scenario: &Scenario) -> NetworkServer {
    build_server_sharded(scenario, 1)
}

/// Observer collecting every committed verdict — the streaming path's
/// result channel, shared by both paths here so the observer surface
/// itself is part of what the test pins.
#[derive(Default)]
struct Collect {
    verdicts: Vec<(u64, ServerVerdict)>,
    last_stats: Option<ServerStats>,
}

impl ServerObserver for Collect {
    fn on_verdict(&mut self, uplink: u64, verdict: &ServerVerdict) {
        self.verdicts.push((uplink, verdict.clone()));
    }
    fn on_stats(&mut self, stats: ServerStats) {
        self.last_stats = Some(stats);
    }
}

#[test]
fn flowgraph_matches_batch_bit_for_bit() {
    // Generate the pinned group stream once.
    let mut scenario = pinned_scenario();
    let mut groups: Vec<UplinkDeliveries> = Vec::new();
    scenario.run(2600.0, |u| groups.push(u.clone()));
    assert!(groups.len() >= 15, "too few uplinks: {}", groups.len());
    assert!(
        groups.iter().any(|g| g.copies.iter().any(|c| c.delivery.is_replay)),
        "the attack phase must put replay groups on the stream"
    );

    // Batch path.
    let batch_observer = Arc::new(Mutex::new(Collect::default()));
    let mut batch_server = build_server(&pinned_scenario());
    batch_server.attach_observer(Box::new(Arc::clone(&batch_observer)));
    let batch_verdicts = batch_server.process_batch(&groups).expect("batch pipeline");
    let batch_stats = batch_server.stats();
    let batch_detection = batch_server.detection_stats();

    // Streaming path: the identical server, dismantled into flowgraph
    // blocks and run on 3 workers — once per scheduler policy.
    for kind in [SchedulerKind::RoundRobin, SchedulerKind::Stealing] {
        let stream_observer = Arc::new(Mutex::new(Collect::default()));
        let (fronts, mut sink) = build_server(&pinned_scenario()).into_streaming();
        assert_eq!(fronts.len(), GATEWAYS);
        sink.attach_observer(Box::new(Arc::clone(&stream_observer)));

        let runtime_stats = Arc::new(RuntimeStats::new());
        let mut b = FlowgraphBuilder::new();
        b.observer(Arc::clone(&runtime_stats) as _);
        let src = b.source(FrameSource::from_groups(groups.clone()));
        let parts: Vec<_> = fronts.into_iter().map(|front| b.stage(src, front)).collect();
        b.sink(&parts, sink);
        let report = Scheduler::with_kind(3, kind).run(b.build().expect("valid flowgraph"));

        // 1. Verdict equivalence, bit for bit, in uplink order.
        let streamed = stream_observer.lock().unwrap();
        assert_eq!(
            streamed.verdicts.len(),
            batch_verdicts.len(),
            "[{kind:?}] no uplink lost at shutdown"
        );
        for ((uplink, verdict), expected) in streamed.verdicts.iter().zip(batch_verdicts.iter()) {
            assert_eq!(verdict, expected, "[{kind:?}] uplink {uplink}");
        }

        // 2. Both observer streams saw identical sequences and final stats.
        let batched = batch_observer.lock().unwrap();
        assert_eq!(streamed.verdicts, batched.verdicts, "[{kind:?}]");
        assert_eq!(streamed.last_stats, Some(batch_stats), "[{kind:?}]");
        assert_eq!(streamed.last_stats, batched.last_stats, "[{kind:?}]");

        // 3. The workload actually exercised the defence: accepted clean
        //    traffic and flagged replays.
        assert!(batch_stats.accepted > 5, "{batch_stats:?}");
        assert!(
            batch_stats.fb_replays_flagged + batch_stats.cross_gateway_replays_flagged > 0,
            "{batch_stats:?}"
        );
        assert!(batch_detection.true_positives > 0, "{batch_detection:?}");

        // 4. Runtime accounting: every group flowed through every front
        //    block and all parts reached the sink, under either policy.
        let n = groups.len() as u64;
        assert_eq!(report.block("frame-source").unwrap().items_out, n * GATEWAYS as u64);
        for g in 0..GATEWAYS {
            let front = report.block(&format!("gateway-front-{g}")).unwrap();
            assert_eq!(front.items_in, n, "[{kind:?}]");
            assert_eq!(front.items_out, n, "[{kind:?}]");
        }
        assert_eq!(report.block("server-sink").unwrap().items_in, n * GATEWAYS as u64);
        assert_eq!(runtime_stats.finished_blocks(), (GATEWAYS + 2) as u64, "[{kind:?}]");
    }
}

#[test]
fn sharded_flowgraph_matches_batch_bit_for_bit() {
    const SHARDS: usize = 3;
    // The pinned group stream, once.
    let mut scenario = pinned_scenario();
    let mut groups: Vec<UplinkDeliveries> = Vec::new();
    scenario.run(2600.0, |u| groups.push(u.clone()));

    // Batch path with the same shard count.
    let mut batch_server = build_server_sharded(&pinned_scenario(), SHARDS);
    let batch_verdicts = batch_server.process_batch(&groups).expect("batch pipeline");
    let batch_stats = batch_server.stats();
    let batch_detection = batch_server.detection_stats();

    // Streaming path with the tail parallelised INSIDE the flowgraph:
    // source → per-gateway fronts → shard router → per-shard sinks.
    // Run once per scheduler policy.
    for kind in [SchedulerKind::RoundRobin, SchedulerKind::Stealing] {
        let stream_observer = Arc::new(Mutex::new(Collect::default()));
        let mut server = build_server_sharded(&pinned_scenario(), SHARDS);
        server.attach_observer(Box::new(Arc::clone(&stream_observer)));
        let (fronts, router, sinks) = server.into_sharded_streaming();
        assert_eq!(fronts.len(), GATEWAYS);
        assert_eq!(sinks.len(), SHARDS);

        let runtime_stats = Arc::new(RuntimeStats::new());
        let mut b = FlowgraphBuilder::new();
        b.observer(Arc::clone(&runtime_stats) as _);
        b.scheduler(kind);
        let src = b.source(FrameSource::from_groups(groups.clone()));
        let parts: Vec<_> = fronts.into_iter().map(|front| b.stage(src, front)).collect();
        let routed = b.merge(&parts, router);
        for sink in sinks {
            b.sink(&[routed], sink);
        }
        let report = Scheduler::new(4).run(b.build().expect("valid flowgraph"));

        // 1. Per-uplink verdicts are bit-for-bit the batch path's. Shard
        //    sinks commit concurrently, so the observer sees them in
        //    cross-shard commit order — compare keyed by uplink id.
        let streamed = stream_observer.lock().unwrap();
        assert_eq!(
            streamed.verdicts.len(),
            batch_verdicts.len(),
            "[{kind:?}] no uplink lost at shutdown"
        );
        let mut by_uplink: Vec<(u64, ServerVerdict)> = streamed.verdicts.clone();
        by_uplink.sort_by_key(|(uplink, _)| *uplink);
        for ((uplink, verdict), (group, expected)) in
            by_uplink.iter().zip(groups.iter().zip(batch_verdicts.iter()))
        {
            assert_eq!(uplink, &group.uplink, "[{kind:?}]");
            assert_eq!(verdict, expected, "[{kind:?}] uplink {uplink}");
        }

        // 2. Final statistics are exact: the observer hub accumulates every
        //    shard's deltas, so the last on_stats snapshot is the total.
        assert_eq!(streamed.last_stats, Some(batch_stats), "[{kind:?}]");
        assert!(batch_detection.true_positives > 0, "{batch_detection:?}");

        // 3. Runtime accounting: the router consumed every gateway part and
        //    the shard sinks jointly drained every routed group.
        let n = groups.len() as u64;
        let router_report = report.block("shard-router").unwrap();
        assert_eq!(router_report.items_in, n * GATEWAYS as u64, "[{kind:?}]");
        assert_eq!(router_report.items_out, n, "[{kind:?}]");
        let sunk: u64 =
            (0..SHARDS).map(|s| report.block(&format!("shard-sink-{s}")).unwrap().items_in).sum();
        assert_eq!(sunk, n, "[{kind:?}]");
        assert_eq!(runtime_stats.finished_blocks(), (GATEWAYS + 2 + SHARDS) as u64, "[{kind:?}]");
    }
}
