//! Vendored, dependency-free benchmark harness exposing the slice of
//! criterion's API the `softlora-bench` benches use.
//!
//! Offline builds cannot fetch crates.io, so `cargo bench` runs against
//! this shim: each benchmark is warmed up, then timed over a fixed number
//! of samples, and the per-iteration wall time is printed as
//! `bench-name ... <time>/iter`. No statistics beyond mean/min/max are
//! attempted — the point is honest relative comparisons (e.g. single
//! versus double onset pick), not confidence intervals.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Whether the binary was invoked in smoke-test mode (`cargo bench --
/// --test`, matching real criterion's flag): each benchmark body runs
/// exactly once, untimed, so CI can prove every bench still compiles and
/// executes without paying for warm-up and sampling.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Times a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Times `f` with a borrowed input under `<group>/<id>`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (formatting niceties only in this shim).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Passed to benchmark closures; drives the timing loop.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample_iters: u64,
    requested_samples: usize,
    /// Smoke mode: run bodies once, record nothing.
    smoke: bool,
}

impl Bencher {
    fn with_samples(n: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            per_sample_iters: 1,
            requested_samples: n.max(1),
            smoke: false,
        }
    }

    /// Times `f`, recording one duration per sample. In `--test` mode the
    /// body runs once and nothing is recorded.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.smoke {
            black_box(f());
            self.samples.clear();
            return;
        }
        // Warm-up: run until ~20 ms have elapsed (min 1 iteration) to fault
        // in caches, and size the per-sample iteration count from it.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= Duration::from_millis(20) {
                break;
            }
        }
        let per_iter_ns = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters);
        // Aim for ~10 ms per sample, capped to keep total runtime bounded.
        self.per_sample_iters = ((10_000_000 / per_iter_ns.max(1)) as u64).clamp(1, 100_000);
        self.samples.clear();
        for _ in 0..self.requested_samples {
            let start = Instant::now();
            for _ in 0..self.per_sample_iters {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut b = Bencher::with_samples(samples);
    b.smoke = test_mode();
    f(&mut b);
    if b.smoke {
        println!("{label:<44} ok (test mode: 1 iteration)");
        return;
    }
    if b.samples.is_empty() {
        println!("{label:<44} (no samples)");
        return;
    }
    let per = |d: &Duration| d.as_nanos() as f64 / b.per_sample_iters.max(1) as f64;
    let mean = b.samples.iter().map(per).sum::<f64>() / b.samples.len() as f64;
    let min = b.samples.iter().map(per).fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().map(per).fold(0.0f64, f64::max);
    println!(
        "{label:<44} {:>12}/iter  [{} .. {}]  ({} samples)",
        fmt_ns(mean),
        fmt_ns(min),
        fmt_ns(max),
        b.samples.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher::with_samples(3);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b.per_sample_iters >= 1);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("fft", 1024).label, "fft/1024");
        assert_eq!(BenchmarkId::from_parameter("sf7").label, "sf7");
    }
}
