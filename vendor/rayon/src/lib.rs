//! Vendored, dependency-free stand-in for `rayon`.
//!
//! Offline builds cannot fetch crates.io, so this crate supplies the data
//! parallelism surface the SoftLoRa gateway uses — `par_iter().map(..)
//! .collect()` over slices — implemented with `std::thread::scope`. Work is
//! split into one contiguous chunk per available core; results are stitched
//! back **in input order**, so a parallel map is observably identical to
//! its sequential counterpart (which the batch pipeline's determinism
//! guarantee relies on).

use std::num::NonZeroUsize;

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap, ParMapInit};
}

/// `.par_iter()` entry point for slice-like containers.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;

    /// A parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowing parallel iterator over a slice.
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f`, in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap { items: self.items, f }
    }

    /// Maps every element through `f` with per-worker state from `init`,
    /// mirroring rayon's `map_init`: `init` runs once per worker chunk
    /// (not per element), and `f` receives `&mut` access to that worker's
    /// state — the idiom for threading scratch arenas through a parallel
    /// map without sharing them across threads.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<'a, T, INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> R + Sync,
        R: Send,
    {
        ParMapInit { items: self.items, init, f }
    }
}

/// The result of [`ParIter::map`], ready to collect.
#[derive(Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Runs the map across threads and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.items.len();
        let workers =
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1).min(n.max(1));
        if workers <= 1 || n <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let mut parts: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|slice| scope.spawn(move || slice.iter().map(f).collect::<Vec<R>>()))
                .collect();
            parts = handles
                .into_iter()
                .map(|h| h.join().expect("rayon stub worker panicked"))
                .collect();
        });
        parts.into_iter().flatten().collect()
    }
}

/// The result of [`ParIter::map_init`], ready to collect.
#[derive(Debug)]
pub struct ParMapInit<'a, T, INIT, F> {
    items: &'a [T],
    init: INIT,
    f: F,
}

impl<'a, T, S, R, INIT, F> ParMapInit<'a, T, INIT, F>
where
    T: Sync,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'a T) -> R + Sync,
{
    /// Runs the map across threads — one `init()` state per worker chunk —
    /// and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.items.len();
        let workers =
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1).min(n.max(1));
        if workers <= 1 || n <= 1 {
            let mut state = (self.init)();
            return self.items.iter().map(|item| (self.f)(&mut state, item)).collect();
        }
        let chunk = n.div_ceil(workers);
        let init = &self.init;
        let f = &self.f;
        let mut parts: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|slice| {
                    scope.spawn(move || {
                        let mut state = init();
                        slice.iter().map(|item| f(&mut state, item)).collect::<Vec<R>>()
                    })
                })
                .collect();
            parts = handles
                .into_iter()
                .map(|h| h.join().expect("rayon stub worker panicked"))
                .collect();
        });
        parts.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one[..].par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn map_init_matches_map_and_reuses_state() {
        let input: Vec<u64> = (0..5000).collect();
        // State counts how many items each worker handled; results must
        // still come back in input order.
        let out: Vec<(u64, u64)> = input
            .par_iter()
            .map_init(
                || 0u64,
                |seen, x| {
                    *seen += 1;
                    (*x * 3, *seen)
                },
            )
            .collect();
        for (k, (tripled, seen)) in out.iter().enumerate() {
            assert_eq!(*tripled, k as u64 * 3);
            // Per-worker counters start at 1 and grow within a chunk.
            assert!(*seen >= 1);
        }
        // Every element was visited exactly once overall.
        let total: u64 = out.iter().map(|(_, _s)| 1).sum();
        assert_eq!(total, 5000);
    }

    #[test]
    fn map_init_single_item() {
        let one = [7u32];
        let out: Vec<u32> = one[..].par_iter().map_init(|| 10u32, |s, x| *s + *x).collect();
        assert_eq!(out, vec![17]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let input: Vec<usize> = (0..4096).collect();
        let _: Vec<()> = input
            .par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        let threads = seen.lock().unwrap().len();
        // Single-core machines legitimately see 1; anything else must fan out.
        if std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) > 1 {
            assert!(threads > 1, "expected multi-threaded execution, saw {threads}");
        }
    }
}
