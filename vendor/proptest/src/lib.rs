//! Vendored, dependency-free property-testing harness exposing the slice
//! of proptest's API this repository's test suites use.
//!
//! Offline builds cannot fetch crates.io, so the `proptest!` macro here
//! expands each property into a plain `#[test]` that samples its argument
//! strategies from a deterministic per-test generator (seeded from the
//! test's name) and runs the body for `ProptestConfig::cases` cases.
//! There is no shrinking: a failing case reports its index and the
//! assertion message, and re-running is deterministic, which is enough to
//! debug with.

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator backing strategy sampling (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds a generator from a test's name, so every property has its own
    /// reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = ((<$t>::MAX as u64) - (self.start as u64)).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain (e.g. `0usize..` on 64-bit).
                    self.start.wrapping_add(rng.next_u64() as $t)
                } else {
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, usize);

impl Strategy for core::ops::Range<i32> {
    type Value = i32;
    fn sample(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty strategy range");
        let span = (i64::from(self.end) - i64::from(self.start)) as u64;
        (i64::from(self.start) + rng.below(span) as i64) as i32
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// Values generatable over their whole domain, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, broadly spread values; NaN/inf corner cases are exercised
        // by the deterministic unit suites instead.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

/// Strategy producing any value of `T`; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (`any::<u32>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Combinator strategies, mirroring proptest's `prop` module paths.
pub mod strategies {
    /// Collection strategies (`prop::collection`).
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            len: core::ops::Range<usize>,
        }

        /// Vectors of values from `elem`, sized within `len`.
        pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = Strategy::sample(&self.len, rng);
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }

    /// Fixed-size array strategies (`prop::array`).
    pub mod array {
        use super::super::{Strategy, TestRng};

        /// Strategy for `[S::Value; 16]`.
        #[derive(Debug, Clone)]
        pub struct Uniform16<S>(S);

        /// 16-element arrays of values from `elem`.
        pub fn uniform16<S: Strategy>(elem: S) -> Uniform16<S> {
            Uniform16(elem)
        }

        impl<S: Strategy> Strategy for Uniform16<S>
        where
            S::Value: Copy + Default,
        {
            type Value = [S::Value; 16];
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let mut out = [S::Value::default(); 16];
                for slot in &mut out {
                    *slot = self.0.sample(rng);
                }
                out
            }
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };

    /// The `prop` combinator namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::strategies::{array, collection};
    }
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares property tests; see the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            message
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..1000 {
            assert!((3u32..17).contains(&(3u32..17).sample(&mut rng)));
            assert!((-5i32..5).contains(&(-5i32..5).sample(&mut rng)));
            let x = (-1.5f64..2.5).sample(&mut rng);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn vec_strategy_obeys_length() {
        let mut rng = crate::TestRng::for_test("vec");
        let strat = prop::collection::vec(any::<u8>(), 2..9);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..9).contains(&v.len()));
        }
    }

    #[test]
    fn uniform16_fills_all_slots() {
        let mut rng = crate::TestRng::for_test("array");
        let arr = prop::array::uniform16(1u8..255).sample(&mut rng);
        assert_eq!(arr.len(), 16);
        assert!(arr.iter().all(|&b| b >= 1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trip(x in 0u32..1000, v in prop::collection::vec(0u8..10, 0..5)) {
            prop_assert!(x < 1000);
            prop_assume!(v.len() != 999); // always true; exercises the macro
            prop_assert_eq!(v.len(), v.iter().map(|b| usize::from(*b < 10)).sum::<usize>());
        }
    }
}
