//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the narrow API surface the repository actually uses: a seedable,
//! cloneable [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the
//! [`SeedableRng`] constructor trait and the [`RngExt`] sampling trait
//! (`random::<T>()` / `random_range`). Every draw is deterministic given
//! the seed, which the SoftLoRa reproduction depends on for repeatable
//! experiments and for the batch-versus-sequential pipeline equivalence.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from a uniform bit stream.
pub trait Uniform: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Uniform for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Uniform for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Uniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Uniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Half-open ranges samplable by [`RngExt::random_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value inside the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // far below anything the simulations can resolve.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience sampling methods, mirroring `rand`'s `Rng` extension trait.
pub trait RngExt: RngCore {
    /// Draws a uniform value of type `T` (integers over their full domain,
    /// `f64`/`f32` in `[0, 1)`, `bool` fair).
    fn random<T: Uniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a half-open range.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion. Fast, 256-bit state, and `Clone` so snapshots of a
    /// stream can be replayed (the batch pipeline relies on this).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let draws: Vec<f64> = (0..10_000).map(|_| rng.random::<f64>()).collect();
        assert!(draws.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let k = rng.random_range(3usize..17);
            assert!((3..17).contains(&k));
            let x = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "{trues}");
    }

    #[test]
    fn clone_replays_stream() {
        let mut a = StdRng::seed_from_u64(11);
        let _ = a.random::<u64>();
        let mut snapshot = a.clone();
        assert_eq!(a.random::<u64>(), snapshot.random::<u64>());
    }
}
