//! Durability drill: write → kill → recover → assert verdicts.
//!
//! A network server built with `with_persistence(dir)` appends one WAL
//! record per committed uplink to its shard of the durable device-state
//! store and periodically installs snapshots. This example runs an
//! attacked fleet scenario halfway, kills the server without a graceful
//! shutdown (`std::mem::forget` — no destructor runs), rebuilds it over
//! the same directory, finishes the run, and asserts the spliced verdict
//! stream is **bit-for-bit** what an uninterrupted server produces: the
//! FB histories, dedup entries, MAC counters and statistics all came
//! back from disk.
//!
//! Run with: `cargo run --release --example persistent_server`

use softlora_repro::attack::FrameDelayAttack;
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::sim::{FleetDeployment, HonestChannel, Position, Scenario, UplinkDeliveries};
use softlora_repro::softlora::{NetworkServer, ServerVerdict};
use softlora_repro::store::test_dir;
use std::path::Path;

const GATEWAYS: usize = 2;
const DEVICES: usize = 4;
const SHARDS: usize = 2;

fn phy() -> PhyConfig {
    PhyConfig::uplink(SpreadingFactor::Sf7)
}

/// A deterministic attacked fleet: clean traffic, then the frame-delay
/// attack (τ = 40 s) against the first meter.
fn scenario() -> Scenario {
    let fleet = FleetDeployment::with_gateways(GATEWAYS);
    let gateways = fleet.gateway_positions();
    let mut s =
        Scenario::new_fleet(phy(), fleet.medium(), gateways.clone(), Box::new(HonestChannel));
    let positions = fleet.device_positions(DEVICES, 55);
    for (k, pos) in positions.iter().enumerate() {
        s.add_device(0x2601_9000 + k as u32, *pos, 300.0, k as u64);
    }
    let target = positions[0];
    let attack = FrameDelayAttack::near_gateway(
        Position::new(target.x + 2.0, target.y + 1.0, target.z),
        &gateways,
        0,
        2.0,
        40.0,
        phy(),
        9,
    )
    .with_targets(vec![0x2601_9000]);
    s.schedule_interceptor(1500.0, Box::new(attack));
    s
}

fn build(dir: Option<&Path>) -> NetworkServer {
    let s = scenario();
    let mut b = NetworkServer::builder(phy())
        .adc_quantisation(false)
        .warmup_frames(2)
        .gateway(31)
        .gateway(32)
        .shards(SHARDS)
        .snapshot_every(8)
        .wal_segment_bytes(4096);
    for k in 0..s.devices() {
        let cfg = s.device_config(k).clone();
        b = b.provision(cfg.dev_addr, cfg.keys);
    }
    if let Some(dir) = dir {
        b = b.with_persistence(dir);
    }
    b.build()
}

fn main() {
    let mut groups: Vec<UplinkDeliveries> = Vec::new();
    scenario().run(2600.0, |u| groups.push(u.clone()));
    let mid = groups.len() / 2;
    println!(
        "Workload: {} uplink groups ({} with replay copies), {DEVICES} meters, {GATEWAYS} \
         gateways, {SHARDS} tail shards",
        groups.len(),
        groups.iter().filter(|g| g.copies.iter().any(|c| c.delivery.is_replay)).count(),
    );

    // The uninterrupted reference run.
    let mut reference = build(None);
    let expected = reference.process_batch(&groups).expect("reference pipeline");

    // Life 1: persist, commit the first half, die hard. The store lands
    // in a scratch directory unless SOFTLORA_PERSIST_DIR pins it (CI does
    // this so `repro_fsck` can check the output afterwards).
    let pinned_dir = std::env::var_os("SOFTLORA_PERSIST_DIR").map(std::path::PathBuf::from);
    let dir = match &pinned_dir {
        Some(p) => {
            // A pinned directory is the example's scratch space: clear any
            // previous run's store, otherwise life 1 would *resume* stale
            // state and the fresh in-memory reference below could never
            // match.
            std::fs::remove_dir_all(p).ok();
            std::fs::create_dir_all(p).expect("create pinned store dir");
            p.clone()
        }
        None => test_dir("persistent-server-example"),
    };
    let mut life1 = build(Some(&dir));
    let first_half = life1.process_batch(&groups[..mid]).expect("first life pipeline");
    let stats_at_kill = life1.stats();
    std::mem::forget(life1); // kill -9: no Drop, no graceful flush beyond the per-batch one
    println!(
        "\nLife 1 committed {} groups to {} then died (accepted {}, flagged {})",
        mid,
        dir.display(),
        stats_at_kill.accepted,
        stats_at_kill.fb_replays_flagged + stats_at_kill.cross_gateway_replays_flagged,
    );

    // Life 2: recover (snapshot + WAL tail replay) and finish the run.
    let mut life2 = build(Some(&dir));
    assert_eq!(life2.stats(), stats_at_kill, "recovered statistics must match the kill point");
    println!(
        "Life 2 recovered: {} uplinks, {} accepted, FB histories for {} devices, gateway frame \
         indices {:?}",
        life2.stats().uplinks,
        life2.stats().accepted,
        life2.fb_database().devices(),
        (0..GATEWAYS).map(|g| life2.frames_seen(g)).collect::<Vec<_>>(),
    );
    let second_half = life2.process_batch(&groups[mid..]).expect("second life pipeline");

    // The acceptance criterion: the spliced run equals the uninterrupted
    // one, verdict for verdict.
    let rejoined: Vec<ServerVerdict> = first_half.into_iter().chain(second_half).collect();
    assert_eq!(rejoined.len(), expected.len());
    for (k, (got, want)) in rejoined.iter().zip(&expected).enumerate() {
        assert_eq!(got, want, "verdict {k} diverged after recovery");
    }
    assert_eq!(life2.stats(), reference.stats());
    assert_eq!(life2.detection_stats(), reference.detection_stats());
    println!(
        "\nAll {} verdicts bit-for-bit identical to the uninterrupted run \
         (detection rate {:.2}, false alarms {:.2})",
        rejoined.len(),
        life2.detection_stats().detection_rate(),
        life2.detection_stats().false_alarm_rate(),
    );

    if pinned_dir.is_none() {
        std::fs::remove_dir_all(&dir).ok();
    }
}
