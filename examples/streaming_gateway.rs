//! The always-on deployment mode: a gateway fleet and its network server
//! running as a streaming flowgraph instead of a batch call.
//!
//! A 10-meter fleet scenario is wrapped as a `ScenarioSource` block that
//! broadcasts every uplink group over lock-free rings to one
//! `GatewayFrontBlock` per gateway (the embarrassingly-parallel DSP front
//! half: radio gate → capture → onset pick → FB estimate); the
//! `ServerSinkBlock` reassembles the per-gateway analyses and drives the
//! sequential dedup/detect/MAC tail. Verdicts surface through a
//! `ServerObserver`, and the runtime reports per-block throughput,
//! latency and ring occupancy.
//!
//! Run with: `cargo run --release --example streaming_gateway`

use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::runtime::{FlowgraphBuilder, Scheduler};
use softlora_repro::sim::{FleetDeployment, HonestChannel, Scenario, ScenarioSource};
use softlora_repro::softlora::network_server::ServerObserver;
use softlora_repro::softlora::{NetworkServer, ServerStats, ServerVerdict};
use std::sync::{Arc, Mutex};

const GATEWAYS: usize = 3;
const DEVICES: usize = 10;
const HOURS: f64 = 1.0;

#[derive(Default)]
struct Tally {
    accepted: u64,
    flagged: u64,
    stats: ServerStats,
}

impl ServerObserver for Tally {
    fn on_verdict(&mut self, _uplink: u64, verdict: &ServerVerdict) {
        if verdict.is_accepted() {
            self.accepted += 1;
        }
        if verdict.is_replay_flagged() {
            self.flagged += 1;
        }
    }
    fn on_stats(&mut self, stats: ServerStats) {
        self.stats = stats;
    }
}

fn main() {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let fleet = FleetDeployment::with_gateways(GATEWAYS);

    println!("Streaming flowgraph: {DEVICES} meters -> {GATEWAYS} gateway fronts -> server sink");
    println!("Simulating {HOURS} h of traffic as a continuous stream...\n");

    let mut scenario = Scenario::new_fleet(
        phy,
        fleet.medium(),
        fleet.gateway_positions(),
        Box::new(HonestChannel),
    );
    let mut builder = NetworkServer::builder(phy).adc_quantisation(false).warmup_frames(2);
    for g in 0..GATEWAYS {
        builder = builder.gateway(2100 + g as u64);
    }
    for (k, pos) in fleet.device_positions(DEVICES, 77).iter().enumerate() {
        let dev_addr = scenario.add_device(0x2601_7000 + k as u32, *pos, 120.0, k as u64);
        let cfg = scenario.device_config(k).clone();
        assert_eq!(dev_addr, cfg.dev_addr);
        builder = builder.provision(cfg.dev_addr, cfg.keys);
    }
    let (fronts, mut sink) = builder.build().into_streaming();

    let tally = Arc::new(Mutex::new(Tally::default()));
    sink.attach_observer(Box::new(Arc::clone(&tally)));

    let mut b = FlowgraphBuilder::new();
    let src = b.source(ScenarioSource::new(scenario, HOURS * 3600.0, 60.0));
    let parts: Vec<_> = fronts.into_iter().map(|front| b.stage(src, front)).collect();
    b.sink(&parts, sink);
    let flowgraph = b.build().expect("valid flowgraph");

    let workers = 1 + GATEWAYS.min(3);
    let report = Scheduler::new(workers).run(flowgraph);

    println!(
        "{:<18} {:>9} {:>9} {:>11} {:>12} {:>10}",
        "block", "items in", "items out", "work calls", "latency", "occupancy"
    );
    for block in &report.blocks {
        println!(
            "{:<18} {:>9} {:>9} {:>11} {:>9.1} µs {:>10.2}",
            block.name,
            block.items_in,
            block.items_out,
            block.work_calls,
            block.latency_s() * 1e6,
            block.mean_occupancy,
        );
    }

    let tally = tally.lock().unwrap();
    println!(
        "\n{} uplinks deduplicated in {:.2} s wall clock ({:.0} uplinks/s end to end, {} workers)",
        tally.stats.uplinks,
        report.elapsed_s,
        tally.stats.uplinks as f64 / report.elapsed_s,
        report.workers,
    );
    println!(
        "accepted {} | replay-flagged {} | duplicates suppressed {} | lorawan rejected {}",
        tally.accepted,
        tally.flagged,
        tally.stats.duplicates_suppressed,
        tally.stats.lorawan_rejected,
    );
    assert_eq!(tally.accepted, tally.stats.accepted);
    assert!(tally.flagged == 0, "honest traffic must not be flagged");
    println!("\nThe same wiring accepts a live SDR feed: blocks only see ring items.");
}
