//! Commodity gateway versus SoftLoRa under a sweep of attack delays.
//!
//! For τ from 5 s to 10 minutes, runs the frame-delay attack and compares
//! what each gateway believes: the commodity gateway's data timeline is
//! silently shifted by exactly τ, while SoftLoRa drops the replays. Also
//! demonstrates the naive counter-based defence failing (the original was
//! jammed, so the replay's counter looks fresh).
//!
//! The attacked frame's deliveries (jammed original + delayed replay) are
//! handed to [`SoftLoraGateway::process_batch`] in one call — the paranoid
//! DSP front half runs in parallel — and the flag itself is consumed
//! through the observer hook.
//!
//! Run with: `cargo run --release --example attack_comparison`

use softlora_repro::attack::FrameDelayAttack;
use softlora_repro::lorawan::{ClassADevice, DeviceConfig, Gateway as CommodityGateway, RxVerdict};
use softlora_repro::phy::oscillator::Oscillator;
use softlora_repro::phy::rn2483::Rn2483Model;
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::sim::medium::FreeSpace;
use softlora_repro::sim::{AirFrame, HonestChannel, Interceptor, Position, RadioMedium};
use softlora_repro::softlora::observer::{GatewayObserver, ReplayFlagEvent};
use softlora_repro::softlora::{SoftLoraGateway, SoftLoraVerdict};
use std::cell::RefCell;
use std::rc::Rc;

/// Remembers the most recent replay flag for the summary line.
#[derive(Default)]
struct LastFlag(Option<ReplayFlagEvent>);

impl GatewayObserver for LastFlag {
    fn on_replay_flag(&mut self, _frame: u64, event: ReplayFlagEvent) {
        self.0 = Some(event);
    }
}

fn main() {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let device_pos = Position::new(0.0, 0.0, 1.5);
    let gw_pos = Position::new(500.0, 0.0, 12.0);

    println!("Frame-delay attack: commodity vs SoftLoRa gateway\n");
    println!(
        "{:>8} {:>22} {:>14} {:>20}",
        "τ (s)", "commodity accepts?", "ts error (s)", "SoftLoRa verdict"
    );

    for tau in [5.0, 30.0, 120.0, 600.0] {
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 869.75e6 }));
        let dev_cfg = DeviceConfig::new(0x2601_0007, phy);
        let mut device = ClassADevice::new(dev_cfg.clone());
        let mut osc = Oscillator::sample_end_device(869.75e6, 4);
        let mut commodity = CommodityGateway::new();
        commodity.provision(dev_cfg.dev_addr, dev_cfg.keys.clone());
        let flag = Rc::new(RefCell::new(LastFlag::default()));
        let mut softlora = SoftLoraGateway::builder(phy)
            .seed(8)
            .provision(dev_cfg.dev_addr, dev_cfg.keys.clone())
            .observer(Box::new(Rc::clone(&flag)))
            .build();
        let model = Rn2483Model::new();

        let send = |device: &mut ClassADevice, osc: &mut Oscillator, t: f64| -> AirFrame {
            device.sense(1, t - 1.0).expect("sense");
            let tx = device.try_transmit(t).expect("tx");
            AirFrame {
                dev_addr: dev_cfg.dev_addr,
                bytes: tx.bytes,
                tx_start_global_s: t,
                airtime_s: tx.airtime_s,
                tx_power_dbm: 14.0,
                tx_position: device_pos,
                tx_bias_hz: osc.frame_bias_hz(),
                tx_phase: 0.0,
                sf: phy.sf,
            }
        };

        // Warm both gateways with four honest frames.
        let mut honest = HonestChannel;
        for k in 0..4 {
            let frame = send(&mut device, &mut osc, 50.0 + 200.0 * k as f64);
            for d in honest.intercept(&frame, &medium, &gw_pos) {
                let _ = commodity.receive(&d.bytes, d.arrival_global_s);
                let _ = softlora.process(&d).expect("pipeline");
            }
        }

        // Warm-up verdicts may have touched the observer; only flags from
        // the attacked batch below should reach the summary line.
        flag.borrow_mut().0 = None;

        // One attacked frame at this τ. Its deliveries (the jammed
        // original and the delayed replay) go through as one batch.
        let mut attack = FrameDelayAttack::new(
            Position::new(2.0, 0.0, 1.5),
            Position::new(498.0, 0.0, 12.0),
            tau,
            phy,
            13,
        );
        let t = 1000.0;
        let frame = send(&mut device, &mut osc, t);
        let deliveries = attack.intercept(&frame, &medium, &gw_pos);

        let mut commodity_line = ("no frame seen".to_string(), f64::NAN);
        for d in &deliveries {
            let outcome = model.receive(&phy, d.bytes.len(), d.snr_db, d.jamming);
            if outcome.host_sees_frame() {
                if let RxVerdict::Accepted(up) = commodity.receive(&d.bytes, d.arrival_global_s) {
                    commodity_line = (
                        "yes (fresh counter!)".to_string(),
                        up.records[0].global_time_s - (t - 1.0),
                    );
                }
            }
        }

        let verdicts = softlora.process_batch(&deliveries).expect("pipeline");
        let softlora_line = match &flag.borrow().0 {
            Some(event) => format!("flagged ({:+.0} Hz)", event.deviation_hz),
            None if deliveries
                .iter()
                .zip(&verdicts)
                .any(|(d, v)| d.is_replay && matches!(v, SoftLoraVerdict::Accepted { .. })) =>
            {
                "MISSED".to_string()
            }
            None => "-".to_string(),
        };
        println!(
            "{:>8.0} {:>22} {:>14.2} {:>20}",
            tau, commodity_line.0, commodity_line.1, softlora_line
        );
    }

    println!("\nThe delay τ is arbitrary (paper Definition 1): cryptography and frame");
    println!("counters pass because the original never reached the gateway. Only the");
    println!("physical-layer FB trait betrays the replay.");
}
