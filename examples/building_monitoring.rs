//! Building environment monitoring — the paper's Fig. 15 deployment as an
//! application.
//!
//! Six temperature sensors spread over the six-floor concrete building
//! report to a SoftLoRa gateway on the 6th floor. The example surveys the
//! per-sensor link quality, runs an hour of simulated reporting, and
//! summarises the reconstructed-timestamp accuracy per sensor. Outcomes
//! flow through a `GatewayObserver` that buckets accuracy per device.
//!
//! Run with: `cargo run --release --example building_monitoring`

use softlora_repro::lorawan::{ClassADevice, DeviceConfig};
use softlora_repro::phy::oscillator::Oscillator;
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::sim::clock::DriftingClock;
use softlora_repro::sim::deployment::BuildingDeployment;
use softlora_repro::sim::{AirFrame, HonestChannel, Interceptor};
use softlora_repro::softlora::observer::{AcceptEvent, GatewayObserver, RejectEvent};
use softlora_repro::softlora::{GatewayBuilder, SoftLoraGateway};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Buckets reconstructed-timestamp errors per device address.
#[derive(Default)]
struct AccuracyLedger {
    /// True sample time of the uplink currently being processed.
    true_time_s: f64,
    /// Per-device signed errors, ms.
    errors_ms: HashMap<u32, Vec<f64>>,
    /// Frames that produced no timestamped records.
    lost: usize,
}

impl GatewayObserver for AccuracyLedger {
    fn on_accept(&mut self, _frame: u64, event: AcceptEvent<'_>) {
        let err = (event.uplink.records[0].global_time_s - self.true_time_s) * 1e3;
        self.errors_ms.entry(event.uplink.dev_addr).or_default().push(err);
    }

    fn on_reject(&mut self, _frame: u64, _event: RejectEvent<'_>) {
        self.lost += 1;
    }

    fn on_replay_flag(
        &mut self,
        _frame: u64,
        _event: softlora_repro::softlora::observer::ReplayFlagEvent,
    ) {
        self.lost += 1;
    }
}

fn main() {
    let building = BuildingDeployment::new();
    let medium = building.medium();
    let gw_pos = building.attack_gateway_site(); // C3, 6th floor
    let phy = PhyConfig::uplink(SpreadingFactor::Sf8);

    // Sensors at (column, floor) spots across the building.
    let spots = [(0usize, 1usize), (2, 3), (4, 2), (6, 5), (8, 4), (9, 6)];
    println!("Building monitoring: 6 sensors -> SoftLoRa gateway at C3/6F (SF8)\n");
    println!("{:<8} {:>10} {:>10} {:>12}", "sensor", "floor", "SNR(dB)", "decodable");

    let ledger = Rc::new(RefCell::new(AccuracyLedger::default()));
    let mut builder: GatewayBuilder =
        SoftLoraGateway::builder(phy).seed(2024).observer(Box::new(Rc::clone(&ledger)));
    let mut sensors = Vec::new();
    for (idx, &(col, floor)) in spots.iter().enumerate() {
        let pos = building.position(col, floor);
        let link = medium.link(&pos, &gw_pos, 14.0);
        println!(
            "{:<8} {:>10} {:>10.1} {:>12}",
            format!("S{idx}"),
            floor,
            link.snr_db(),
            link.decodable(phy.sf)
        );
        let cfg = DeviceConfig::new(0x2601_0100 + idx as u32, phy);
        builder = builder.provision(cfg.dev_addr, cfg.keys.clone());
        sensors.push((
            ClassADevice::new(cfg),
            Oscillator::sample_end_device(869.75e6, idx as u64),
            DriftingClock::sample_device_crystal(idx as u64),
            pos,
        ));
    }
    let mut gateway = builder.build();

    // One hour: each sensor samples every 10 minutes and uplinks.
    let mut honest = HonestChannel;
    for round in 0..6 {
        for (idx, (device, osc, clock, pos)) in sensors.iter_mut().enumerate() {
            let t_global = 120.0 + 600.0 * round as f64 + 13.0 * idx as f64;
            // The device reads its *own drifting clock*; the reading taken
            // 2 s before transmission.
            let t_sample_local = clock.read(t_global - 2.0);
            let t_tx_local = clock.read(t_global);
            device.sense(400 + round as u16, t_sample_local).expect("buffer");
            let Ok(tx) = device.try_transmit(t_tx_local) else {
                ledger.borrow_mut().lost += 1;
                continue;
            };
            let frame = AirFrame {
                dev_addr: device.dev_addr(),
                bytes: tx.bytes,
                tx_start_global_s: t_global,
                airtime_s: tx.airtime_s,
                tx_power_dbm: 14.0,
                tx_position: *pos,
                tx_bias_hz: osc.frame_bias_hz(),
                tx_phase: 0.1,
                sf: phy.sf,
            };
            for d in honest.intercept(&frame, &medium, &gw_pos) {
                ledger.borrow_mut().true_time_s = t_global - 2.0;
                gateway.process(&d).expect("pipeline");
            }
        }
    }

    let ledger = ledger.borrow();
    let accepted: usize = ledger.errors_ms.values().map(Vec::len).sum();
    println!("\nhour summary: {accepted} uplinks accepted, {} lost", ledger.lost);
    println!("\nreconstructed timestamp error per sensor (ms):");
    println!("{:<8} {:>8} {:>10} {:>10}", "sensor", "frames", "mean", "worst");
    for (idx, &(_, _)) in spots.iter().enumerate() {
        let dev_addr = 0x2601_0100 + idx as u32;
        match ledger.errors_ms.get(&dev_addr) {
            None => println!("{:<8} {:>8}", format!("S{idx}"), 0),
            Some(errs) => {
                let mean = errs.iter().map(|e| e.abs()).sum::<f64>() / errs.len() as f64;
                let worst = errs.iter().map(|e| e.abs()).fold(0.0f64, f64::max);
                println!(
                    "{:<8} {:>8} {:>10.3} {:>10.3}",
                    format!("S{idx}"),
                    errs.len(),
                    mean,
                    worst
                );
            }
        }
    }
    println!("\nDevice clocks drift 30–50 ppm and were never synchronised; the");
    println!("elapsed-time scheme plus PHY-layer arrival timestamping keeps every");
    println!("record within milliseconds of global time (paper §3.2).");
}
