//! Long-range timestamping across the 1.07 km campus link (paper §8.2).
//!
//! A roadway-detector-style sensor on a roof top reports through a kilometre
//! of campus, in heavy rain, to a SoftLoRa gateway in an open staircase.
//! The example reports the link budget, then runs a sequence of uplinks
//! and prints the PHY timestamping and record-timestamp accuracy.
//!
//! Run with: `cargo run --release --example campus_long_range`

use softlora_repro::lorawan::{ClassADevice, DeviceConfig};
use softlora_repro::phy::channel::propagation_delay_s;
use softlora_repro::phy::oscillator::Oscillator;
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::sim::deployment::CampusDeployment;
use softlora_repro::sim::{AirFrame, HonestChannel, Interceptor};
use softlora_repro::softlora::{SoftLoraConfig, SoftLoraGateway, SoftLoraVerdict};

fn main() {
    let campus = CampusDeployment::default();
    let medium = campus.medium();
    let site_a = campus.site_a(); // roof top: the end device
    let site_b = campus.site_b(); // open staircase: the gateway
    // SF9 keeps the demo fast; §8.2 used SF12 (same link budget story).
    let phy = PhyConfig::uplink(SpreadingFactor::Sf9);

    let distance = site_a.distance_m(&site_b);
    let link = medium.link(&site_a, &site_b, 14.0);
    println!("Campus long-range timestamping (paper §8.2, heavy rain)\n");
    println!("distance            : {distance:.0} m");
    println!("one-way propagation : {:.2} µs", propagation_delay_s(distance) * 1e6);
    println!("link SNR            : {:.1} dB (SF9 floor: {:.1} dB)",
        link.snr_db(), phy.sf.demod_floor_db());
    println!();

    let dev_cfg = DeviceConfig::new(0x2601_0C0C, phy);
    let mut device = ClassADevice::new(dev_cfg.clone());
    let mut osc = Oscillator::sample_end_device(869.75e6, 21);
    let mut gateway = SoftLoraGateway::new(SoftLoraConfig::new(phy), 33);
    gateway.provision(dev_cfg.dev_addr, dev_cfg.keys.clone());

    let mut honest = HonestChannel;
    println!("{:>6} {:>16} {:>18}", "test", "PHY error (µs)", "record error (ms)");
    for k in 0..4 {
        let t = 60.0 + 300.0 * k as f64;
        device.sense(900 + k as u16, t - 1.5).expect("sense");
        let tx = device.try_transmit(t).expect("tx");
        let frame = AirFrame {
            dev_addr: dev_cfg.dev_addr,
            bytes: tx.bytes,
            tx_start_global_s: t,
            airtime_s: tx.airtime_s,
            tx_power_dbm: 14.0,
            tx_position: site_a,
            tx_bias_hz: osc.frame_bias_hz(),
            tx_phase: 0.9,
            sf: phy.sf,
        };
        for d in honest.intercept(&frame, &medium, &site_b) {
            match gateway.process(&d).expect("pipeline") {
                SoftLoraVerdict::Accepted { uplink, phy_arrival_s, .. } => {
                    // PHY timestamping error: detected arrival vs the true
                    // arrival (tx start + propagation).
                    let true_arrival = t + propagation_delay_s(distance);
                    let phy_err_us = (phy_arrival_s - true_arrival).abs() * 1e6;
                    let rec_err_ms =
                        (uplink.records[0].global_time_s - (t - 1.5)).abs() * 1e3;
                    println!("{:>6} {:>16.2} {:>18.3}", k + 1, phy_err_us, rec_err_ms);
                }
                other => println!("{:>6} {other:?}", k + 1),
            }
        }
    }
    println!("\nPaper §8.2 measured 0.23–6.43 µs over four rainy tests — microsecond");
    println!("signal timestamping at a kilometre, which keeps the FB estimate (and");
    println!("therefore the attack detector) accurate.");
}
