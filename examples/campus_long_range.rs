//! Long-range timestamping across the 1.07 km campus link (paper §8.2).
//!
//! A roadway-detector-style sensor on a roof top reports through a kilometre
//! of campus, in heavy rain, to a SoftLoRa gateway in an open staircase.
//! The example reports the link budget, then runs a sequence of uplinks
//! and prints the PHY timestamping and record-timestamp accuracy, consumed
//! through the gateway's observer hook.
//!
//! Run with: `cargo run --release --example campus_long_range`

use softlora_repro::lorawan::{ClassADevice, DeviceConfig};
use softlora_repro::phy::channel::propagation_delay_s;
use softlora_repro::phy::oscillator::Oscillator;
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::sim::deployment::CampusDeployment;
use softlora_repro::sim::{AirFrame, HonestChannel, Interceptor};
use softlora_repro::softlora::observer::{AcceptEvent, GatewayObserver, RejectEvent};
use softlora_repro::softlora::SoftLoraGateway;
use std::cell::RefCell;
use std::rc::Rc;

/// Prints one table row per uplink from the gateway's accept events.
#[derive(Default)]
struct RowPrinter {
    test: usize,
    true_arrival_s: f64,
    true_sample_s: f64,
}

impl GatewayObserver for RowPrinter {
    fn on_accept(&mut self, _frame: u64, event: AcceptEvent<'_>) {
        // PHY timestamping error: detected arrival vs the true arrival
        // (tx start + propagation).
        let phy_err_us = (event.phy_arrival_s - self.true_arrival_s).abs() * 1e6;
        let rec_err_ms = (event.uplink.records[0].global_time_s - self.true_sample_s).abs() * 1e3;
        println!("{:>6} {:>16.2} {:>18.3}", self.test, phy_err_us, rec_err_ms);
    }

    fn on_reject(&mut self, _frame: u64, event: RejectEvent<'_>) {
        println!("{:>6} {event:?}", self.test);
    }
}

fn main() {
    let campus = CampusDeployment::default();
    let medium = campus.medium();
    let site_a = campus.site_a(); // roof top: the end device
    let site_b = campus.site_b(); // open staircase: the gateway
                                  // SF9 keeps the demo fast; §8.2 used SF12 (same link budget story).
    let phy = PhyConfig::uplink(SpreadingFactor::Sf9);

    let distance = site_a.distance_m(&site_b);
    let link = medium.link(&site_a, &site_b, 14.0);
    println!("Campus long-range timestamping (paper §8.2, heavy rain)\n");
    println!("distance            : {distance:.0} m");
    println!("one-way propagation : {:.2} µs", propagation_delay_s(distance) * 1e6);
    println!(
        "link SNR            : {:.1} dB (SF9 floor: {:.1} dB)",
        link.snr_db(),
        phy.sf.demod_floor_db()
    );
    println!();

    let dev_cfg = DeviceConfig::new(0x2601_0C0C, phy);
    let mut device = ClassADevice::new(dev_cfg.clone());
    let mut osc = Oscillator::sample_end_device(869.75e6, 21);
    let rows = Rc::new(RefCell::new(RowPrinter::default()));
    let mut gateway = SoftLoraGateway::builder(phy)
        .seed(33)
        .provision(dev_cfg.dev_addr, dev_cfg.keys.clone())
        .observer(Box::new(Rc::clone(&rows)))
        .build();

    let mut honest = HonestChannel;
    println!("{:>6} {:>16} {:>18}", "test", "PHY error (µs)", "record error (ms)");
    for k in 0..4 {
        let t = 60.0 + 300.0 * k as f64;
        device.sense(900 + k as u16, t - 1.5).expect("sense");
        let tx = device.try_transmit(t).expect("tx");
        let frame = AirFrame {
            dev_addr: dev_cfg.dev_addr,
            bytes: tx.bytes,
            tx_start_global_s: t,
            airtime_s: tx.airtime_s,
            tx_power_dbm: 14.0,
            tx_position: site_a,
            tx_bias_hz: osc.frame_bias_hz(),
            tx_phase: 0.9,
            sf: phy.sf,
        };
        for d in honest.intercept(&frame, &medium, &site_b) {
            {
                let mut r = rows.borrow_mut();
                r.test = k + 1;
                r.true_arrival_s = t + propagation_delay_s(distance);
                r.true_sample_s = t - 1.5;
            }
            gateway.process(&d).expect("pipeline");
        }
    }
    println!("\nPaper §8.2 measured 0.23–6.43 µs over four rainy tests — microsecond");
    println!("signal timestamping at a kilometre, which keeps the FB estimate (and");
    println!("therefore the attack detector) accurate.");
}
