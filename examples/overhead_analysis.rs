//! Why synchronization-free? The paper's §3.2 arithmetic, interactive.
//!
//! Prints the communication cost of keeping device clocks synchronised
//! versus shipping 18-bit elapsed times, across spreading factors and
//! accuracy requirements, plus the §4.4 round-trip-timing comparison.
//!
//! Run with: `cargo run --release --example overhead_analysis`

use softlora_repro::attack::rtt_detector::overhead_comparison;
use softlora_repro::lorawan::elapsed::{timestamp_overhead_fraction, MAX_ELAPSED_S};
use softlora_repro::lorawan::region::DutyCycleTracker;
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::sim::clock::sync_sessions_per_hour;
use softlora_repro::softlora::analysis::AccuracyBudget;

fn main() {
    println!("§3.2 — the cost of clock synchronisation in LoRaWAN\n");

    println!("Sync sessions per hour to hold a clock-error bound (40 ppm crystal):");
    println!("{:>14} {:>16}", "bound", "sessions/hour");
    for (label, bound) in [("1 ms", 0.001), ("10 ms", 0.010), ("100 ms", 0.1), ("1 s", 1.0)] {
        println!("{label:>14} {:>16.1}", sync_sessions_per_hour(40.0, bound));
    }

    println!("\nFrame budget under the EU868 1% duty cycle (30-byte payloads):");
    println!("{:>6} {:>14} {:>14} {:>18}", "SF", "airtime (s)", "frames/hour", "sync eats (10ms)");
    let duty = DutyCycleTracker::eu868();
    for sf in [SpreadingFactor::Sf7, SpreadingFactor::Sf9, SpreadingFactor::Sf12] {
        let cfg = PhyConfig::uplink(sf);
        let airtime = cfg.airtime(30);
        let frames = duty.max_frames(airtime, 3600.0);
        let eaten = sync_sessions_per_hour(40.0, 0.010) / frames as f64 * 100.0;
        println!("{:>6} {:>14.3} {:>14} {:>17.0}%", sf.to_string(), airtime, frames, eaten);
    }

    println!("\nPayload spent on time information (30-byte payload):");
    println!(
        "  8-byte timestamps : {:.0}% of the payload (paper: 27%)",
        timestamp_overhead_fraction(30, true) * 100.0
    );
    println!(
        "  18-bit elapsed    : {:.1}% of the payload",
        timestamp_overhead_fraction(30, false) * 100.0
    );
    println!(
        "  elapsed-time range: {:.1} minutes of buffering at 1 ms resolution",
        MAX_ELAPSED_S / 60.0
    );

    let budget = AccuracyBudget::commodity();
    println!("\nSynchronization-free accuracy budget (commodity stack):");
    println!("  TX latency jitter : {:.1} ms", budget.tx_latency_jitter_s * 1e3);
    println!("  PHY timestamping  : {:.0} µs", budget.phy_timestamp_error_s * 1e6);
    println!("  propagation       : {:.1} µs", budget.propagation_s * 1e6);
    println!("  quantisation      : {:.1} ms", budget.quantisation_s * 1e3);
    println!(
        "  total             : {:.2} ms — meets ms/sub-second applications",
        budget.total_s() * 1e3
    );

    println!("\n§4.4 — the round-trip-timing defence, costed (SF12, 30 B):");
    let at = PhyConfig::uplink(SpreadingFactor::Sf12).airtime(30);
    for n in [10usize, 50, 100, 200] {
        let c = overhead_comparison(n, 21.0, at, at);
        println!(
            "  {n:>4} devices: airtime x{:.1}, gateway downlink {:>5.1}% utilised",
            c.rtt_airtime_multiplier,
            c.gateway_downlink_utilisation * 100.0
        );
    }
    println!("\nSoftLoRa's FB monitoring needs zero extra transmissions — the gateway");
    println!("just listens harder (a $25 SDR dongle).");
}
