//! Fleet-scale scenario: a 12-device metering network under the
//! frame-delay attack, driven by the discrete-event scenario runner.
//!
//! Devices report on jittered periods through a shared channel (ALOHA with
//! the capture effect); the attacker targets one meter; the SoftLoRa
//! gateway keeps per-device FB bands and flags the replays while the rest
//! of the fleet keeps timestamping normally. Two observers consume the
//! gateway's events: the stock [`GatewayStats`] tally and a small printer
//! for the first few flags.
//!
//! Run with: `cargo run --release --example fleet_scenario`

use softlora_repro::attack::FrameDelayAttack;
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::sim::medium::FreeSpace;
use softlora_repro::sim::scenario::Scenario;
use softlora_repro::sim::{Position, RadioMedium};
use softlora_repro::softlora::observer::{GatewayObserver, GatewayStats, ReplayFlagEvent};
use softlora_repro::softlora::{GatewayBuilder, SoftLoraGateway};
use std::cell::RefCell;
use std::rc::Rc;

/// Prints the first few replay flags as they happen.
#[derive(Default)]
struct FlagPrinter {
    printed: usize,
}

impl GatewayObserver for FlagPrinter {
    fn on_replay_flag(&mut self, _frame: u64, event: ReplayFlagEvent) {
        self.printed += 1;
        if self.printed <= 3 {
            println!(
                "  replay flagged: device {:#x}, FB off by {:+.0} Hz",
                event.dev_addr, event.deviation_hz
            );
        }
    }
}

fn main() {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let gw_pos = Position::new(0.0, 0.0, 15.0);
    let target_addr = 0x2601_3004;

    println!("Fleet scenario: 12 meters, 90 s periods, one device under attack\n");

    // --- Phase 1: a clean hour builds every device's FB history. ---
    let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 869.75e6 }));
    let mut net = Scenario::new(phy, medium, gw_pos, Box::new(softlora_repro::sim::HonestChannel));
    for k in 0..12u32 {
        let angle = k as f64 * 0.52;
        let pos = Position::new(250.0 * angle.cos(), 250.0 * angle.sin(), 1.5);
        net.add_device(0x2601_3000 + k, pos, 90.0, k as u64);
    }
    let stats = Rc::new(RefCell::new(GatewayStats::default()));
    let mut builder: GatewayBuilder = SoftLoraGateway::builder(phy)
        .seed(2026)
        .observer(Box::new(Rc::clone(&stats)))
        .observer(Box::new(FlagPrinter::default()));
    for k in 0..net.devices() {
        let cfg = net.device_config(k).clone();
        builder = builder.provision(cfg.dev_addr, cfg.keys);
    }
    let mut gateway = builder.build();

    net.run(3600.0, |d| {
        gateway.process(d).expect("pipeline");
    });
    let st = net.stats().clone();
    let warm_accepted = stats.borrow().accepted;
    println!(
        "warm-up hour: {} transmitted, {} collided, {} accepted",
        st.transmitted, st.collided, warm_accepted
    );

    // --- Phase 2: the attacker moves in on one meter; the network keeps
    // its device state (frame counters, duty cycles). ---
    // The target is device k = 4 on the 250 m ring.
    let target_angle = 4.0 * 0.52;
    let eaves_pos = Position::new(
        250.0 * f64::cos(target_angle) + 2.0,
        250.0 * f64::sin(target_angle) + 1.0,
        1.5,
    );
    let attack = FrameDelayAttack::new(
        eaves_pos,                     // eavesdropper beside the target
        Position::new(2.0, 1.0, 15.0), // USRPs near the gateway
        120.0,                         // two-minute delay
        phy,
        99,
    )
    .with_targets(vec![target_addr]);
    net.set_interceptor(Box::new(attack));

    let before = stats.borrow().clone();
    net.run(3600.0 + 1800.0, |d| {
        gateway.process(d).expect("pipeline");
    });
    let after = stats.borrow().clone();

    println!("\nattacked half hour:");
    println!("  fleet uplinks accepted      : {}", after.accepted - before.accepted);
    println!("  originals silently jammed   : {}", after.not_received - before.not_received);
    println!("  replays flagged             : {}", after.replays_flagged - before.replays_flagged);
    let det = gateway.detection_stats();
    println!(
        "  overall: detection {:.0} %, false alarms {:.2} %",
        det.detection_rate() * 100.0,
        det.false_alarm_rate() * 100.0
    );
    println!("\nEleven meters never noticed anything; the twelfth's delayed frames");
    println!("were dropped instead of poisoning the billing timeline.");
}
