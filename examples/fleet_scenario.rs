//! Fleet-scale scenario: a 12-meter network heard by three gateways, with
//! the frame-delay attack parked next to one of them.
//!
//! Devices report on jittered periods through a shared channel (ALOHA with
//! the capture effect, evaluated independently at every gateway); each
//! uplink fans out into per-gateway copies that the network server
//! deduplicates to one verdict. After a clean warm-up hour the attacker
//! arrives as a *scheduled event*: the jammer/replayer chain suppresses
//! the target's originals at gateway 0 only — so the server keeps
//! accepting the meter's uplinks via the clean gateways *and* flags the
//! τ-late replay copies by cross-gateway arrival consistency.
//!
//! Run with: `cargo run --release --example fleet_scenario`

use softlora_repro::attack::FrameDelayAttack;
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::sim::{FleetDeployment, HonestChannel, Position, Scenario};
use softlora_repro::softlora::network_server::ReplaySignal;
use softlora_repro::softlora::NetworkServer;

fn main() {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let fleet = FleetDeployment::with_gateways(3);
    let gateways = fleet.gateway_positions();
    let target_addr = 0x2601_3000;

    println!("Fleet scenario: 12 meters, 3 gateways, one meter under attack\n");

    let mut net =
        Scenario::new_fleet(phy, fleet.medium(), gateways.clone(), Box::new(HonestChannel));
    let device_positions = fleet.device_positions(12, 2026);
    for (k, pos) in device_positions.iter().enumerate() {
        net.add_device(target_addr + k as u32, *pos, 90.0, k as u64);
    }
    net.enable_maintenance(600.0);

    let mut builder = NetworkServer::builder(phy)
        .adc_quantisation(false)
        .max_tracked_devices(100_000)
        .gateway(2026)
        .gateway(2027)
        .gateway(2028);
    for k in 0..net.devices() {
        let cfg = net.device_config(k).clone();
        builder = builder.provision(cfg.dev_addr, cfg.keys);
    }
    let mut server = builder.build();

    // The attack arrives at t = 1 h as a first-class scenario event:
    // eavesdropper beside the target meter, USRP chain 2 m from gateway 0,
    // two-minute replay delay.
    let target_pos = device_positions[0];
    let attack = FrameDelayAttack::near_gateway(
        Position::new(target_pos.x + 2.0, target_pos.y + 1.0, target_pos.z),
        &gateways,
        0,
        2.0,
        120.0,
        phy,
        99,
    )
    .with_targets(vec![target_addr]);
    net.schedule_interceptor(3600.0, Box::new(attack));

    // One continuous 90-minute run; stats are sharded at the attack
    // boundary and merged back for the totals.
    let mut flags_printed = 0usize;
    let mut attacked_accepts = 0u64;
    let warm;
    let attacked;
    {
        let mut process = |u: &softlora_repro::sim::UplinkDeliveries| {
            let v = server.process_uplink(u).expect("pipeline");
            for s in &v.signals {
                if let ReplaySignal::ArrivalInconsistent { gateway, gap_s, .. } = s {
                    if flags_printed < 3 {
                        println!(
                            "  replay copy flagged at gateway {gateway}: device {:#x}, \
                             {gap_s:.0} s late",
                            u.dev_addr
                        );
                    }
                    flags_printed += 1;
                }
            }
            if u.dev_addr == target_addr && u.tx_start_global_s > 3600.0 && v.is_accepted() {
                attacked_accepts += 1;
            }
        };
        net.run(3600.0, &mut process);
        warm = net.take_stats();
        net.run(3600.0 + 1800.0, &mut process);
        attacked = net.take_stats();
    }
    let mut total = warm.clone();
    total += &attacked;

    println!("\nwarm-up hour:");
    println!("  uplinks transmitted         : {}", warm.transmitted);
    println!("  copies delivered (3 gws)    : {}", warm.delivered);
    println!("  collided copies             : {}", warm.collided);

    let st = server.stats();
    println!("\nattacked half hour:");
    println!("  uplinks transmitted         : {}", attacked.transmitted);
    println!("  target uplinks still accepted: {attacked_accepts}");
    println!("  replay copies flagged        : {}", st.cross_gateway_replays_flagged);
    println!("  duplicates deduped (total)   : {}", st.duplicates_suppressed);

    let det = server.detection_stats();
    println!(
        "\noverall ({} uplinks, peak {} in flight):",
        total.uplinks_delivered, total.peak_in_flight
    );
    println!(
        "  server accepted {} uplinks; detection {:.0} %, false alarms {:.2} %",
        st.accepted,
        det.detection_rate() * 100.0,
        det.false_alarm_rate() * 100.0
    );
    println!("\nWith one gateway the attacked meter's frames were lost or flagged;");
    println!("with a fleet the clean gateways keep its billing timeline intact while");
    println!("the replay chain is exposed by cross-gateway consistency.");
}
