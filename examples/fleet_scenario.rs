//! Fleet-scale scenario: a 12-device metering network under the
//! frame-delay attack, driven by the discrete-event scenario runner.
//!
//! Devices report on jittered periods through a shared channel (ALOHA with
//! the capture effect); the attacker targets one meter; the SoftLoRa
//! gateway keeps per-device FB bands and flags the replays while the rest
//! of the fleet keeps timestamping normally.
//!
//! Run with: `cargo run --release --example fleet_scenario`

use softlora_repro::attack::FrameDelayAttack;
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::sim::medium::FreeSpace;
use softlora_repro::sim::scenario::Scenario;
use softlora_repro::sim::{Position, RadioMedium};
use softlora_repro::softlora::{SoftLoraConfig, SoftLoraGateway, SoftLoraVerdict};

fn main() {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let gw_pos = Position::new(0.0, 0.0, 15.0);
    let target_addr = 0x2601_3004;

    println!("Fleet scenario: 12 meters, 90 s periods, one device under attack\n");

    // --- Phase 1: a clean hour builds every device's FB history. ---
    let mut gateway = SoftLoraGateway::new(SoftLoraConfig::new(phy), 2026);
    let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 869.75e6 }));
    let mut net = Scenario::new(
        phy,
        medium,
        gw_pos,
        Box::new(softlora_repro::sim::HonestChannel),
    );
    for k in 0..12u32 {
        let angle = k as f64 * 0.52;
        let pos = Position::new(250.0 * angle.cos(), 250.0 * angle.sin(), 1.5);
        net.add_device(0x2601_3000 + k, pos, 90.0, k as u64);
    }
    for k in 0..net.devices() {
        let cfg = net.device_config(k).clone();
        gateway.provision(cfg.dev_addr, cfg.keys);
    }
    let mut warm_accepted = 0u64;
    net.run(3600.0, |d| {
        if gateway.process(d).map(|v| v.is_accepted()).unwrap_or(false) {
            warm_accepted += 1;
        }
    });
    let st = net.stats().clone();
    println!("warm-up hour: {} transmitted, {} collided, {} accepted", st.transmitted, st.collided, warm_accepted);

    // --- Phase 2: the attacker moves in on one meter; the network keeps
    // its device state (frame counters, duty cycles). ---
    // The target is device k = 4 on the 250 m ring.
    let target_angle = 4.0 * 0.52;
    let eaves_pos = Position::new(
        250.0 * f64::cos(target_angle) + 2.0,
        250.0 * f64::sin(target_angle) + 1.0,
        1.5,
    );
    let attack = FrameDelayAttack::new(
        eaves_pos,                     // eavesdropper beside the target
        Position::new(2.0, 1.0, 15.0), // USRPs near the gateway
        120.0,                         // two-minute delay
        phy,
        99,
    )
    .with_targets(vec![target_addr]);
    net.set_interceptor(Box::new(attack));

    let mut accepted = 0u64;
    let mut detections = 0u64;
    let mut suppressed = 0u64;
    net.run(3600.0 + 1800.0, |d| match gateway.process(d) {
        Ok(SoftLoraVerdict::Accepted { .. }) => accepted += 1,
        Ok(SoftLoraVerdict::ReplayDetected { dev_addr, deviation_hz, .. }) => {
            detections += 1;
            if detections <= 3 {
                println!(
                    "  replay flagged: device {dev_addr:#x}, FB off by {deviation_hz:+.0} Hz"
                );
            }
        }
        Ok(SoftLoraVerdict::NotReceived { .. }) => suppressed += 1,
        _ => {}
    });

    println!("\nattacked half hour:");
    println!("  fleet uplinks accepted      : {accepted}");
    println!("  originals silently jammed   : {suppressed}");
    println!("  replays flagged             : {detections}");
    let stats = gateway.detection_stats();
    println!(
        "  overall: detection {:.0} %, false alarms {:.2} %",
        stats.detection_rate() * 100.0,
        stats.false_alarm_rate() * 100.0
    );
    println!("\nEleven meters never noticed anything; the twelfth's delayed frames");
    println!("were dropped instead of poisoning the billing timeline.");
}
