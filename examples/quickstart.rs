//! Quickstart: one sensor, one SoftLoRa gateway, one frame-delay attack.
//!
//! Demonstrates the paper's whole story in a hundred lines:
//! synchronization-free timestamping works to milliseconds, a jam-and-
//! replay attack silently shifts every timestamp by τ on a commodity
//! gateway, and the SoftLoRa gateway catches it by the replayed frame's
//! carrier frequency bias.
//!
//! Run with: `cargo run --release --example quickstart`

use softlora_repro::attack::FrameDelayAttack;
use softlora_repro::lorawan::{ClassADevice, DeviceConfig};
use softlora_repro::phy::oscillator::Oscillator;
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::sim::medium::FreeSpace;
use softlora_repro::sim::{AirFrame, HonestChannel, Interceptor, Position, RadioMedium};
use softlora_repro::softlora::{SoftLoraConfig, SoftLoraGateway, SoftLoraVerdict};

fn main() {
    // --- Topology: a device 300 m from the gateway, free space. ---
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let device_pos = Position::new(0.0, 0.0, 1.5);
    let gateway_pos = Position::new(300.0, 0.0, 10.0);
    let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 869.75e6 }));

    // --- A Class A device with a 22 ppm crystal, and the gateway. ---
    let dev_cfg = DeviceConfig::new(0x2601_0001, phy);
    let mut device = ClassADevice::new(dev_cfg.clone());
    let mut device_osc = Oscillator::with_bias_ppm(-25.3, 869.75e6, 7);
    let mut gateway = SoftLoraGateway::new(SoftLoraConfig::new(phy), 42);
    gateway.provision(dev_cfg.dev_addr, dev_cfg.keys.clone());

    println!("SoftLoRa quickstart — synchronization-free timestamping under attack");
    println!("device crystal bias: {:.1} kHz; gateway SDR bias: {:.1} kHz\n",
        device_osc.frequency_bias_hz() / 1e3, gateway.receiver_bias_hz() / 1e3);

    let send = |device: &mut ClassADevice,
                    osc: &mut Oscillator,
                    t: f64,
                    value: u16|
     -> AirFrame {
        device.sense(value, t - 0.8).expect("record buffered");
        let tx = device.try_transmit(t).expect("duty cycle clear");
        AirFrame {
            dev_addr: dev_cfg.dev_addr,
            bytes: tx.bytes,
            tx_start_global_s: t,
            airtime_s: tx.airtime_s,
            tx_power_dbm: 14.0,
            tx_position: device_pos,
            tx_bias_hz: osc.frame_bias_hz(),
            tx_phase: 0.2,
            sf: phy.sf,
        }
    };

    // --- Phase 1: five honest uplinks build the FB database. ---
    let mut honest = HonestChannel;
    for k in 0..5 {
        let t = 100.0 + 200.0 * k as f64;
        let frame = send(&mut device, &mut device_osc, t, 2000 + k as u16);
        for d in honest.intercept(&frame, &medium, &gateway_pos) {
            match gateway.process(&d).expect("pipeline") {
                SoftLoraVerdict::Accepted { uplink, fb, .. } => {
                    let err_ms = (uplink.records[0].global_time_s - (t - 0.8)) * 1e3;
                    println!(
                        "frame {k}: accepted; FB {:.2} kHz; timestamp error {err_ms:+.2} ms",
                        fb.delta_hz / 1e3
                    );
                }
                other => println!("frame {k}: {other:?}"),
            }
        }
    }

    // --- Phase 2: the frame-delay attack (τ = 45 s). ---
    println!("\n>> frame-delay attack begins: jam, record, replay 45 s later\n");
    let mut attack = FrameDelayAttack::new(
        Position::new(2.0, 1.0, 1.5),    // eavesdropper beside the device
        Position::new(298.0, 1.0, 10.0), // jammer + replayer beside the gateway
        45.0,
        phy,
        9,
    );
    for k in 5..8 {
        let t = 100.0 + 200.0 * k as f64;
        let frame = send(&mut device, &mut device_osc, t, 2000 + k);
        for d in attack.intercept(&frame, &medium, &gateway_pos) {
            let kind = if d.is_replay { "replay  " } else { "original" };
            match gateway.process(&d).expect("pipeline") {
                SoftLoraVerdict::Accepted { uplink, .. } => {
                    let err = uplink.records[0].global_time_s - (t - 0.8);
                    println!("frame {k} {kind}: ACCEPTED — timestamp error {err:+.2} s (!!)");
                }
                SoftLoraVerdict::ReplayDetected { deviation_hz, band_hz, .. } => {
                    println!(
                        "frame {k} {kind}: REPLAY DETECTED — FB off by {deviation_hz:+.0} Hz \
                         (band ±{band_hz:.0} Hz); frame dropped, no timestamp spoofed"
                    );
                }
                SoftLoraVerdict::NotReceived { outcome } => {
                    println!("frame {k} {kind}: not received ({outcome:?}) — stealthy jamming");
                }
                SoftLoraVerdict::LorawanRejected { reason } => {
                    println!("frame {k} {kind}: rejected ({reason})");
                }
            }
        }
    }

    let stats = gateway.detection_stats();
    println!(
        "\ndetection rate {:.0} %, false alarms {:.0} % — the timestamps stayed honest.",
        stats.detection_rate() * 100.0,
        stats.false_alarm_rate() * 100.0
    );
}
