//! Quickstart: one sensor, one SoftLoRa gateway, one frame-delay attack.
//!
//! Demonstrates the paper's whole story in a hundred lines:
//! synchronization-free timestamping works to milliseconds, a jam-and-
//! replay attack silently shifts every timestamp by τ on a commodity
//! gateway, and the SoftLoRa gateway catches it by the replayed frame's
//! carrier frequency bias.
//!
//! The gateway is built with the fluent [`SoftLoraGateway::builder`] and
//! outcomes are consumed through a [`GatewayObserver`] — no verdict
//! pattern-matching.
//!
//! Run with: `cargo run --release --example quickstart`

use softlora_repro::attack::FrameDelayAttack;
use softlora_repro::lorawan::{ClassADevice, DeviceConfig};
use softlora_repro::phy::oscillator::Oscillator;
use softlora_repro::phy::{PhyConfig, SpreadingFactor};
use softlora_repro::sim::medium::FreeSpace;
use softlora_repro::sim::{AirFrame, HonestChannel, Interceptor, Position, RadioMedium};
use softlora_repro::softlora::observer::{
    AcceptEvent, GatewayObserver, RejectEvent, ReplayFlagEvent,
};
use softlora_repro::softlora::SoftLoraGateway;
use std::cell::RefCell;
use std::rc::Rc;

/// Prints every gateway outcome against the per-frame ground truth the
/// main loop deposits before each uplink.
#[derive(Default)]
struct Narrator {
    /// Label of the frame being processed ("frame 3 replay  ", ...).
    label: String,
    /// True global time of the record of interest, seconds.
    true_time_s: f64,
}

impl GatewayObserver for Narrator {
    fn on_accept(&mut self, _frame: u64, event: AcceptEvent<'_>) {
        let err_s = event.uplink.records[0].global_time_s - self.true_time_s;
        if err_s.abs() < 0.1 {
            println!(
                "{}: accepted; FB {:.2} kHz; timestamp error {:+.2} ms",
                self.label,
                event.fb.delta_hz / 1e3,
                err_s * 1e3
            );
        } else {
            println!("{}: ACCEPTED — timestamp error {err_s:+.2} s (!!)", self.label);
        }
    }

    fn on_replay_flag(&mut self, _frame: u64, event: ReplayFlagEvent) {
        println!(
            "{}: REPLAY DETECTED — FB off by {:+.0} Hz (band ±{:.0} Hz); \
             frame dropped, no timestamp spoofed",
            self.label, event.deviation_hz, event.band_hz
        );
    }

    fn on_reject(&mut self, _frame: u64, event: RejectEvent<'_>) {
        match event {
            RejectEvent::NotReceived { outcome } => {
                println!("{}: not received ({outcome:?}) — stealthy jamming", self.label);
            }
            RejectEvent::Lorawan { reason } => {
                println!("{}: rejected ({reason})", self.label);
            }
        }
    }
}

fn main() {
    // --- Topology: a device 300 m from the gateway, free space. ---
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let device_pos = Position::new(0.0, 0.0, 1.5);
    let gateway_pos = Position::new(300.0, 0.0, 10.0);
    let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 869.75e6 }));

    // --- A Class A device with a 22 ppm crystal, and the gateway. ---
    let dev_cfg = DeviceConfig::new(0x2601_0001, phy);
    let mut device = ClassADevice::new(dev_cfg.clone());
    let mut device_osc = Oscillator::with_bias_ppm(-25.3, 869.75e6, 7);
    let narrator = Rc::new(RefCell::new(Narrator::default()));
    let mut gateway = SoftLoraGateway::builder(phy)
        .seed(42)
        .provision(dev_cfg.dev_addr, dev_cfg.keys.clone())
        .observer(Box::new(Rc::clone(&narrator)))
        .build();

    println!("SoftLoRa quickstart — synchronization-free timestamping under attack");
    println!(
        "device crystal bias: {:.1} kHz; gateway SDR bias: {:.1} kHz\n",
        device_osc.frequency_bias_hz() / 1e3,
        gateway.receiver_bias_hz() / 1e3
    );

    let send = |device: &mut ClassADevice, osc: &mut Oscillator, t: f64, value: u16| -> AirFrame {
        device.sense(value, t - 0.8).expect("record buffered");
        let tx = device.try_transmit(t).expect("duty cycle clear");
        AirFrame {
            dev_addr: dev_cfg.dev_addr,
            bytes: tx.bytes,
            tx_start_global_s: t,
            airtime_s: tx.airtime_s,
            tx_power_dbm: 14.0,
            tx_position: device_pos,
            tx_bias_hz: osc.frame_bias_hz(),
            tx_phase: 0.2,
            sf: phy.sf,
        }
    };

    // --- Phase 1: five honest uplinks build the FB database. ---
    let mut honest = HonestChannel;
    for k in 0..5 {
        let t = 100.0 + 200.0 * k as f64;
        let frame = send(&mut device, &mut device_osc, t, 2000 + k as u16);
        for d in honest.intercept(&frame, &medium, &gateway_pos) {
            {
                let mut n = narrator.borrow_mut();
                n.label = format!("frame {k}");
                n.true_time_s = t - 0.8;
            }
            gateway.process(&d).expect("pipeline");
        }
    }

    // --- Phase 2: the frame-delay attack (τ = 45 s). ---
    println!("\n>> frame-delay attack begins: jam, record, replay 45 s later\n");
    let mut attack = FrameDelayAttack::new(
        Position::new(2.0, 1.0, 1.5),    // eavesdropper beside the device
        Position::new(298.0, 1.0, 10.0), // jammer + replayer beside the gateway
        45.0,
        phy,
        9,
    );
    for k in 5..8 {
        let t = 100.0 + 200.0 * k as f64;
        let frame = send(&mut device, &mut device_osc, t, 2000 + k);
        for d in attack.intercept(&frame, &medium, &gateway_pos) {
            let kind = if d.is_replay { "replay  " } else { "original" };
            {
                let mut n = narrator.borrow_mut();
                n.label = format!("frame {k} {kind}");
                n.true_time_s = t - 0.8;
            }
            gateway.process(&d).expect("pipeline");
        }
    }

    let stats = gateway.detection_stats();
    println!(
        "\ndetection rate {:.0} %, false alarms {:.0} % — the timestamps stayed honest.",
        stats.detection_rate() * 100.0,
        stats.false_alarm_rate() * 100.0
    );
}
